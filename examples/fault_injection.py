#!/usr/bin/env python
"""Fault injection: an arbitrarily wrong master cannot corrupt results.

The MSSP correctness claim — the one the companion formal paper proves —
is that *nothing* the fast path does can affect architected state.  This
example attacks the claim empirically: it takes a correctly distilled
program and injects increasingly severe faults into it (wrong constants,
retargeted forks, deleted instructions, and finally a completely random
byte-salad master), running each variant and checking bit-exact
equivalence with sequential execution every time.

Performance degrades with fault severity; correctness never does.

Run with:  python examples/fault_injection.py
"""

from repro.config import MsspConfig, TimingConfig
from repro.experiments import prepare
from repro.machine import run_to_halt
from repro.mssp import MsspEngine
from repro.mssp.faults import corrupt_distilled, random_garbage_master
from repro.stats import Table
from repro.timing import simulate_mssp
from repro.workloads import get_workload

FAST = MsspConfig(max_task_instrs=5_000, max_master_instrs_per_task=5_000)


def main() -> None:
    prepared = prepare(get_workload("branchy"), size=1200)
    program = prepared.instance.program
    reference = run_to_halt(program)
    print(f"workload: branchy, {reference.steps} sequential instructions\n")

    table = Table(
        ["master variant", "equivalent?", "squash rate", "spec coverage",
         "speedup"],
        title="fault injection: correctness is invariant, speed is not",
    )
    severities = [0.0, 0.05, 0.2, 0.5]
    for severity in severities:
        distilled = corrupt_distilled(
            prepared.distillation.distilled, len(program.code),
            seed=2002, severity=severity,
        )
        engine = MsspEngine(
            program, (distilled, prepared.distillation.pc_map), FAST
        )
        result = engine.run()
        equivalent = result.final_state.diff(reference.state) == []
        breakdown = simulate_mssp(result, TimingConfig())
        table.add_row(
            f"{severity:.0%} corrupted", "yes" if equivalent else "NO!",
            result.counters.squash_rate,
            result.counters.speculative_coverage,
            reference.steps / breakdown.total_cycles,
        )
        assert equivalent, "MSSP produced a wrong result — impossible!"

    # The ultimate master: random garbage with a random pc map.
    garbage, pc_map = random_garbage_master(program, seed=2002)
    result = MsspEngine(program, (garbage, pc_map), FAST).run()
    equivalent = result.final_state.diff(reference.state) == []
    breakdown = simulate_mssp(result, TimingConfig())
    table.add_row(
        "random garbage", "yes" if equivalent else "NO!",
        result.counters.squash_rate,
        result.counters.speculative_coverage,
        reference.steps / breakdown.total_cycles,
    )
    assert equivalent

    print(table.render())
    print(
        "\nEvery variant produced the exact sequential result; only the\n"
        "speedup collapsed. The verify/commit unit is the single point\n"
        "of trust — the paper's performance/correctness decoupling."
    )


if __name__ == "__main__":
    main()
