#!/usr/bin/env python
"""Quickstart: run one program under MSSP and check it against SEQ.

Walks the whole pipeline on a small hand-written program:

1. assemble Z-ISA source;
2. run it sequentially (the reference);
3. profile it and distill it;
4. run it under MSSP;
5. verify bit-exact equivalence and show the speedup the timing model
   predicts for the default 1-master + 8-slave machine.

Run with:  python examples/quickstart.py
"""

from repro.config import TimingConfig
from repro.distill import Distiller
from repro.isa import assemble, disassemble
from repro.machine import run_to_halt
from repro.mssp import MsspEngine
from repro.profiling import profile_program
from repro.timing import simulate_mssp, speedup

SOURCE = """
# Sum an array, with a rarely-taken bookkeeping path and an
# always-false sanity check -- classic distillation food.
main:   li   r1, 2000        # elements
        li   r2, 0x100       # array base
        li   r3, 0           # sum
        li   r4, 0           # index
loop:   add  r5, r2, r4
        lw   r6, 0(r5)
        add  r3, r3, r6
        # sanity check: sum must stay below a bound it never reaches
        srli r7, r3, 12
        slti r8, r7, 4096
        beq  r8, zero, panic
        andi r9, r4, 255
        bne  r9, zero, next   # rare path every 256th element
        addi r10, r10, 1
next:   addi r4, r4, 1
        blt  r4, r1, loop
        sw   r3, 0x900(zero)
        halt
panic:  li   r3, -1
        sw   r3, 0x900(zero)
        halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    # Give the array some data (the assembler's .data would also do).
    program = program.updated_memory(
        {0x100 + i: (i * 7) % 13 + 1 for i in range(2000)}
    )

    print("== sequential reference ==")
    reference = run_to_halt(program)
    print(f"dynamic instructions: {reference.steps}")
    print(f"result (mem[0x900]):  {reference.state.load(0x900)}")

    print("\n== distillation ==")
    profile = profile_program(program)
    distillation = Distiller().distill(program, profile)
    print(distillation.report.describe())
    print("\ndistilled program text (code section):")
    text = disassemble(distillation.distilled)
    print(text.split("        .data")[0])

    print("== MSSP execution ==")
    engine = MsspEngine(program, distillation)
    result = engine.run_and_check()  # raises if MSSP diverges from SEQ
    counters = result.counters
    print("architected state identical to SEQ: yes (checked)")
    print(f"tasks committed:   {counters.tasks_committed}")
    print(f"tasks squashed:    {counters.tasks_squashed}")
    print(f"live-in accuracy:  {counters.live_in_accuracy:.3f}")
    print(f"master instrs:     {counters.master_instrs} "
          f"(vs {reference.steps} original)")

    print("\n== timing (1 master + 8 slaves) ==")
    breakdown = simulate_mssp(result, TimingConfig())
    print(f"MSSP cycles:       {breakdown.total_cycles:.0f}")
    print(f"sequential cycles: {reference.steps}")
    print(f"speedup:           {speedup(result):.2f}x")


if __name__ == "__main__":
    main()
