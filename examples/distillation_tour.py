#!/usr/bin/env python
"""Distillation tour: what each pass contributes, on a real workload.

Takes the ``compress`` workload, profiles its training inputs, and runs
the distiller repeatedly — first with everything off, then enabling one
pass at a time — printing the static and dynamic program sizes after
each step, plus the final distilled listing next to the original.

Run with:  python examples/distillation_tour.py
"""

from repro.config import DistillConfig
from repro.distill import Distiller
from repro.experiments.harness import distilled_dynamic_length
from repro.isa import disassemble
from repro.machine import count_dynamic_instructions
from repro.profiling import profile_program
from repro.stats import Table
from repro.workloads import get_workload

#: Passes in pipeline order, with the config flag that enables each.
STAGES = [
    ("baseline (forks only)", []),
    ("+ value specialization", ["value_spec"]),
    ("+ branch assertion", ["value_spec", "branch_removal"]),
    ("+ cold-code elimination",
     ["value_spec", "branch_removal", "cold_code"]),
    ("+ dead-code elimination",
     ["value_spec", "branch_removal", "cold_code", "dce"]),
]

ALL_PASSES = ["value_spec", "branch_removal", "cold_code", "dce",
              "jump_threading"]


def config_with(enabled) -> DistillConfig:
    config = DistillConfig()
    for name in ALL_PASSES:
        if name not in enabled and name != "jump_threading":
            config = config.without_pass(name)
    return config


def main() -> None:
    instance = get_workload("compress").instance(1500)
    profile = profile_program(instance.train_programs[0])
    original_dyn = count_dynamic_instructions(instance.program)

    print(f"workload: {instance.name}  "
          f"(static {len(instance.program.code)}, dynamic {original_dyn})\n")

    table = Table(
        ["stage", "static", "static ratio", "dynamic", "dyn ratio"],
        title="distillation pipeline, one pass at a time",
    )
    final = None
    for label, enabled in STAGES:
        result = Distiller(config_with(enabled)).distill(
            instance.program, profile
        )
        dynamic = distilled_dynamic_length(result, instance.program)
        table.add_row(
            label, result.report.distilled_static,
            result.report.static_ratio, dynamic, dynamic / original_dyn,
        )
        final = result
    print(table.render())

    print("\n== original (code section) ==")
    print(disassemble(instance.program).split("        .data")[0])
    print("== fully distilled ==")
    print(disassemble(final.distilled).split("        .data")[0])
    print("anchors (original pc -> master resume pc):")
    for anchor, resume in sorted(final.pc_map.resume.items()):
        print(f"  {anchor:4d} -> {resume}")


if __name__ == "__main__":
    main()
