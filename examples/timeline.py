#!/usr/bin/env python
"""Timeline: watch the master run ahead of its slaves.

Renders the first stretch of a real MSSP execution as an ASCII Gantt
chart — the fastest way to *see* the paradigm: the master lane streams
forks while slave lanes execute overlapping tasks behind it and the
commit lane ticks along in order.

Run with:  python examples/timeline.py
"""

import dataclasses

from repro.config import TimingConfig
from repro.experiments import evaluate, prepare
from repro.timing import render_timeline, simulate_mssp, utilization
from repro.workloads import get_workload


def main() -> None:
    prepared = prepare(get_workload("compress"), size=1500)
    row = evaluate(prepared)

    for n_slaves in (2, 8):
        config = dataclasses.replace(TimingConfig(), n_slaves=n_slaves)
        breakdown = simulate_mssp(row.mssp, config, schedule=True)
        print(f"\n=== compress, {n_slaves} slaves "
              f"(speedup {prepared.seq_instrs / breakdown.total_cycles:.2f}x, "
              f"slave utilization "
              f"{utilization(breakdown, n_slaves):.0%}) ===")
        window = min(breakdown.total_cycles, 2500.0)
        print(render_timeline(breakdown, width=96, end=window))
        print("legend: ==== master producing forks   #### committed task")
        print("        xxxx squashed task   C commit   rrrr recovery")


if __name__ == "__main__":
    main()
