#!/usr/bin/env python
"""Scaling study: how MSSP speedup responds to machine parameters.

Runs three workloads once through the functional engine, then replays
the traces through the timing model across a grid of slave counts and
master speeds — demonstrating the two-level simulation design: the
functional outcome is timing-independent (in-order commit), so machine
sweeps cost milliseconds each.

Run with:  python examples/scaling_study.py
"""

import dataclasses

from repro.config import TimingConfig
from repro.experiments import evaluate, prepare
from repro.stats import Table
from repro.timing import simulate_mssp
from repro.workloads import get_workload

WORKLOADS = ("compress", "pointer_chase", "matmul")
SLAVES = (1, 2, 4, 8, 16)
MASTER_CPIS = (0.25, 0.5, 1.0)


def main() -> None:
    runs = {}
    for name in WORKLOADS:
        prepared = prepare(get_workload(name), size=None)
        row = evaluate(prepared)  # checks equivalence as it runs
        runs[name] = row
        print(
            f"{name}: {prepared.seq_instrs} instrs, "
            f"distillation ratio {prepared.distillation_ratio:.2f}, "
            f"squash rate {row.counters.squash_rate:.3f}"
        )

    for master_cpi in MASTER_CPIS:
        table = Table(
            ["benchmark"] + [f"{n} slaves" for n in SLAVES],
            title=f"\nspeedup vs in-order, master CPI = {master_cpi}",
        )
        for name, row in runs.items():
            speedups = []
            for n_slaves in SLAVES:
                config = dataclasses.replace(
                    TimingConfig(), n_slaves=n_slaves, master_cpi=master_cpi
                )
                breakdown = simulate_mssp(row.mssp, config)
                speedups.append(row.seq_instrs / breakdown.total_cycles)
            table.add_row(name, *speedups)
        print(table.render())

    print(
        "\nReading: speedup saturates where slave throughput meets the\n"
        "master's fork rate; a slower master (higher CPI) pulls the\n"
        "whole curve down — the fast path sets the machine's ceiling."
    )


if __name__ == "__main__":
    main()
