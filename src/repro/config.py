"""Configuration dataclasses for the distiller, the MSSP engine and the
timing model.

Defaults are chosen to land in the regimes the MICRO 2002 evaluation
explores: tasks of a few hundred dynamic instructions, distillation
aggressive enough to remove most cold/biased code but conservative enough
to keep live-in misprediction rates low, and a CMP with one fast master
plus several slower slaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import DistillError, TimingError


@dataclass(frozen=True)
class DistillConfig:
    """Knobs of the offline distiller.

    ``branch_bias_threshold`` — a conditional branch is converted to an
    assertion (removed or made unconditional) when its dominant direction
    accounts for at least this fraction of its executions.

    ``cold_threshold`` — blocks whose execution share of the training run
    is at most this fraction are deleted from the distilled program
    (0.0 deletes only never-executed blocks).

    ``target_task_size`` — desired dynamic instructions per task; fork
    placement selects anchors so the expected inter-fork distance
    approximates it.

    ``verify_after_each_pass`` — debug mode: run the static IR checker
    (:mod:`repro.analysis.checker`) after every pass and the artifact
    checker after layout, raising :class:`~repro.errors.CheckFailure`
    the moment a pass breaks an invariant.  Off by default (the checks
    are cheap but not free); ``repro lint`` and the property-test suite
    turn it on.
    """

    target_task_size: int = 150
    max_anchors: int = 64
    branch_bias_threshold: float = 0.995
    min_branch_count: int = 16
    cold_threshold: float = 0.0
    value_spec_min_count: int = 8
    value_spec_min_share: float = 1.0
    store_elim_min_count: int = 4
    enable_branch_removal: bool = True
    enable_cold_code: bool = True
    enable_value_spec: bool = True
    enable_store_elim: bool = True
    enable_dce: bool = True
    enable_jump_threading: bool = True
    verify_after_each_pass: bool = False

    def __post_init__(self) -> None:
        if self.target_task_size < 2:
            raise DistillError("target_task_size must be at least 2")
        if not 0.5 <= self.branch_bias_threshold <= 1.0:
            raise DistillError("branch_bias_threshold must be in [0.5, 1.0]")
        if not 0.0 <= self.cold_threshold < 1.0:
            raise DistillError("cold_threshold must be in [0.0, 1.0)")
        if self.max_anchors < 1:
            raise DistillError("max_anchors must be at least 1")

    def without_pass(self, name: str) -> "DistillConfig":
        """A copy with one pass disabled (for ablation studies).

        ``name`` is one of ``branch_removal``, ``cold_code``,
        ``value_spec``, ``dce``, ``jump_threading``.
        """
        flag = f"enable_{name}"
        if not hasattr(self, flag):
            raise DistillError(f"unknown distillation pass {name!r}")
        return replace(self, **{flag: False})


@dataclass(frozen=True)
class MsspConfig:
    """Knobs of the (functional) MSSP engine.

    These bound speculation so that arbitrary master misbehaviour —
    including infinite loops in the distilled program — cannot prevent
    forward progress: exceeding any bound is treated as a misspeculation
    and triggers non-speculative recovery.

    ``protected_regions`` marks half-open address ranges ``[start, end)``
    as non-idempotent (memory-mapped I/O): speculative execution aborts
    before touching them, and only non-speculative recovery may access
    them — exactly once each, in program order.

    ``runtime`` selects the slave-execution backend: ``"eager"``
    executes every task inline in commit order (the functional reference
    model); ``"thread"`` pipelines the master ahead of ``num_slaves``
    in-process worker threads; ``"process"`` pipelines it ahead of
    ``num_slaves`` forked worker processes.  ``"parallel"`` is a
    deprecated alias of ``"process"``, and ``None`` defers to the
    ``REPRO_RUNTIME`` environment variable (default eager), mirroring
    ``exec_tier``/``REPRO_EXEC``.  All backends produce bit-identical
    :class:`~repro.mssp.engine.MsspResult`\\ s; see
    :mod:`repro.mssp.runtime`.
    """

    #: Hard cap on one task's dynamic length at a slave.
    max_task_instrs: int = 20_000
    #: Non-idempotent address ranges; see class docstring.
    protected_regions: Tuple[Tuple[int, int], ...] = ()
    #: Dual-mode throttling: when the squash fraction over the last
    #: ``throttle_window`` tasks reaches ``throttle_threshold``, the
    #: engine reverts to sequential execution for ``throttle_chunk``
    #: instructions before re-enabling speculation.  ``None`` disables
    #: throttling (the formal model's pure-speculation behaviour).
    throttle_threshold: Optional[float] = None
    throttle_window: int = 16
    throttle_chunk: int = 2_000
    #: What the master ships with each fork:
    #: ``"cumulative"`` — every memory value it has written since its
    #: last restart (the conservative reading of the paper: "values
    #: modified by the master"); ``"delta"`` — only values written since
    #: the previous fork, relying on slaves reading older values from
    #: architected state (the paper's bandwidth-saving refinement).
    checkpoint_mode: str = "cumulative"
    #: Hard cap on master instructions between two forks.
    max_master_instrs_per_task: int = 20_000
    #: Hard cap on tasks the master may run ahead (checkpoint buffer size).
    max_inflight_tasks: int = 64
    #: Upper bound on one recovery episode (safety net only).
    recovery_max_instrs: int = 1_000_000
    #: Global safety valve on total committed instructions.
    max_total_instrs: int = 200_000_000
    #: Opt-in engine assertion: cross-check every squash cause against
    #: the statically predicted unsound sites of the distillation (see
    #: :func:`repro.analysis.checker.predicted_squash_reasons`).  A
    #: squash the static analysis says cannot happen raises
    #: :class:`~repro.errors.MsspError` instead of being silently
    #: recovered from.  Requires a full DistillationResult (the
    #: prediction reads the distiller's pass statistics).
    assert_static_soundness: bool = False
    #: Slave-execution backend; see class docstring.  ``None`` defers
    #: to ``REPRO_RUNTIME``; an explicit ``"eager"`` is immune to it.
    runtime: Optional[str] = None
    #: Execution tier for the interpretation loops (master, slaves,
    #: recovery): ``"oracle"`` steps through ``semantics.execute``,
    #: ``"decoded"`` through the pre-decoded closures, ``"jit"`` through
    #: compiled superblocks with deopt to the decoded stepper.  ``None``
    #: defers to the ``REPRO_EXEC`` environment variable (default:
    #: decoded).  All tiers are bit-identical; see docs/performance.md.
    exec_tier: Optional[str] = None
    #: Architected-memory backend: ``"dict"`` (sparse dict reference),
    #: ``"flat"`` (paged ``array('q')`` store), or ``"check"`` (both in
    #: lockstep, raising on any divergence — the differential oracle).
    #: ``None`` defers to the ``REPRO_MEM`` environment variable
    #: (default: dict).  All backends are bit-identical; see
    #: docs/performance.md.
    mem_backend: Optional[str] = None
    #: Workers (threads or processes) backing the pipelined runtimes'
    #: slave pool.
    num_slaves: int = 4
    #: Tasks batched per pool dispatch in the pipelined runtimes
    #: (amortizes per-dispatch cost over several small tasks; the
    #: run-ahead window is
    #: ``min(max_inflight_tasks, num_slaves * parallel_chunk_tasks)``).
    parallel_chunk_tasks: int = 16
    #: Static verify fast path over the speculation-safety prover's
    #: report (:mod:`repro.analysis.specsafe`): ``"skip"`` skips the
    #: value compare for statically PROVEN register live-ins, ``"check"``
    #: compares everything and escalates a mismatch on a PROVEN register
    #: to a hard :class:`~repro.errors.CheckFailure` (the differential
    #: soundness cross-check), ``"off"`` disables the report entirely.
    #: All three modes produce bit-identical results when the analysis
    #: is sound — ``skip`` merely avoids compares that cannot fail.
    static_safety: str = "skip"
    #: Live-in value prediction (:mod:`repro.mssp.predict`): ``"off"``
    #: disables the predictor bank; ``"last"``/``"stride"``/``"context"``
    #: enable one predictor kind; ``"auto"`` runs a per-cell tournament
    #: and overrides with whichever kind has trained best; ``"observe"``
    #: trains and reports statistics but never overrides a checkpoint
    #: (used by ``repro analyze`` to annotate squash-risk tables).
    #: Predictions only patch fork checkpoints for UNPROVEN live-in
    #: register cells, and only once the master has been consecutively
    #: wrong about the cell ``predict_miss_gate`` times — so on
    #: workloads the master predicts correctly the gate never opens and
    #: results are bit-identical to ``"off"``.  Verify/squash is
    #: unchanged as the correctness backstop.
    predictors: str = "off"
    #: Consecutive identical-outcome training observations required
    #: before a cell predictor is confident enough to override.
    predict_confidence: int = 3
    #: Consecutive master mispredictions of a cell required before the
    #: predictor may override it (the bit-identity gate; see above).
    predict_miss_gate: int = 2
    #: Squash-driven online re-distillation threshold: once a single
    #: fork region has accumulated this many live-in misprediction
    #: squashes, the :class:`~repro.mssp.redistill.Redistiller` folds the
    #: observed values into the training profile and re-distills the
    #: master mid-run (requires :meth:`MsspEngine.enable_adaptation`).
    #: ``None`` disables re-distillation.
    redistill_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "max_task_instrs", "max_master_instrs_per_task",
            "max_inflight_tasks", "recovery_max_instrs", "max_total_instrs",
            "throttle_window", "throttle_chunk", "num_slaves",
            "parallel_chunk_tasks",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.throttle_threshold is not None and not (
            0.0 < self.throttle_threshold <= 1.0
        ):
            raise ValueError("throttle_threshold must be in (0, 1]")
        if self.checkpoint_mode not in ("cumulative", "delta"):
            raise ValueError(
                "checkpoint_mode must be 'cumulative' or 'delta'"
            )
        if self.runtime not in (
            None, "eager", "thread", "process", "parallel", "sim"
        ):
            raise ValueError(
                "runtime must be None, 'eager', 'thread', 'process', "
                "'sim' or 'parallel' (deprecated alias of 'process')"
            )
        if self.exec_tier not in (None, "oracle", "decoded", "jit"):
            raise ValueError(
                "exec_tier must be None, 'oracle', 'decoded' or 'jit'"
            )
        if self.mem_backend not in (None, "dict", "flat", "check"):
            raise ValueError(
                "mem_backend must be None, 'dict', 'flat' or 'check'"
            )
        if self.static_safety not in ("off", "skip", "check"):
            raise ValueError(
                "static_safety must be 'off', 'skip' or 'check'"
            )
        if self.predictors not in (
            "off", "last", "stride", "context", "auto", "observe"
        ):
            raise ValueError(
                "predictors must be 'off', 'last', 'stride', 'context', "
                "'auto' or 'observe'"
            )
        for name in ("predict_confidence", "predict_miss_gate"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.redistill_threshold is not None and self.redistill_threshold < 1:
            raise ValueError("redistill_threshold must be positive (or None)")

    def with_adaptation(
        self,
        predictors: str = "auto",
        redistill_threshold: Optional[int] = 2,
    ) -> "MsspConfig":
        """A copy with the adaptive prediction loop enabled: live-in
        value predictors plus squash-driven online re-distillation
        (``repro bench``'s "adaptive" stage and the CLI ``--adaptive``
        flag both use these defaults)."""
        return replace(
            self,
            predictors=predictors,
            redistill_threshold=redistill_threshold,
        )


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the persistent multi-tenant episode server
    (:mod:`repro.serve`).

    The server multiplexes a stream of episode requests from many
    tenants onto one shared warm worker fleet.  Admission control
    mirrors the master-dispatches-to-loaded-nodes idiom: an arriving
    request goes to the least-loaded worker with free capacity; when
    every worker is saturated it queues (``admission="wait"``) up to
    ``max_queue_depth`` entries, beyond which — or immediately, under
    ``admission="shed"`` — it is rejected with a typed
    :class:`~repro.serve.server.ServerBusy` response.

    ``worker_capacity`` is the number of episodes a worker may hold
    (running plus assigned) at once; the RT004 lint check audits that
    the recorded event stream never exceeds it.  ``max_batch`` bounds
    how many *compatible* queued requests (same program digest and
    engine configuration) a worker folds into one service turn on the
    already-acquired warm engine instead of round-tripping the
    scheduler per episode.
    """

    workers: int = 2
    worker_capacity: int = 4
    max_queue_depth: int = 32
    admission: str = "wait"
    max_batch: int = 4
    #: Workload names pre-distilled/pre-JITted at server start so the
    #: first tenant request is not a cold-compile outlier.
    warmup: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("workers", "worker_capacity", "max_batch"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.admission not in ("wait", "shed"):
            raise ValueError("admission must be 'wait' or 'shed'")


@dataclass(frozen=True)
class TimingConfig:
    """Parameters of the task-level timing model.

    Cycle accounting is abstract (repro band: toy fidelity): each core
    retires instructions at a fixed CPI, and the MSSP-specific overheads
    are flat latencies.  ``master_cpi`` defaults below ``slave_cpi``
    because the paper's master is the wide complex core while slaves are
    simple cores.
    """

    n_slaves: int = 8
    master_cpi: float = 0.5
    slave_cpi: float = 1.0
    #: Extra cycles per memory load, charged to master, slaves and
    #: recovery alike.  0.0 (the default) is the uniform-CPI model; the
    #: memory-sensitivity experiment (E12) raises it to expose the value
    #: of distillation passes that remove loads (value specialization).
    load_penalty: float = 0.0
    #: Checkpoint-buffer depth: the master may run at most this many
    #: uncommitted tasks ahead of the verify/commit unit.  ``None``
    #: leaves run-ahead bounded only by slave availability.
    max_inflight: Optional[int] = None
    #: Checkpoint construction + transfer to a slave (cycles, flat part).
    spawn_latency: float = 30.0
    #: Additional transfer cost per checkpoint word (registers + dirty
    #: memory), modelling master-to-slave bandwidth.
    checkpoint_word_latency: float = 0.0
    #: Verify + atomic commit of one task (cycles, serialized in order).
    commit_latency: float = 10.0
    #: Squash detection + master restart penalty (cycles).
    squash_penalty: float = 60.0
    #: Seeding a processor from architected state after squash (cycles).
    restart_latency: float = 30.0

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise TimingError("n_slaves must be at least 1")
        for name in ("master_cpi", "slave_cpi"):
            if getattr(self, name) <= 0:
                raise TimingError(f"{name} must be positive")
        for name in (
            "spawn_latency", "commit_latency", "squash_penalty",
            "restart_latency", "checkpoint_word_latency", "load_penalty",
        ):
            if getattr(self, name) < 0:
                raise TimingError(f"{name} must be non-negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise TimingError("max_inflight must be positive (or None)")

    def scaled_latencies(self, factor: float) -> "TimingConfig":
        """A copy with all interconnect latencies scaled by ``factor``."""
        if factor < 0:
            raise TimingError("latency scale factor must be non-negative")
        return replace(
            self,
            spawn_latency=self.spawn_latency * factor,
            commit_latency=self.commit_latency * factor,
            squash_penalty=self.squash_penalty * factor,
            restart_latency=self.restart_latency * factor,
            checkpoint_word_latency=self.checkpoint_word_latency * factor,
        )


@dataclass(frozen=True)
class BaselineConfig:
    """A non-MSSP reference machine for speedup denominators."""

    name: str = "in-order"
    cpi: float = 1.0
    #: Extra cycles per memory load (see TimingConfig.load_penalty).
    load_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.cpi <= 0:
            raise TimingError("cpi must be positive")
        if self.load_penalty < 0:
            raise TimingError("load_penalty must be non-negative")


#: The paper-style single in-order core all speedups are measured against.
SEQUENTIAL_BASELINE = BaselineConfig(name="in-order", cpi=1.0)

#: An idealized wider out-of-order core (E9's comparison point).
OOO_BASELINE = BaselineConfig(name="ooo-4wide", cpi=0.45)
