"""Command-line interface: ``mssp-repro`` (or ``python -m repro``).

Subcommands
-----------

``list``
    Show the workload suite.
``seq <workload>``
    Run a workload sequentially and print its result cells.
``distill <workload>``
    Profile + distill; print the distillation report (and, with
    ``--show-asm``, the distilled listing).
``run <workload>``
    Full pipeline: profile, distill, MSSP with equivalence check,
    timing; print the statistics row.
``suite``
    The E1-style table over every workload.
``lint``
    Static soundness report: check a workload's original program, its
    distillation (with per-pass IR verification), the pc map, the
    pre-decoded execution cache, the dataflow analyses and the
    speculation-safety prover's report, and the runtime's recorded
    event stream (in-order judgement, squash discard).  ``--format
    json`` emits the same findings machine-readably.
``analyze``
    Dataflow / speculation-safety report: per-region live-in safety
    classification (PROVEN / STABLE / UNPROVEN), observed squash risk
    from a differential check-mode run, and the statically skipped
    verify-compare count.  Exits nonzero if a PROVEN cell squashes.
``bench``
    Performance measurement: interpreter microbenchmark (reference
    ``execute`` loop vs the pre-decoded engine) plus the E-suite through
    the persistent artifact cache; writes ``BENCH_summary.json`` and can
    gate against a committed baseline.  ``--serve`` runs the serving
    benchmark instead: warm-vs-cold throughput and open-loop Poisson
    arrivals against the episode server.
``serve``
    Run the persistent multi-tenant episode server: JSONL requests on
    stdin (or ``--requests FILE``), JSONL responses on stdout, serving
    statistics on stderr; ``--warmup`` pre-distills and pre-JITs
    workloads at startup.
``trace``
    Capture a workload run's clock-stamped runtime event stream and
    ``--export`` it as JSONL, or ``--import`` a trace back and
    summarize it (event kinds, time span, rebuilt trace records, and
    the calibrated execution-cost rate).
``sim``
    Trace-driven cluster simulation: capture one workload's event
    stream, replay it through the discrete-event cluster at several
    slave counts (``--slaves 8,16,64``), cross-check every point
    against the analytic timing model, replay contention /
    heterogeneity / failure scenarios, and merge the sweep into a
    summary JSON (``--output BENCH_summary.json``) as its
    ``sim_bench`` section.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.config import DistillConfig, TimingConfig
from repro.stats import Table, geomean
from repro.workloads import RESULT_BASE, WORKLOADS, get_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mssp-repro",
        description="Master/Slave Speculative Parallelization reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    seq = sub.add_parser("seq", help="run a workload sequentially")
    _add_workload_args(seq)

    distill = sub.add_parser("distill", help="profile and distill a workload")
    _add_workload_args(distill)
    distill.add_argument(
        "--show-asm", action="store_true",
        help="print the distilled program listing",
    )
    distill.add_argument(
        "--task-size", type=int, default=None,
        help="target dynamic instructions per task",
    )

    run = sub.add_parser("run", help="run a workload under MSSP")
    _add_workload_args(run)
    run.add_argument("--slaves", type=int, default=8)
    run.add_argument(
        "--task-size", type=int, default=None,
        help="target dynamic instructions per task",
    )
    run.add_argument(
        "--runtime",
        choices=("eager", "thread", "process", "parallel", "sim"),
        default="eager",
        help="slave-execution backend: eager in-process tasks, a thread "
             "pool, a process pool of slave workers, or simulated slaves "
             "on a virtual clock ('parallel' is a deprecated alias of "
             "'process'; all backends are bit-identical)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="slave workers for the thread/process runtimes "
             "(default: MsspConfig.num_slaves)",
    )
    run.add_argument(
        "--exec-tier", choices=("oracle", "decoded", "jit"), default=None,
        help="execution tier for master/slaves/recovery (default: the "
             "REPRO_EXEC environment variable, then decoded); all tiers "
             "are bit-identical",
    )
    run.add_argument(
        "--mem", choices=("dict", "flat", "check"), default=None,
        dest="mem_backend",
        help="architected-memory backend: sparse dict, flat paged "
             "arrays, or both in lockstep (differential check); "
             "default: the REPRO_MEM environment variable, then dict; "
             "all backends are bit-identical",
    )
    run.add_argument(
        "--adaptive", action="store_true",
        help="enable the adaptive prediction loop: live-in value "
             "predictors plus squash-driven online re-distillation "
             "(shortcut for --predictors auto --redistill-threshold 2)",
    )
    run.add_argument(
        "--predictors",
        choices=("off", "last", "stride", "context", "auto", "observe"),
        default=None,
        help="live-in value predictors for UNPROVEN checkpoint cells "
             "('auto' races all kinds per cell; 'observe' trains and "
             "reports but never overrides)",
    )
    run.add_argument(
        "--redistill-threshold", type=int, default=None,
        dest="redistill_threshold", metavar="N",
        help="live-in squashes in one fork region that trigger online "
             "re-distillation (default: off)",
    )

    timeline = sub.add_parser(
        "timeline", help="render an ASCII execution timeline"
    )
    _add_workload_args(timeline)
    timeline.add_argument("--slaves", type=int, default=8)
    timeline.add_argument("--width", type=int, default=96)
    timeline.add_argument(
        "--cycles", type=float, default=2500.0,
        help="window length in cycles (0 = whole run)",
    )

    sub.add_parser("suite", help="run the whole suite (E1-style table)")

    lint = sub.add_parser(
        "lint", help="statically check a workload's distillation"
    )
    lint.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS), default=None,
        help="workload to lint (or use --all)",
    )
    lint.add_argument(
        "--all", action="store_true", dest="lint_all",
        help="lint every registered workload",
    )
    lint.add_argument("--size", type=int, default=None)
    lint.add_argument(
        "--task-size", type=int, default=None,
        help="target dynamic instructions per task",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json shares its finding schema with "
             "'analyze --format json')",
    )

    analyze = sub.add_parser(
        "analyze",
        help="dataflow + speculation-safety analysis of a workload",
    )
    analyze.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS), default=None,
        help="workload to analyze (or use --all)",
    )
    analyze.add_argument(
        "--all", action="store_true", dest="analyze_all",
        help="analyze every registered workload",
    )
    analyze.add_argument("--size", type=int, default=None)
    analyze.add_argument(
        "--task-size", type=int, default=None,
        help="target dynamic instructions per task",
    )
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json shares its finding schema with "
             "'lint --format json')",
    )

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suite"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="shortcut for --scale 0.1 (CI smoke configuration)",
    )
    bench.add_argument(
        "--scale", type=float, default=None,
        help="workload size scale factor (default: REPRO_BENCH_SCALE or 1.0)",
    )
    bench.add_argument(
        "--workloads", nargs="*", default=None,
        help="subset of workloads (default: all)",
    )
    bench.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="evaluate workloads in N parallel processes",
    )
    bench.add_argument(
        "--output", default="BENCH_summary.json",
        help="machine-readable summary path",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline JSON to gate against (exit 1 on >30%% regression)",
    )
    bench.add_argument(
        "--write-baseline", nargs="?", const="benchmarks/baseline.json",
        default=None, metavar="PATH", dest="write_baseline",
        help="regenerate the committed baseline floors from this run's "
             "measurements (default path: benchmarks/baseline.json)",
    )
    bench.add_argument(
        "--clear-cache", action="store_true",
        help="drop the persistent artifact cache before running",
    )
    bench.add_argument(
        "--runtime", choices=("eager", "thread", "process", "parallel"),
        default="eager",
        help="also measure a pipelined MSSP runtime's wall-clock speedup "
             "per workload (-j sets the slave worker count; 'parallel' "
             "is a deprecated alias of 'process')",
    )
    bench.add_argument(
        "--serve", action="store_true",
        help="run the serving benchmark instead: warm-vs-cold throughput "
             "plus open-loop Poisson arrivals against the episode server "
             "(--workloads selects the mix; --runtime the engine backend)",
    )
    bench.add_argument(
        "--serve-rates", default=None, metavar="R1[,R2...]",
        help="open-loop arrival rates in episodes/sec (default: 2,8)",
    )
    bench.add_argument(
        "--serve-requests", type=int, default=24, metavar="N",
        help="requests per open-loop rate point (default: 24)",
    )
    bench.add_argument(
        "--serve-workers", type=int, default=2, metavar="N",
        help="server worker fleet size for --serve (default: 2)",
    )
    bench.add_argument(
        "--serve-seed", type=int, default=0, metavar="SEED",
        help="seed for the Poisson arrival schedules (default: 0)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the persistent multi-tenant episode server "
             "(JSONL requests on stdin, JSONL responses on stdout)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="server worker fleet size (default: 2)",
    )
    serve.add_argument(
        "--capacity", type=int, default=4,
        help="episodes one worker may hold at once (default: 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32, dest="queue_depth",
        help="bounded backlog depth for admission='wait' (default: 32)",
    )
    serve.add_argument(
        "--admission", choices=("wait", "shed"), default="wait",
        help="admission policy when the fleet is saturated: queue "
             "bounded ('wait') or reject immediately ('shed')",
    )
    serve.add_argument(
        "--max-batch", type=int, default=4, dest="max_batch",
        help="compatible queued episodes folded into one service turn "
             "(default: 4)",
    )
    serve.add_argument(
        "--warmup", default=None, metavar="W1[,W2...]",
        help="workloads to pre-distill and pre-JIT at startup",
    )
    serve.add_argument(
        "--runtime", choices=("eager", "thread", "process", "parallel"),
        default="thread",
        help="slave-execution backend for served episodes "
             "(default: thread)",
    )
    serve.add_argument(
        "--exec-tier", choices=("oracle", "decoded", "jit"), default=None,
        help="execution tier for served episodes (default: REPRO_EXEC, "
             "then decoded)",
    )
    serve.add_argument(
        "--requests", default=None, metavar="PATH",
        help="read JSONL requests from a file instead of stdin",
    )

    trace = sub.add_parser(
        "trace",
        help="capture or inspect a clock-stamped runtime event trace",
    )
    trace.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS), default=None,
        help="workload to run and capture (omit with --import)",
    )
    trace.add_argument("--size", type=int, default=None)
    trace.add_argument(
        "--runtime", choices=("eager", "thread", "process", "sim"),
        default="eager",
        help="slave-execution backend for the captured run",
    )
    trace.add_argument(
        "--slaves", type=int, default=None,
        help="slave workers for the captured run "
             "(default: MsspConfig.num_slaves)",
    )
    trace.add_argument(
        "--export", default=None, metavar="OUT.jsonl", dest="export_path",
        help="run the workload and write the captured event stream "
             "as JSONL",
    )
    trace.add_argument(
        "--import", default=None, metavar="IN.jsonl", dest="import_path",
        help="read a JSONL trace back and summarize it (kinds, span, "
             "rebuilt trace records, calibrated cost rate)",
    )

    sim = sub.add_parser(
        "sim",
        help="trace-driven cluster simulation: capture a workload's "
             "event stream, replay it at several slave counts, and "
             "cross-check the discrete-event replay against the "
             "analytic timing model",
    )
    sim.add_argument(
        "workload", nargs="?", choices=sorted(WORKLOADS),
        default="compress",
        help="workload to capture and sweep (default: compress)",
    )
    sim.add_argument("--size", type=int, default=None)
    sim.add_argument(
        "--slaves", default="8,16,64", metavar="N1[,N2...]",
        help="simulated slave counts to sweep (default: 8,16,64)",
    )
    sim.add_argument(
        "--no-scenarios", action="store_true", dest="no_scenarios",
        help="skip the contention/heterogeneity/failure scenario replays",
    )
    sim.add_argument(
        "--output", default=None, metavar="PATH",
        help="merge the sweep as the 'sim_bench' section of this "
             "summary JSON (e.g. BENCH_summary.json)",
    )

    report = sub.add_parser(
        "report", help="write a markdown report of a suite run"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="output file path"
    )
    report.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size scale factor",
    )
    report.add_argument(
        "--workloads", nargs="*", default=None,
        help="subset of workloads (default: all)",
    )
    return parser


def _add_workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("workload", choices=sorted(WORKLOADS))
    sub.add_argument("--size", type=int, default=None)


def _distill_config(args) -> Optional[DistillConfig]:
    task_size = getattr(args, "task_size", None)
    if task_size is None:
        return None
    return dataclasses.replace(DistillConfig(), target_task_size=task_size)


def cmd_list(_args) -> int:
    table = Table(["workload", "default size", "description"])
    for spec in WORKLOADS.values():
        table.add_row(spec.name, spec.default_size, spec.description)
    print(table.render())
    return 0


def cmd_seq(args) -> int:
    from repro.machine import run_to_halt

    instance = get_workload(args.workload).instance(args.size)
    result = run_to_halt(instance.program)
    print(f"{instance.name}: halted after {result.steps} instructions")
    for offset in range(4):
        value = result.state.load(RESULT_BASE + offset)
        if value:
            print(f"  result[{offset}] = {value}")
    return 0


def cmd_distill(args) -> int:
    from repro.experiments.harness import distilled_dynamic_length, prepare

    prepared = prepare(
        get_workload(args.workload), size=args.size,
        distill_config=_distill_config(args),
    )
    print(prepared.distillation.report.describe())
    print(f"dynamic: {prepared.seq_instrs} -> {prepared.distilled_instrs} "
          f"({prepared.distillation_ratio:.2f}x)")
    if args.show_asm:
        from repro.isa import disassemble

        listing = disassemble(prepared.distillation.distilled)
        print(listing.split("        .data")[0])
    return 0


def cmd_run(args) -> int:
    from repro.experiments import evaluate, prepare

    prepared = prepare(
        get_workload(args.workload), size=args.size,
        distill_config=_distill_config(args),
    )
    timing = dataclasses.replace(TimingConfig(), n_slaves=args.slaves)
    mssp_config = None
    if (
        args.runtime != "eager"
        or args.exec_tier is not None
        or args.mem_backend is not None
        or args.adaptive
        or args.predictors is not None
        or args.redistill_threshold is not None
    ):
        from repro.config import MsspConfig

        mssp_config = MsspConfig(
            runtime=args.runtime, exec_tier=args.exec_tier,
            mem_backend=args.mem_backend,
        )
        if args.adaptive:
            mssp_config = mssp_config.with_adaptation()
        if args.predictors is not None:
            mssp_config = dataclasses.replace(
                mssp_config, predictors=args.predictors
            )
        if args.redistill_threshold is not None:
            mssp_config = dataclasses.replace(
                mssp_config, redistill_threshold=args.redistill_threshold
            )
        if args.workers is not None:
            mssp_config = dataclasses.replace(
                mssp_config, num_slaves=args.workers
            )
    row = evaluate(prepared, mssp_config=mssp_config, timing_config=timing)
    counters = row.counters
    print(f"{row.name}: equivalent to SEQ (checked)")
    if mssp_config is not None:
        print(f"  runtime:                 {mssp_config.runtime} "
              f"({mssp_config.num_slaves} slave workers)")
        if mssp_config.exec_tier is not None:
            print(f"  exec tier:               {mssp_config.exec_tier}")
        if mssp_config.mem_backend is not None:
            print(f"  memory backend:          {mssp_config.mem_backend}")
    print(f"  sequential instructions: {row.seq_instrs}")
    print(f"  distillation ratio:      {prepared.distillation_ratio:.2f}")
    print(f"  tasks committed/squashed: "
          f"{counters.tasks_committed}/{counters.tasks_squashed}")
    print(f"  live-in accuracy:        {counters.live_in_accuracy:.3f}")
    if mssp_config is not None and (
        mssp_config.predictors != "off"
        or mssp_config.redistill_threshold is not None
    ):
        print(f"  predictor hits/misses:   "
              f"{counters.predictor_hits}/{counters.predictor_misses}")
        print(f"  redistillations:         {counters.redistillations}")
    print(f"  MSSP cycles:             {row.breakdown.total_cycles:.0f}")
    print(f"  speedup vs in-order:     {row.speedup:.2f}x "
          f"({args.slaves} slaves)")
    return 0


def cmd_suite(_args) -> int:
    from repro.experiments import evaluate, prepare

    table = Table(
        ["benchmark", "ratio", "squash", "speedup"],
        title="MSSP suite summary (8 slaves, default configuration)",
    )
    speedups: List[float] = []
    for name in WORKLOADS:
        prepared = prepare(get_workload(name))
        row = evaluate(prepared)
        speedups.append(row.speedup)
        table.add_row(
            name, prepared.distillation_ratio,
            row.counters.squash_rate, row.speedup,
        )
        print(f"  {name}: done", file=sys.stderr)
    table.add_row("geomean", "", "", geomean(speedups))
    print(table.render())
    return 0


def cmd_timeline(args) -> int:
    from repro.experiments import evaluate, prepare
    from repro.timing import render_timeline, simulate_mssp, utilization

    prepared = prepare(get_workload(args.workload), size=args.size)
    row = evaluate(prepared)
    timing = dataclasses.replace(TimingConfig(), n_slaves=args.slaves)
    breakdown = simulate_mssp(row.mssp, timing, schedule=True)
    window = breakdown.total_cycles
    if args.cycles > 0:
        window = min(window, args.cycles)
    busy = utilization(breakdown, args.slaves)
    print(
        f"{args.workload}: {breakdown.total_cycles:.0f} cycles, "
        f"slave utilization {busy:.0%}"
    )
    print(render_timeline(breakdown, width=args.width, end=window))
    print("legend: ==== master   #### committed   xxxx squashed   "
          "C commit   rrrr recovery")
    return 0


def _lint_workload(name, args, config):
    """All checker reports for one workload, stopping at the first layer
    that fails.  Returns ``(reports, distill_error)``."""
    from repro.analysis.checker import (
        check_dataflow,
        check_decoded,
        check_distillation,
        check_jit,
        check_memory,
        check_program,
        check_runtime_execution,
        check_safety_report,
        check_safety_runtime,
        check_server_execution,
        check_sim_execution,
    )
    from repro.analysis.specsafe import prove_safety
    from repro.distill.distiller import Distiller
    from repro.errors import CheckFailure, DistillError
    from repro.experiments.harness import training_profile

    instance = get_workload(name).instance(args.size)
    reports = []

    def gate(report) -> bool:
        reports.append(report)
        return report.ok

    if not gate(check_program(instance.program, subject=name)):
        return reports, None
    if not gate(check_decoded(instance.program, subject=name)):
        return reports, None
    if not gate(check_jit(instance.program, subject=f"{name}: jit")):
        return reports, None
    if not gate(check_memory(instance.program, subject=f"{name}: memory")):
        return reports, None
    if not gate(check_dataflow(instance.program, subject=name)):
        return reports, None
    profile = training_profile(instance)
    try:
        distillation = Distiller(config).distill(instance.program, profile)
    except CheckFailure as failure:
        from repro.analysis.checker import CheckReport

        stage = failure.pass_name or "?"
        report = CheckReport(subject=f"{name}: distillation pass {stage!r}")
        report.findings.extend(failure.findings)
        reports.append(report)
        return reports, None
    except DistillError as error:
        return reports, str(error)
    if not gate(check_distillation(
        instance.program, distillation.distilled, distillation.pc_map,
        subject=f"{name}: distilled",
    )):
        return reports, None
    if not gate(check_decoded(
        distillation.distilled, subject=f"{name}: distilled decoded"
    )):
        return reports, None
    safety = prove_safety(
        instance.program, distillation.distilled, distillation.pc_map
    )
    if not gate(check_safety_report(
        instance.program, distillation.pc_map, safety, subject=name,
    )):
        return reports, None
    if not gate(check_safety_runtime(
        instance.program, distillation, subject=f"{name}: safety runtime"
    )):
        return reports, None
    if not gate(check_runtime_execution(
        instance.program, distillation, subject=f"{name}: runtime",
        profile=profile,
    )):
        return reports, None
    if not gate(check_sim_execution(
        instance.program, distillation, subject=f"{name}: sim",
    )):
        return reports, None
    gate(check_server_execution(
        name, instance.program, distillation,
        subject=f"{name}: server", profile=profile, size=instance.size,
    ))
    return reports, None


def _lint_names(args, flag: str):
    if getattr(args, flag):
        return sorted(WORKLOADS)
    if args.workload is not None:
        return [args.workload]
    return None


def cmd_lint(args) -> int:
    import json

    names = _lint_names(args, "lint_all")
    if names is None:
        print("lint: give a workload name or --all", file=sys.stderr)
        return 2

    base = _distill_config(args) or DistillConfig()
    config = dataclasses.replace(base, verify_after_each_pass=True)
    failures = 0
    warnings = 0
    payload = []
    for name in names:
        reports, distill_error = _lint_workload(name, args, config)
        ok = distill_error is None and all(r.ok for r in reports)
        if not ok:
            failures += 1
        warnings += sum(len(r.warnings) for r in reports)
        if args.format == "json":
            payload.append({
                "workload": name,
                "ok": ok,
                "error": distill_error,
                "reports": [r.to_json() for r in reports],
            })
            continue
        for report in reports:
            print(report.render())
        if distill_error is not None:
            print(f"{name}: distillation FAIL: {distill_error}")
    if args.format == "json":
        print(json.dumps({
            "ok": not failures,
            "failures": failures,
            "warnings": warnings,
            "workloads": payload,
        }, indent=2))
    else:
        verdict = "clean" if not failures else f"{failures} FAILED"
        print(
            f"lint: {len(names)} workload(s), {verdict}, "
            f"{warnings} warning(s)"
        )
    return 1 if failures else 0


def cmd_analyze(args) -> int:
    import json

    from repro.analysis.checker import (
        check_safety_report,
        CheckFinding,
        CheckReport,
        Severity,
    )
    from repro.analysis.specsafe import prove_safety
    from repro.config import MsspConfig
    from repro.distill.distiller import Distiller
    from repro.errors import CheckFailure, DistillError
    from repro.experiments.harness import training_profile
    from repro.mssp.engine import MsspEngine

    names = _lint_names(args, "analyze_all")
    if names is None:
        print("analyze: give a workload name or --all", file=sys.stderr)
        return 2

    config = _distill_config(args) or DistillConfig()
    # "observe" trains the live-in value predictors on the run without
    # ever overriding a checkpoint, so the squash-risk table can report
    # what a predictor *would* achieve per UNPROVEN cell.
    mssp_config = MsspConfig(static_safety="check", predictors="observe")
    exit_code = 0
    payload = []
    for name in names:
        instance = get_workload(name).instance(args.size)
        try:
            distillation = Distiller(config).distill(
                instance.program, training_profile(instance)
            )
        except DistillError as error:
            exit_code = 1
            if args.format == "json":
                payload.append({"workload": name, "error": str(error)})
            else:
                print(f"== {name} ==\n  distillation FAIL: {error}")
            continue
        safety = prove_safety(
            instance.program, distillation.distilled, distillation.pc_map
        )
        shape_report = check_safety_report(
            instance.program, distillation.pc_map, safety, subject=name,
        )
        # Differential check-mode run: every live-in is still compared;
        # a mismatch on a PROVEN cell raises inside the engine (DF005).
        runtime_report = CheckReport(subject=f"{name}: safety runtime")
        proven_squash = None
        counters = None
        per_anchor = {}
        predictor_stats = {}
        try:
            engine = MsspEngine(
                instance.program, distillation, config=mssp_config
            )
            result = engine.run_and_check()
            counters = result.counters
            bank = engine.predictor
            if bank is not None:
                for anchor in safety.regions:
                    stats = bank.stats_for(anchor)
                    if stats:
                        predictor_stats[anchor] = stats
            for record in result.records:
                start_pc = getattr(record, "start_pc", None)
                if start_pc is None:
                    continue
                row = per_anchor.setdefault(
                    start_pc, {"tasks": 0, "squashed": 0, "reasons": {}}
                )
                row["tasks"] += 1
                if not record.committed:
                    row["squashed"] += 1
                    reason = record.squash_reason
                    row["reasons"][reason] = (
                        row["reasons"].get(reason, 0) + 1
                    )
        except CheckFailure as failure:
            proven_squash = str(failure)
            runtime_report.findings.append(CheckFinding(
                check_id="DF005", severity=Severity.ERROR,
                message=proven_squash,
            ))
        findings = shape_report.findings + runtime_report.findings
        if any(f.severity is Severity.ERROR for f in findings):
            exit_code = 1
        if args.format == "json":
            payload.append({
                "workload": name,
                "size": instance.size,
                "safety": safety.to_json(),
                "runtime": {
                    "proven_squash": proven_squash,
                    "static_verify_skips": (
                        counters.static_verify_skips if counters else None
                    ),
                    "live_ins_checked": (
                        counters.live_ins_checked if counters else None
                    ),
                    "tasks_committed": (
                        counters.tasks_committed if counters else None
                    ),
                    "tasks_squashed": (
                        counters.tasks_squashed if counters else None
                    ),
                },
                "regions": [
                    dict(
                        safety.regions[anchor].to_json(),
                        tasks=per_anchor.get(anchor, {}).get("tasks", 0),
                        squashed=per_anchor.get(anchor, {}).get(
                            "squashed", 0
                        ),
                        squash_reasons=per_anchor.get(anchor, {}).get(
                            "reasons", {}
                        ),
                        predictors=[
                            {
                                "reg": reg,
                                "kind": cell.kind,
                                "hit_rate": cell.hit_rate,
                                "observations": cell.observations,
                                "master_misses": cell.master_misses,
                            }
                            for reg, cell in sorted(
                                predictor_stats.get(anchor, {}).items()
                            )
                        ],
                    )
                    for anchor in sorted(safety.regions)
                ],
                "findings": [f.to_json() for f in findings],
            })
            continue
        print(f"== {name} (size {instance.size}) ==")
        if safety.bailed:
            print(f"  prover bailed: {safety.bail_reason}")
        table = Table(
            ["anchor", "live-ins", "proven", "stable", "unproven",
             "mem", "tasks", "squashed", "top reason", "predictors"],
        )
        for anchor in sorted(safety.regions):
            region = safety.regions[anchor]
            counts = region.counts()
            stats = per_anchor.get(anchor, {})
            reasons = stats.get("reasons", {})
            top = max(reasons, key=reasons.get) if reasons else "-"
            cells = predictor_stats.get(anchor, {})
            predicted = " ".join(
                f"r{reg}:{cell.kind} {cell.hit_rate:.0%}"
                for reg, cell in sorted(cells.items())
            ) or "-"
            table.add_row(
                anchor, len(region.cells), counts["proven"],
                counts["stable"], counts["unproven"],
                "yes" if region.mem_proven else "no",
                stats.get("tasks", 0), stats.get("squashed", 0), top,
                predicted,
            )
        print(table.render())
        if counters is not None:
            print(
                f"  static verify skips: {counters.static_verify_skips} "
                f"of {counters.live_ins_checked} live-in compares; "
                f"{counters.tasks_committed} committed / "
                f"{counters.tasks_squashed} squashed"
            )
        for finding in findings:
            print("  " + finding.render())
        if proven_squash is not None:
            print(f"  DF005 VIOLATION: {proven_squash}")
    if args.format == "json":
        print(json.dumps(
            {"ok": exit_code == 0, "workloads": payload}, indent=2
        ))
    return exit_code


def cmd_serve(args) -> int:
    """JSONL front-end over the in-process episode server.

    One request per input line — ``{"workload": "crc", "size": 6,
    "tenant": "a"}`` or ``{"digest": "..."}`` — submitted as a stream;
    one JSON response per line on stdout in request order, serving
    statistics on stderr at end of stream.  No sockets: pipe requests
    in, pipe responses out.
    """
    import json

    from repro.config import MsspConfig, ServeConfig
    from repro.serve import EpisodeServer, EpisodeRequest, state_digest

    warmup = tuple(
        name.strip()
        for name in (args.warmup or "").split(",") if name.strip()
    )
    unknown = [name for name in warmup if name not in WORKLOADS]
    if unknown:
        print(f"serve: unknown warmup workload(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    mssp_config = MsspConfig(
        runtime=args.runtime, exec_tier=args.exec_tier
    )
    server = EpisodeServer(
        ServeConfig(
            workers=args.workers, worker_capacity=args.capacity,
            max_queue_depth=args.queue_depth, admission=args.admission,
            max_batch=args.max_batch, warmup=warmup,
        ),
        mssp_config=mssp_config,
    )
    stream = open(args.requests) if args.requests else sys.stdin
    handles = []
    rejected = []
    try:
        with server:
            for line in stream:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    payload = json.loads(line)
                    request = EpisodeRequest(
                        workload=payload.get("workload"),
                        digest=payload.get("digest"),
                        size=payload.get("size"),
                        config=mssp_config,
                        tenant=str(payload.get("tenant", "default")),
                    )
                    if (
                        request.workload is not None
                        and request.workload not in WORKLOADS
                    ):
                        raise ValueError(
                            f"unknown workload {request.workload!r}"
                        )
                except Exception as error:  # noqa: BLE001 - per line
                    rejected.append({
                        "status": "error",
                        "error": f"bad request line: {error}",
                    })
                    continue
                handles.append(server.submit(request))
            for handle in handles:
                response = handle.result()
                out = {
                    "request_id": response.request_id,
                    "status": response.status,
                    "workload": response.workload,
                    "digest": response.digest,
                    "tenant": response.tenant,
                    "worker": response.worker,
                    "batched": response.batched,
                    "cache": response.cache,
                    "latency_ms": round(response.latency_seconds * 1e3, 3),
                    "queue_ms": round(response.queue_seconds * 1e3, 3),
                }
                if response.ok:
                    counters = response.result.counters
                    out["state_digest"] = state_digest(
                        response.result.final_state
                    )
                    out["tasks_committed"] = counters.tasks_committed
                    out["tasks_squashed"] = counters.tasks_squashed
                else:
                    out["error"] = response.error
                print(json.dumps(out), flush=True)
            for out in rejected:
                print(json.dumps(out), flush=True)
            stats = dict(server.stats.summary())
            stats["cache"] = server.cache_summary()
    finally:
        if args.requests:
            stream.close()
    print(f"serve: {json.dumps(stats)}", file=sys.stderr)
    return 0


def _bench_serve(args, scale: float) -> int:
    from repro.config import MsspConfig, ServeConfig
    from repro.experiments.bench import write_summary
    from repro.experiments import cache as artifact_cache
    from repro.serve.bench import (
        DEFAULT_RATES,
        DEFAULT_SERVE_WORKLOADS,
        run_serve_bench,
    )

    workloads = (
        tuple(args.workloads) if args.workloads else DEFAULT_SERVE_WORKLOADS
    )
    rates = (
        tuple(float(r) for r in args.serve_rates.split(","))
        if args.serve_rates else DEFAULT_RATES
    )
    serve = run_serve_bench(
        workloads=workloads, rates=rates,
        requests_per_rate=args.serve_requests, scale=scale,
        seed=args.serve_seed,
        serve_config=ServeConfig(workers=args.serve_workers),
        mssp_config=MsspConfig(runtime=args.runtime),
    )
    cold = serve["cold"]
    warm = serve["warm"]
    print(
        f"serving benchmark ({', '.join(workloads)}; "
        f"runtime {serve['runtime'] or 'default'}, "
        f"{args.serve_workers} server workers):"
    )
    print(f"  cold (1 fresh pipeline/episode): "
          f"{cold['episodes_per_sec']:>10.2f} episodes/sec")
    print(f"  warm server (burst):             "
          f"{warm['episodes_per_sec']:>10.2f} episodes/sec")
    print(f"  warm vs cold:                    "
          f"{serve['speedup_vs_cold']:>10.2f}x")
    print(f"  shared-cache hit rate:           "
          f"{serve['cache_hit_rate']:>10.0%}")
    table = Table(
        ["rate/s", "offered", "done", "shed", "eps/s", "p50 ms",
         "p99 ms", "p99.9 ms", "maxQ"],
        title="open-loop Poisson arrivals",
    )
    for row in serve["open_loop"]:
        table.add_row(
            f"{row['rate']:g}", row["offered"], row["completed"],
            row["shed"], f"{row['episodes_per_sec']:.2f}",
            f"{row['latency_p50_ms']:.2f}",
            f"{row['latency_p99_ms']:.2f}",
            f"{row['latency_p999_ms']:.2f}",
            row["max_queue_depth"],
        )
    print(table.render())
    write_summary(
        {"schema": artifact_cache.CACHE_SCHEMA, "serve_bench": serve},
        args.output,
    )
    print(f"wrote {args.output}")
    return 0


def cmd_bench(args) -> int:
    import os

    from repro.experiments import cache as artifact_cache
    from repro.experiments.bench import (
        check_baseline,
        run_bench,
        write_baseline,
        write_summary,
    )

    if args.clear_cache:
        removed = artifact_cache.clear()
        print(f"cleared {removed} cached artifact(s)", file=sys.stderr)
    scale = args.scale
    if scale is None:
        scale = 0.1 if args.quick else float(
            os.environ.get("REPRO_BENCH_SCALE", "1.0")
        )
    if args.serve:
        return _bench_serve(args, scale)
    summary = run_bench(
        workloads=args.workloads, scale=scale, jobs=args.jobs,
        runtime=args.runtime,
    )
    micro = summary["microbenchmark"]
    print(
        f"interpreter microbenchmark ({micro['workload']}, "
        f"{micro['dynamic_instrs']} instrs):"
    )
    print(f"  reference execute() loop: "
          f"{micro['legacy_instrs_per_sec']:>12,.0f} instrs/sec")
    print(f"  pre-decoded engine:       "
          f"{micro['decoded_instrs_per_sec']:>12,.0f} instrs/sec")
    print(f"  superblock jit:           "
          f"{micro['jit_instrs_per_sec']:>12,.0f} instrs/sec")
    print(f"  jit on flat memory:       "
          f"{micro['flat_instrs_per_sec']:>12,.0f} instrs/sec")
    print(f"  decoded vs reference:     {micro['speedup']:>12.2f}x")
    print(f"  jit vs decoded:           {micro['jit_speedup']:>12.2f}x")
    print(f"  master jit vs decoded:    {micro['master_jit_speedup']:>12.2f}x"
          f" ({micro['master_jit_coverage']:.0%} coverage, "
          f"{micro['jit_link_promotions']} link promotion(s))")
    table = Table(
        ["workload", "size", "wall s", "Msim/s", "speedup",
         "squash", "adapt", "redist", "cache"],
        title=f"E-suite (scale {scale:g}, -j {args.jobs}; squash/adapt = "
              f"squash rate without/with the adaptive prediction loop)",
    )
    for row in summary["suite"]:
        table.add_row(
            row["workload"], row["size"], f"{row['wall_seconds']:.3f}",
            f"{row['instrs_per_sec'] / 1e6:.2f}",
            f"{row['speedup']:.2f}",
            f"{row['squash_rate']:.3f}",
            f"{row['adaptive_squash_rate']:.3f}",
            row["redistillations"],
            "hit" if row["cache_hit"] else "miss",
        )
    print(table.render())
    if args.runtime != "eager":
        backend = summary["suite"][0]["pipelined_runtime"] if (
            summary["suite"]
        ) else args.runtime
        ptable = Table(
            ["workload", "eager s", f"{backend} s", "measured", "identical"],
            title=f"{backend} runtime wall clock "
                  f"({max(2, args.jobs)} slave workers, "
                  f"{summary['cpu_count']} CPUs)",
        )
        for row in summary["suite"]:
            ptable.add_row(
                row["workload"],
                f"{row['wall_eager_seconds']:.3f}",
                f"{row['wall_parallel_seconds']:.3f}",
                f"{row['measured_parallel_speedup']:.2f}x",
                "yes" if row["parallel_identical"] else "NO",
            )
        print(ptable.render())
        if not all(r["parallel_identical"] for r in summary["suite"]):
            print(f"bench: {backend} runtime DIVERGED from eager",
                  file=sys.stderr)
            return 1
    print(
        f"suite wall time {summary['suite_wall_seconds']:.2f}s, "
        f"{summary['cache_hits']}/{len(summary['suite'])} cache hits "
        f"({summary['cache_dir']})"
    )
    write_summary(summary, args.output)
    print(f"wrote {args.output}")
    if args.write_baseline is not None:
        write_baseline(summary, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
    if args.baseline is not None:
        problems = check_baseline(summary, args.baseline)
        for problem in problems:
            print(f"bench: REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench: within baseline {args.baseline}")
    return 0


def _capture_trace(args):
    """Run a workload with an ``EventLog`` subscribed; the stamped events."""
    from repro.config import MsspConfig
    from repro.experiments import prepare
    from repro.mssp.engine import create_engine
    from repro.mssp.runtime.events import EventLog

    prepared = prepare(get_workload(args.workload), size=args.size)
    config = MsspConfig(runtime=args.runtime)
    if args.slaves is not None:
        config = dataclasses.replace(config, num_slaves=args.slaves)
    log = EventLog()
    with create_engine(
        prepared.instance.program, prepared.distillation, config
    ) as engine:
        engine.events.subscribe(log)
        engine.run()
    return prepared, log.events


def _trace_summary(events) -> dict:
    from collections import Counter

    from repro.timing.clock import CostModel
    from repro.timing.simulator import records_from_events

    kinds = Counter(event.kind for event in events)
    stamps = [event.at for event in events]
    summary = {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "span": (max(stamps) - min(stamps)) if stamps else 0.0,
        "records": len(records_from_events(events)),
    }
    try:
        summary["calibrated_slave_instr"] = CostModel.calibrate(
            events
        ).slave_instr
    except ValueError:
        summary["calibrated_slave_instr"] = None
    return summary


def cmd_trace(args) -> int:
    import json

    from repro.sim.tracefile import export_events, import_events

    if args.import_path is not None:
        events = import_events(args.import_path)
        summary = _trace_summary(events)
        print(f"imported {summary['events']} event(s) "
              f"from {args.import_path}")
        print(f"  kinds:   {json.dumps(summary['kinds'])}")
        print(f"  span:    {summary['span']:.6f}s "
              f"({summary['records']} trace record(s))")
        rate = summary["calibrated_slave_instr"]
        if rate is not None:
            print(f"  calibrated cost: {rate:.3e} s/instr")
        else:
            print("  calibrated cost: n/a (no measured task costs)")
        return 0
    if args.workload is None:
        print("trace: give a workload to capture or --import a trace",
              file=sys.stderr)
        return 2
    prepared, events = _capture_trace(args)
    summary = _trace_summary(events)
    print(f"captured {summary['events']} event(s) from {prepared.name} "
          f"({args.runtime} runtime)")
    print(f"  kinds:   {json.dumps(summary['kinds'])}")
    print(f"  span:    {summary['span']:.6f}s "
          f"({summary['records']} trace record(s))")
    if args.export_path is not None:
        count = export_events(events, args.export_path)
        print(f"wrote {count} event(s) to {args.export_path}")
    return 0


def cmd_sim(args) -> int:
    import json
    import os

    from repro.sim.bench import run_sim_bench

    try:
        slave_counts = tuple(
            int(part) for part in args.slaves.split(",") if part.strip()
        )
    except ValueError:
        print(f"sim: bad --slaves value {args.slaves!r}", file=sys.stderr)
        return 2
    if not slave_counts or any(n < 1 for n in slave_counts):
        print("sim: --slaves needs positive slave counts", file=sys.stderr)
        return 2

    section = run_sim_bench(
        workload=args.workload, slave_counts=slave_counts,
        size=args.size, scenarios=not args.no_scenarios,
    )
    print(f"cluster simulation ({section['workload']}: "
          f"{section['tasks_replayed']} tasks, "
          f"{section['total_instrs']} sequential instrs)")
    print(f"  functional result bit-identical to eager: "
          f"{'yes' if section['bit_identical'] else 'NO'}")
    table = Table(
        ["slaves", "sim cycles", "analytic", "gap", "agrees", "speedup",
         "stall", "commit-bound"],
        title="slave-count sweep (discrete-event replay vs analytic model)",
    )
    for row in section["sweep"]:
        table.add_row(
            row["n_slaves"], f"{row['sim_cycles']:.0f}",
            f"{row['analytic_cycles']:.0f}",
            f"{row['agreement_gap']:.2e}",
            "yes" if row["agrees"] else "NO",
            f"{row['speedup']:.2f}x",
            f"{row['master_stall_cycles']:.0f}",
            row["commit_bound_tasks"],
        )
    print(table.render())
    if section.get("scenarios"):
        stable = Table(
            ["scenario", "slaves", "sim cycles", "vs ideal", "speedup"],
            title="cluster scenarios beyond the analytic model",
        )
        for row in section["scenarios"]:
            stable.add_row(
                row["scenario"], row["n_slaves"],
                f"{row['sim_cycles']:.0f}",
                f"{row['slowdown_vs_ideal']:.2f}x",
                f"{row['speedup']:.2f}x",
            )
        print(stable.render())
    ok = section["bit_identical"] and all(
        row["agrees"] for row in section["sweep"]
    )
    if args.output is not None:
        from repro.experiments import cache as artifact_cache
        from repro.experiments.bench import write_summary

        if os.path.exists(args.output):
            with open(args.output, "r", encoding="utf-8") as handle:
                summary = json.load(handle)
        else:
            summary = {"schema": artifact_cache.CACHE_SCHEMA}
        summary["sim_bench"] = section
        write_summary(summary, args.output)
        print(f"wrote {args.output}")
    if not ok:
        print("sim: replay DISAGREED with the analytic model "
              "or diverged functionally", file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(
        workload_names=args.workloads, size_scale=args.scale
    )
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


COMMANDS = {
    "list": cmd_list,
    "seq": cmd_seq,
    "distill": cmd_distill,
    "run": cmd_run,
    "timeline": cmd_timeline,
    "suite": cmd_suite,
    "lint": cmd_lint,
    "analyze": cmd_analyze,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "trace": cmd_trace,
    "sim": cmd_sim,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
