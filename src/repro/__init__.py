"""repro — a reproduction of Master/Slave Speculative Parallelization (MSSP).

Reproduces the system of Zilles & Sohi, "Master/Slave Speculative
Parallelization", MICRO-35, 2002: a master processor executes a distilled
(approximate) program to predict task live-ins for slave processors that
execute the original program speculatively in parallel, with a
verify/commit unit guaranteeing sequential semantics.

Top-level convenience imports cover the quickstart path::

    from repro import assemble, run_sequential, distill_program, run_mssp

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.isa import Program, ProgramBuilder, assemble, disassemble
from repro.machine import ArchState, run_to_halt as run_sequential

__version__ = "1.0.0"


def distill_program(program, profile=None, config=None):
    """Profile (if needed) and distill ``program``.

    Convenience wrapper over :class:`repro.distill.Distiller`; see that
    class for the full API.  Returns a
    :class:`~repro.distill.distiller.DistillationResult`.
    """
    from repro.distill import Distiller
    from repro.profiling import profile_program

    if profile is None:
        profile = profile_program(program)
    return Distiller(config).distill(program, profile)


def run_mssp(program, distilled=None, config=None):
    """Run ``program`` under MSSP and return the engine result.

    ``distilled`` defaults to distilling with default settings.  Returns a
    :class:`~repro.mssp.engine.MsspResult` whose ``final_state`` is
    guaranteed to equal sequential execution's final state.
    """
    from repro.mssp import MsspEngine

    if distilled is None:
        distilled = distill_program(program)
    return MsspEngine(program, distilled, config=config).run()


__all__ = [
    "Program",
    "ProgramBuilder",
    "assemble",
    "disassemble",
    "ArchState",
    "run_sequential",
    "distill_program",
    "run_mssp",
    "__version__",
]
