"""Slave-side task execution with live-in/live-out recording.

A slave executes the **original** program (the same
:func:`repro.machine.semantics.execute` the sequential model uses) on a
:class:`SlaveView`:

* registers start from the master's checkpoint; the first read of a
  register that the task has not yet written records a live-in;
* loads consult, in order: the task's own stores, the master's shipped
  memory overlay, then architected state — the first-read value is
  recorded as a memory live-in;
* every write lands in task-private storage (the live-outs); architected
  state is never touched during speculation.

Execution stops at the first arrival at the task's end pc (checked
*after* each step, so a task whose start equals its end — one full loop
iteration — executes the whole iteration), at ``halt``, or when the
instruction budget is exhausted (recorded as an overrun, which
verification treats as a misspeculation).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ProtectedAccessError
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.jit import EXIT_ARRIVAL, EXIT_HALT, jit_for
from repro.machine.state import ArchState, wrap64
from repro.mssp.regions import ProtectedRegions
from repro.mssp.task import Checkpoint, Task, TaskStatus


class SlaveView:
    """MachineStateLike view implementing the recording rules above.

    When ``regions`` is set, any access to a protected address raises
    :class:`~repro.errors.ProtectedAccessError` *before* the access is
    performed — speculative execution must never produce (or observe) a
    device-visible effect.
    """

    __slots__ = (
        "pc", "_regs", "_reg_written", "_ckpt_mem", "_arch",
        "_own_mem", "live_in_regs", "live_in_mem", "_regions",
    )

    def __init__(
        self,
        checkpoint: Checkpoint,
        arch: ArchState,
        pc: int,
        regions: Optional["ProtectedRegions"] = None,
    ):
        self.pc = pc
        self._regs: List[int] = list(checkpoint.regs)
        self._reg_written = [False] * len(self._regs)
        self._ckpt_mem = checkpoint.mem
        self._arch = arch
        self._own_mem: Dict[int, int] = {}
        self.live_in_regs: Dict[int, int] = {}
        self.live_in_mem: Dict[int, int] = {}
        self._regions = regions

    # -- MachineStateLike -------------------------------------------------------

    def read_reg(self, index: int) -> int:
        if index == 0:
            return 0
        value = self._regs[index]
        if not self._reg_written[index] and index not in self.live_in_regs:
            self.live_in_regs[index] = value
        return value

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self._regs[index] = wrap64(value)
            self._reg_written[index] = True

    def load(self, address: int) -> int:
        if self._regions is not None and address in self._regions:
            raise ProtectedAccessError(address, is_store=False)
        if address in self._own_mem:
            return self._own_mem[address]
        if address in self.live_in_mem:
            return self.live_in_mem[address]
        if address in self._ckpt_mem:
            value = self._ckpt_mem[address]
        else:
            value = self._arch.load(address)
        self.live_in_mem[address] = value
        return value

    def store(self, address: int, value: int) -> None:
        if self._regions is not None and address in self._regions:
            raise ProtectedAccessError(address, is_store=True)
        self._own_mem[address] = wrap64(value)

    # -- results ------------------------------------------------------------------

    def live_out_regs(self) -> Dict[int, int]:
        return {
            index: value
            for index, value in enumerate(self._regs)
            if self._reg_written[index]
        }

    def live_out_mem(self) -> Dict[int, int]:
        return dict(self._own_mem)


def execute_task(
    program: Program,
    task: Task,
    arch: ArchState,
    max_instrs: int,
    regions: Optional[ProtectedRegions] = None,
    tier: str = "decoded",
) -> Task:
    """Run ``task`` speculatively against ``arch`` (read-only), in place.

    Fills the task's live-in/live-out sets, dynamic instruction count and
    termination flags, and advances its status to COMPLETED.  ``arch`` is
    never written.  A protected-region access aborts the task before the
    access happens (``task.protected_access``).

    ``tier`` selects the stepper: ``oracle`` defers every step to
    ``semantics.execute``, ``decoded`` (the default) runs the pre-decoded
    closures, ``jit`` runs compiled superblocks over the same recording
    view with deopt back to the per-step path.  The jit tier deopts
    entirely when protected regions are configured (a mid-region
    :class:`~repro.errors.ProtectedAccessError` would lose the region's
    pending step accounting) or when the task's end pc is not a block
    leader (superblocks only check arrivals at leaders) — in both cases
    execution is exactly the decoded per-step loop, so results stay
    bit-identical by construction.
    """
    view = SlaveView(task.checkpoint, arch, task.start_pc, regions=regions)
    decoded = decode(program, oracle=tier == "oracle")
    steppers = decoded.steppers
    size = decoded.size
    steps = 0
    loads = 0
    halted = False
    faulted = False
    overrun = False
    protected = False
    end_pc = task.end_pc
    remaining_arrivals = max(1, task.end_arrivals)
    jp = None
    if tier == "jit" and regions is None:
        candidate = jit_for(program, "view")
        if end_pc is None or end_pc in candidate.leaders:
            jp = candidate
    while True:
        pc = view.pc
        if not 0 <= pc < size:
            faulted = True
            break
        if jp is not None:
            region = jp.region_for(pc)
            if region is not None and steps + region.linear_len < max_instrs:
                steps, loads, remaining_arrivals, status = region.fn(
                    view, steps, loads, max_instrs, end_pc,
                    remaining_arrivals, None, 0,
                )
                if status == EXIT_HALT:
                    halted = True
                    break
                if status == EXIT_ARRIVAL:
                    break
                continue  # EXIT_RUN: pc synced; retry dispatch there.
        try:
            effect = steppers[pc](view)
        except ProtectedAccessError:
            protected = True
            break
        if effect.halted:
            halted = True
            break
        steps += 1
        if effect.mem_addr is not None and not effect.is_store:
            loads += 1
        if end_pc is not None and view.pc == end_pc:
            remaining_arrivals -= 1
            if remaining_arrivals == 0:
                break
        if steps >= max_instrs:
            overrun = not halted
            break

    task.live_in_regs = view.live_in_regs
    task.live_in_mem = view.live_in_mem
    task.live_out_regs = view.live_out_regs()
    task.live_out_mem = view.live_out_mem()
    task.n_instrs = steps
    task.n_loads = loads
    task.end_state_pc = view.pc
    task.halted = halted
    task.faulted = faulted
    task.overrun = overrun
    task.protected_access = protected
    task.status = TaskStatus.COMPLETED
    return task
