"""Fault-injection utilities for attacking the fast path.

MSSP's central claim is that correctness cannot depend on the master.
This module provides the tools the test suite, the examples, and the
throttling benchmark use to *attack* that claim: deterministic
corruptions of distilled programs, outright random masters, and — via
:func:`corrupt_live_in` — runtime sabotage of individual speculative
tasks through the engine's event seam.  Every run with these faults
must still produce bit-exact sequential results (see
``tests/mssp/test_properties.py``).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.distill.pc_map import PcMap
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


def corrupt_distilled(
    distilled: Program,
    original_len: int,
    seed: int,
    severity: float = 0.15,
) -> Program:
    """Randomly damage a distilled program.

    Each instruction is independently hit with probability ``severity``;
    hits perturb immediates, retarget forks (possibly out of the original
    program entirely), retarget branches within the distilled text, or
    replace instructions with ``nop``.  The result is always a *valid*
    program (it assembles/validates) — just a wrong one.
    """
    rng = random.Random(seed)
    code = list(distilled.code)
    for index, instr in enumerate(code):
        if rng.random() >= severity:
            continue
        roll = rng.random()
        if instr.imm is not None and roll < 0.4:
            code[index] = Instruction(
                op=instr.op, rd=instr.rd, rs=instr.rs, rt=instr.rt,
                imm=instr.imm + rng.randint(-100, 100), target=instr.target,
            )
        elif instr.op is Opcode.FORK and roll < 0.6:
            code[index] = instr.with_target(
                rng.randint(0, original_len + 3)
            )
        elif instr.is_branch and roll < 0.8:
            code[index] = instr.with_target(rng.randrange(len(code)))
        elif not instr.is_terminator and instr.op is not Opcode.FORK:
            code[index] = Instruction(op=Opcode.NOP)
    return Program(
        code=tuple(code), memory=distilled.memory, entry=distilled.entry,
        symbols={}, name=f"{distilled.name}.corrupted",
    )


def corrupt_live_in(tid: int):
    """Event-bus subscriber that sabotages one task's recorded live-ins.

    Subscribe the returned callable to ``engine.events``: when task
    ``tid`` is about to be judged (the ``task_executed`` event — emitted
    after execution/adoption, before verification, identically under
    every executor backend), its lowest recorded register live-in is
    bumped by one, forcing a REGISTER_LIVE_IN squash at a point where
    pipelined runtimes have successors in flight.  Tasks whose attempt
    recorded no register live-ins are left alone (the squash would be
    unforceable).
    """

    def subscriber(event) -> None:
        if (
            event.kind == "task_executed"
            and event.task.tid == tid
            and event.task.live_in_regs
        ):
            register = min(event.task.live_in_regs)
            event.task.live_in_regs[register] += 1

    return subscriber


def random_garbage_master(
    original: Program, seed: int, length_range: Tuple[int, int] = (4, 30)
) -> Tuple[Program, PcMap]:
    """A completely random distilled program plus a matching pc map.

    The program is a salad of forks (with arbitrary — possibly invalid —
    anchors), jumps, stores and ALU noise, ending in ``halt``.  Running
    MSSP with it degenerates to mostly-sequential execution; it must
    never affect results.
    """
    rng = random.Random(seed)
    length = rng.randint(*length_range)
    code = []
    for _ in range(length - 1):
        roll = rng.random()
        if roll < 0.3:
            code.append(
                Instruction(
                    op=Opcode.FORK,
                    target=rng.randint(0, len(original.code) + 2),
                )
            )
        elif roll < 0.5:
            code.append(Instruction(op=Opcode.J, target=rng.randrange(length)))
        elif roll < 0.7:
            code.append(
                Instruction(
                    op=Opcode.ADDI, rd=rng.randrange(1, 8),
                    rs=rng.randrange(8), imm=rng.randint(-9, 9),
                )
            )
        elif roll < 0.85:
            code.append(
                Instruction(
                    op=Opcode.SW, rt=rng.randrange(8),
                    rs=rng.randrange(8), imm=rng.randint(0, 64),
                )
            )
        else:
            code.append(
                Instruction(
                    op=Opcode.LI, rd=rng.randrange(1, 8),
                    imm=rng.randint(-100, 100),
                )
            )
    code.append(Instruction(op=Opcode.HALT))
    garbage = Program(code=tuple(code), memory={}, name="garbage")
    resume = {original.entry: rng.randrange(length)}
    for instr in code:
        if instr.op is Opcode.FORK:
            resume.setdefault(int(instr.target), rng.randrange(length))
    pc_map = PcMap(resume=resume, entry_orig=original.entry)
    return garbage, pc_map
