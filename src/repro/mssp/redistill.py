"""Squash-driven online re-distillation (the runtime half of the loop).

A :class:`Redistiller` subscribes to the engine's EventBus and
accumulates a per-region miss profile from ``task_squashed`` events:
how many live-in misprediction squashes each fork anchor has caused,
and which register cells verification observed mismatched.  Once one
region crosses the configured threshold, the engine (between episodes —
i.e. between tasks, never under an in-flight speculation) asks it to
re-distill: the evidence is mapped onto the distiller's speculative
decisions (:mod:`repro.distill.adaptive`), folded into the training
profile, and the whole (pure, deterministic) distiller re-runs.  The
engine then hot-swaps the new artifact, invalidating every dependent
cache coherently, and emits a ``redistilled`` event carrying the
threshold so the RT003 lint check can audit the trigger from the event
stream alone.

Only squash reasons with clean region attribution participate
(:data:`LIVE_IN_REASONS`: register/memory live-in mismatches, whose
``origin_pc`` is the task's anchor).  Faults, overruns, master timeouts
and wrong-start-pc squashes are not live-in mispredictions the
distiller can learn from.

A round that maps no evidence (squashes the distiller's bets cannot
explain *yet*) resets that region's count and keeps listening — early
triggers can fire before verification has reported the mismatched
registers that implicate a suppressed path, so later evidence may still
map.  The probe is cheap (the distiller only re-runs once evidence
maps), and :data:`MAX_ROUNDS` bounds actual re-distillations.  Folding
is cumulative across rounds: each folded profile becomes the next base.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.config import DistillConfig
from repro.distill.adaptive import AdaptationDelta, redistill
from repro.distill.distiller import DistillationResult
from repro.errors import MsspError
from repro.machine.state import ArchState
from repro.profiling.profile_data import Profile

__all__ = ["LIVE_IN_REASONS", "Redistiller"]

#: Squash reasons that accumulate toward the re-distillation trigger.
LIVE_IN_REASONS = frozenset(("register-live-in", "memory-live-in"))

#: Safety valve: rounds per run, far above anything a real workload
#: needs (each round must map fresh evidence to proceed at all).
MAX_ROUNDS = 8


class Redistiller:
    """Accumulates squash evidence and produces replacement artifacts.

    Construct via :meth:`~repro.mssp.engine.MsspEngine.enable_adaptation`
    — the engine owns the subscription lifecycle and the hot swap; this
    class owns the evidence and the trigger decision.
    """

    def __init__(
        self,
        engine,
        profile: Profile,
        distill_config: Optional[DistillConfig] = None,
        threshold: Optional[int] = None,
    ) -> None:
        if threshold is None:
            threshold = engine.config.redistill_threshold
        if threshold is None:
            raise MsspError(
                "redistillation needs a threshold: set "
                "MsspConfig.redistill_threshold or pass one explicitly"
            )
        self.engine = engine
        self.threshold = int(threshold)
        self.config = distill_config
        #: The pristine training profile; :meth:`reset` restores it so
        #: repeated engine runs adapt from the same starting point.
        self._base_profile = profile
        self.profile = profile
        self.miss_counts: Dict[int, int] = {}
        self.mismatched_regs: Set[int] = set()
        self.generation = 0
        self.exhausted = False
        self._unsubscribe = engine.events.subscribe(self._on_event)

    # -- evidence ----------------------------------------------------------

    def _on_event(self, event) -> None:
        if getattr(event, "kind", None) != "task_squashed":
            return
        if event.reason not in LIVE_IN_REASONS:
            return
        origin = getattr(event.record, "origin_pc", None)
        if origin is None:
            return
        self.miss_counts[origin] = self.miss_counts.get(origin, 0) + 1
        self.mismatched_regs.update(event.mismatched_regs)

    def reset(self) -> None:
        """Back to the pristine state (start of an engine run)."""
        self.profile = self._base_profile
        self.miss_counts = {}
        self.mismatched_regs = set()
        self.generation = 0
        self.exhausted = False

    def close(self) -> None:
        self._unsubscribe()

    # -- trigger -----------------------------------------------------------

    def hot_region(self) -> Optional[int]:
        """The anchor past threshold (smallest wins, deterministically)."""
        over = [
            anchor
            for anchor, count in self.miss_counts.items()
            if count >= self.threshold
        ]
        return min(over) if over else None

    def maybe_redistill(
        self, arch: ArchState
    ) -> Optional[Tuple[int, int, DistillationResult, AdaptationDelta]]:
        """Re-distill if a region crossed the threshold.

        Called by the engine between episodes.  Returns ``(region,
        misses, result, delta)`` for the engine to hot-swap, or ``None``
        (below threshold, disarmed, or no evidence mapped).  On success
        the miss profile resets — the new master starts with a clean
        slate — and the folded profile becomes the next round's base.
        """
        if self.exhausted or self.generation >= MAX_ROUNDS:
            return None
        region = self.hot_region()
        if region is None:
            return None
        prior = self.engine._distillation
        if prior is None:
            self.exhausted = True
            return None
        misses = self.miss_counts[region]
        result, folded, delta = redistill(
            self.engine.original,
            self.profile,
            prior,
            arch.load_cells,
            frozenset(self.mismatched_regs),
            config=self.config,
        )
        if result is None:
            # Nothing the distiller bet on explains the squashes *so
            # far* — the region must earn another full threshold of
            # misses (with fresh mismatch evidence) to probe again.
            self.miss_counts[region] = 0
            return None
        self.profile = folded
        self.generation += 1
        self.miss_counts = {}
        self.mismatched_regs = set()
        return region, misses, result, delta
