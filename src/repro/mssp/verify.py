"""The verify/commit unit.

This is the *only* component allowed to write architected state, and the
component on which all of MSSP's correctness rests (the companion formal
paper's "task safety": a task may commit iff its recorded live-ins are
consistent with architected state).  The checks, in order:

1. execution integrity — the slave neither overran its budget nor faulted;
2. control consistency — the task starts exactly where the machine is;
3. data consistency — every recorded live-in value (registers and memory)
   equals the corresponding architected cell right now.

On success the task's live-outs are superimposed onto architected state
and the pc jumps to the task's end: the machine "jumps" ``n_instrs``
sequential steps at once.  On failure nothing is written.

The full live-in set is always scanned (no early exit) so the engine can
report live-in prediction *accuracy*, not just a pass/fail bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.state import ArchState
from repro.mssp.task import SquashReason, Task, TaskStatus


@dataclass(frozen=True)
class VerifyOutcome:
    """Result of checking one task against architected state."""

    ok: bool
    reason: SquashReason
    checked: int
    mismatched: int
    detail: str = ""
    #: Original-program pc the failure is attributed to: the task's
    #: anchor for live-in/control mismatches (the distiller's prediction
    #: for that anchor was wrong), or the pc the slave stopped at for
    #: faults/overruns/protected accesses.  ``None`` on success.
    origin_pc: Optional[int] = None


def verify_task(task: Task, arch: ArchState) -> VerifyOutcome:
    """Check ``task``'s live-ins against ``arch`` without modifying either."""
    if task.faulted:
        return VerifyOutcome(
            False, SquashReason.FAULT, task.live_in_count, 0,
            detail=f"speculative execution faulted at pc {task.end_state_pc}",
            origin_pc=task.end_state_pc,
        )
    if task.protected_access:
        return VerifyOutcome(
            False, SquashReason.PROTECTED, task.live_in_count, 0,
            detail=(
                f"pc {task.end_state_pc} would access a protected region; "
                "deferring to non-speculative execution"
            ),
            origin_pc=task.end_state_pc,
        )
    if task.overrun:
        return VerifyOutcome(
            False, SquashReason.OVERRUN, task.live_in_count, 0,
            detail=f"no arrival at end pc within {task.n_instrs} instructions",
            origin_pc=task.end_state_pc,
        )
    checked = 1  # the start pc
    mismatched = 0
    reason = SquashReason.NONE
    detail = ""
    if task.start_pc != arch.pc:
        mismatched += 1
        reason = SquashReason.WRONG_START_PC
        detail = f"task starts at {task.start_pc}, machine at {arch.pc}"
    for index, value in task.live_in_regs.items():
        checked += 1
        if arch.regs[index] != value:
            mismatched += 1
            if reason is SquashReason.NONE:
                reason = SquashReason.REGISTER_LIVE_IN
                detail = (
                    f"r{index}: predicted {value}, "
                    f"architected {arch.regs[index]}"
                )
    for address, value in task.live_in_mem.items():
        checked += 1
        if arch.load(address) != value:
            mismatched += 1
            if reason is SquashReason.NONE:
                reason = SquashReason.MEMORY_LIVE_IN
                detail = (
                    f"mem[{address}]: predicted {value}, "
                    f"architected {arch.load(address)}"
                )
    return VerifyOutcome(
        ok=mismatched == 0, reason=reason, checked=checked,
        mismatched=mismatched, detail=detail,
        origin_pc=None if mismatched == 0 else task.start_pc,
    )


def commit_task(task: Task, arch: ArchState) -> None:
    """Superimpose ``task``'s live-outs onto ``arch`` (must be verified)."""
    arch.apply_delta(
        task.live_out_regs, task.live_out_mem, pc=task.end_state_pc
    )
    task.status = TaskStatus.COMMITTED


def squash_task(task: Task, reason: SquashReason) -> None:
    """Mark ``task`` squashed; architected state is untouched by design."""
    task.status = TaskStatus.SQUASHED
    task.squash_reason = reason
