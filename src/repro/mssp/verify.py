"""The verify/commit unit.

This is the *only* component allowed to write architected state, and the
component on which all of MSSP's correctness rests (the companion formal
paper's "task safety": a task may commit iff its recorded live-ins are
consistent with architected state).  The checks, in order:

1. execution integrity — the slave neither overran its budget nor faulted;
2. control consistency — the task starts exactly where the machine is;
3. data consistency — every recorded live-in value (registers and memory)
   equals the corresponding architected cell right now.

On success the task's live-outs are superimposed onto architected state
and the pc jumps to the task's end: the machine "jumps" ``n_instrs``
sequential steps at once.  On failure nothing is written.

The full live-in set is always scanned (no early exit) so the engine can
report live-in prediction *accuracy*, not just a pass/fail bit.

The verify fast path
--------------------

Comparing every memory live-in against architected state is the
dominant verify-stage cost for workloads with large read sets (the
measured cause of hashlookup's parallel-runtime slowdown in E14).
:class:`CellVersions` removes it: the engine stamps every architected
memory cell it writes (task commits) with a monotonically increasing
sequence number, and recovery — which writes cells without itemizing
them — bumps a floor that invalidates everything at once.  A task
carrying ``base_version`` (the sequence number at which its view of
architected memory was known current) can then *skip the value compare*
for any live-in cell that (a) was read through to architected state
(i.e. is not covered by the checkpoint overlay) and (b) has not been
stamped since ``base_version``: the unchanged cell still holds exactly
the value the slave read, so the compare is a proof, not a check.
Skipped cells still count in ``VerifyOutcome.checked`` — the outcome
(and therefore every record and counter) is bit-identical with and
without the fast path, which the differential suites assert.

Batched verify (flat memory backend)
------------------------------------

When architected memory is the flat paged backend
(:class:`~repro.machine.flatmem.PagedMemory`), the per-cell compare loop
is replaced by a *batched* pass: memory live-ins are grouped into
contiguous address runs and each run is compared with one
``memoryview`` slice equality per overlapped page (a C memcmp via
:meth:`~repro.machine.flatmem.PagedMemory.equal_run`) instead of one
Python dict probe per cell.  :class:`CellVersions` additionally keeps
*page-level* stamps (address ``>> PAGE_BITS``) next to the exact
per-address ones: a whole page provably untouched since the task's
``base_version`` lets the batched pass skip entire run segments without
any per-address stamp lookups.  Page stamps are strictly conservative —
they can only *miss* a skip the per-address stamp would allow, never
claim one it would not — and the batched pass decides only the
*all-match* case: on the first non-matching run it abandons batching
and re-runs the exact legacy per-cell loop, so mismatch counts,
first-mismatch attribution, and every outcome field stay bit-identical
with the dict backend.  (Only ``CellVersions.skipped`` — explicitly a
diagnostic, not a counter — may differ between backends.)
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.machine.flatmem import PAGE_BITS, PAGE_MASK, PAGE_SIZE, PagedMemory
from repro.machine.state import ArchState
from repro.mssp.task import SquashReason, Task, TaskStatus


class CellVersions:
    """Monotonic write-version stamps over architected memory cells.

    ``seq`` advances on every architected write event; per-address
    stamps record the last event that wrote each cell.  ``floor``
    handles bulk invalidation (recovery writes cells without itemizing
    them): every address is implicitly stamped at least ``floor``.
    ``skipped`` counts fast-path hits for diagnostics only — it is
    deliberately *not* an :class:`~repro.mssp.trace.MsspCounters` field,
    because eager and parallel runs skip different numbers of cells and
    the counters must stay bit-identical across runtimes.
    """

    __slots__ = ("seq", "floor", "_stamps", "_page_stamps", "skipped")

    def __init__(self) -> None:
        self.seq = 0
        self.floor = 0
        self._stamps: Dict[int, int] = {}
        #: page index (address >> PAGE_BITS) -> last write event touching
        #: the page.  A coarse upper bound over ``_stamps`` that lets the
        #: batched verify pass prove whole run segments unchanged with
        #: one lookup.
        self._page_stamps: Dict[int, int] = {}
        self.skipped = 0

    def stamp_commit(self, addresses: Iterable[int]) -> None:
        """Record one commit event writing ``addresses``."""
        self.seq += 1
        seq = self.seq
        stamps = self._stamps
        pages = self._page_stamps
        for address in addresses:
            stamps[address] = seq
            pages[address >> PAGE_BITS] = seq

    def invalidate_all(self) -> None:
        """Record a write event of unknown extent (recovery)."""
        self.seq += 1
        self.floor = self.seq
        self._stamps.clear()
        self._page_stamps.clear()

    def changed_since(self, address: int, base: int) -> bool:
        """Might ``address`` have been written after event ``base``?"""
        stamp = self._stamps.get(address, 0)
        if stamp < self.floor:
            stamp = self.floor
        return stamp > base

    def page_changed_since(self, page: int, base: int) -> bool:
        """Might *any* cell of ``page`` have been written after ``base``?

        Conservative page-granular companion to :meth:`changed_since`:
        ``False`` proves every address in the page unchanged; ``True``
        says nothing (some other cell in the page may have been the one
        written).
        """
        stamp = self._page_stamps.get(page, 0)
        if stamp < self.floor:
            stamp = self.floor
        return stamp > base


@dataclass(frozen=True)
class VerifyOutcome:
    """Result of checking one task against architected state."""

    ok: bool
    reason: SquashReason
    checked: int
    mismatched: int
    detail: str = ""
    #: Original-program pc the failure is attributed to: the task's
    #: anchor for live-in/control mismatches (the distiller's prediction
    #: for that anchor was wrong), or the pc the slave stopped at for
    #: faults/overruns/protected accesses.  ``None`` on success.
    origin_pc: Optional[int] = None
    #: Register live-in compares covered by the static safety prover
    #: (:mod:`repro.analysis.specsafe`).  Counted identically in ``skip``
    #: and ``check`` modes, so counters match between them when the
    #: analysis is sound.
    static_skips: int = 0
    #: ``check`` mode only: a statically PROVEN register mismatched —
    #: an analysis soundness bug the engine escalates to a hard
    #: :class:`~repro.errors.CheckFailure`.
    proven_mismatch: bool = False


def _batched_mem_live_ins_match(
    live_mem: Dict[int, int],
    mem: PagedMemory,
    versions: Optional[CellVersions],
    base: Optional[int],
    ckpt_mem: Dict[int, int],
) -> bool:
    """Do *all* memory live-ins match flat architected memory?

    Groups the live-in addresses into maximal contiguous runs and
    compares each run with one ``memoryview`` slice equality per
    overlapped page.  Run segments whose whole page is provably
    unchanged since ``base`` (and that the checkpoint overlay does not
    cover) skip even that.  Decides only the all-match case: returns
    ``False`` on the first non-matching run *without* touching
    ``versions.skipped``, leaving exact mismatch accounting to the
    legacy per-cell loop.
    """
    addresses = sorted(live_mem)
    n = len(addresses)
    skipped = 0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and addresses[j + 1] == addresses[j] + 1:
            j += 1
        position, stop = addresses[i], addresses[j] + 1
        while position < stop:
            take = min(PAGE_SIZE - (position & PAGE_MASK), stop - position)
            proven = (
                base is not None
                and not versions.page_changed_since(position >> PAGE_BITS, base)
            )
            if proven and ckpt_mem:
                proven = all(
                    address not in ckpt_mem
                    for address in range(position, position + take)
                )
            if proven:
                skipped += take
            else:
                run = array(
                    "q",
                    (live_mem[a] for a in range(position, position + take)),
                )
                if not mem.equal_run(position, run):
                    return False
            position += take
        i = j + 1
    if versions is not None and skipped:
        versions.skipped += skipped
    return True


def verify_task(
    task: Task,
    arch: ArchState,
    versions: Optional[CellVersions] = None,
    safety_mode: str = "off",
) -> VerifyOutcome:
    """Check ``task``'s live-ins against ``arch`` without modifying either.

    With ``versions`` (and a task carrying ``base_version``), memory
    live-ins provably unchanged since the task's view of architected
    state skip the value compare — see the module docstring.  The
    returned outcome is identical either way.

    ``safety_mode`` activates the *static* register fast path over
    ``task.proven_regs`` (registers the speculation-safety prover
    guarantees for this anchor): ``"skip"`` skips their value compare,
    ``"check"`` still compares and flags any mismatch as an analysis
    soundness failure (``proven_mismatch``), ``"off"`` ignores the set.
    Skips apply only when the task starts exactly where the machine is —
    the proof is relative to the anchor's architected state.  Skipped
    cells still count in ``checked`` so records and counters stay
    bit-identical across all three modes when the analysis is sound.
    """
    if task.faulted:
        return VerifyOutcome(
            False, SquashReason.FAULT, task.live_in_count, 0,
            detail=f"speculative execution faulted at pc {task.end_state_pc}",
            origin_pc=task.end_state_pc,
        )
    if task.protected_access:
        return VerifyOutcome(
            False, SquashReason.PROTECTED, task.live_in_count, 0,
            detail=(
                f"pc {task.end_state_pc} would access a protected region; "
                "deferring to non-speculative execution"
            ),
            origin_pc=task.end_state_pc,
        )
    if task.overrun:
        return VerifyOutcome(
            False, SquashReason.OVERRUN, task.live_in_count, 0,
            detail=f"no arrival at end pc within {task.n_instrs} instructions",
            origin_pc=task.end_state_pc,
        )
    checked = 1  # the start pc
    mismatched = 0
    reason = SquashReason.NONE
    detail = ""
    if task.start_pc != arch.pc:
        mismatched += 1
        reason = SquashReason.WRONG_START_PC
        detail = f"task starts at {task.start_pc}, machine at {arch.pc}"
    static_skips = 0
    proven_mismatch = False
    proven = (
        task.proven_regs
        if safety_mode in ("skip", "check") and task.start_pc == arch.pc
        else frozenset()
    )
    for index, value in task.live_in_regs.items():
        checked += 1
        if index in proven:
            static_skips += 1
            if safety_mode == "skip":
                continue
        if arch.regs[index] != value:
            if index in proven:
                proven_mismatch = True
            mismatched += 1
            if reason is SquashReason.NONE:
                reason = SquashReason.REGISTER_LIVE_IN
                detail = (
                    f"r{index}: predicted {value}, "
                    f"architected {arch.regs[index]}"
                )
    base = task.base_version if versions is not None else None
    ckpt_mem = task.checkpoint.mem
    live_mem = task.live_in_mem
    mem = getattr(arch, "mem", None)
    if (
        live_mem
        and isinstance(mem, PagedMemory)
        and _batched_mem_live_ins_match(
            live_mem, mem, versions, base, ckpt_mem
        )
    ):
        # Batched fast path (flat backend): every memory live-in proved
        # equal by run/page compares — identical outcome to the loop
        # below, which handles the remaining cases (dict backend, or a
        # mismatch demanding exact first-failure attribution).
        checked += len(live_mem)
    else:
        for address, value in live_mem.items():
            checked += 1
            if (
                base is not None
                and address not in ckpt_mem
                and not versions.changed_since(address, base)
            ):
                # The cell was read through to architected state and has
                # not been written since the task's view was current: it
                # still holds ``value``, so the compare cannot fail.
                versions.skipped += 1
                continue
            if arch.load(address) != value:
                mismatched += 1
                if reason is SquashReason.NONE:
                    reason = SquashReason.MEMORY_LIVE_IN
                    detail = (
                        f"mem[{address}]: predicted {value}, "
                        f"architected {arch.load(address)}"
                    )
    return VerifyOutcome(
        ok=mismatched == 0, reason=reason, checked=checked,
        mismatched=mismatched, detail=detail,
        origin_pc=None if mismatched == 0 else task.start_pc,
        static_skips=static_skips, proven_mismatch=proven_mismatch,
    )


def commit_task(task: Task, arch: ArchState) -> None:
    """Superimpose ``task``'s live-outs onto ``arch`` (must be verified)."""
    arch.apply_delta(
        task.live_out_regs, task.live_out_mem, pc=task.end_state_pc
    )
    task.status = TaskStatus.COMMITTED


def squash_task(task: Task, reason: SquashReason) -> None:
    """Mark ``task`` squashed; architected state is untouched by design."""
    task.status = TaskStatus.SQUASHED
    task.squash_reason = reason
