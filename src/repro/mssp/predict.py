"""Per-cell live-in value predictors trained online from judged tasks.

The distilled master *is* MSSP's live-in predictor; this module adds a
second-level corrector for exactly the cells the master keeps getting
wrong.  A :class:`ValuePredictorBank` tracks one :class:`CellPredictor`
per ``(anchor, register)`` live-in cell the speculation-safety prover
left UNPROVEN, training it at judge time from architected truth (the
in-order judge is the one point every executor backend passes through in
the same order, which keeps training — and therefore behaviour —
bit-identical across eager/thread/process runtimes).

Three classic predictors run in every cell (training all three costs a
few integer compares): last-value, stride, and a finite-context (order-2
value history) table.  ``kind`` selects which one may override; ``auto``
runs a per-cell tournament and overrides with whichever has trained
best; ``observe`` trains and reports statistics but never overrides.

Overriding is doubly gated so that prediction can only ever *correct* a
persistently wrong master, never perturb a correct one:

* the predictor must have ``confidence`` consecutive correct training
  predictions for the cell, and
* the *master* must have been wrong about the cell on ``miss_gate``
  consecutive judged tasks (the bit-identity gate: on workloads the
  master predicts, the gate never opens and results are bit-identical
  to ``predictors="off"``).

Predictions are frozen into a per-episode snapshot
(:meth:`ValuePredictorBank.begin_episode`) before the pipeline starts
producing tasks, so mid-episode training cannot change what concurrent
backends observe.  Verify/squash is unchanged as the correctness
backstop: an overridden register is still recorded as a live-in by the
slave and still compared against architected truth at judge time.

The bank is picklable (plain dicts and ints, no closures) so engines
embedding one survive the process executor's worker round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["CellPredictor", "CellStats", "ValuePredictorBank"]

#: Order of the finite-context predictor's value history.
CONTEXT_ORDER = 2
#: Cap on distinct contexts tracked per cell (new contexts beyond the
#: cap are ignored — deterministic, no eviction).
CONTEXT_TABLE_CAP = 64

#: Tournament tie-break order (first wins on equal training hits).
_KINDS = ("context", "stride", "last")


@dataclass(frozen=True)
class CellStats:
    """Observed statistics for one predicted cell (``repro analyze``)."""

    anchor: int
    reg: int
    kind: str            # best-trained predictor kind for the cell
    train_hits: int      # would-have-predicted correctly, best kind
    train_misses: int    # would-have-predicted wrongly, best kind
    observations: int    # judged tasks that trained this cell
    master_misses: int   # judged tasks where the master was wrong
    overrides: int       # checkpoints this cell actually patched

    @property
    def hit_rate(self) -> float:
        total = self.train_hits + self.train_misses
        return self.train_hits / total if total else 0.0


class CellPredictor:
    """All three predictors for one ``(anchor, register)`` cell."""

    __slots__ = (
        "last_value", "last_streak",
        "stride", "stride_streak",
        "context", "context_table",
        "hits", "misses",
        "observations", "master_streak", "master_misses", "overrides",
    )

    def __init__(self) -> None:
        # last-value state
        self.last_value: Optional[int] = None
        self.last_streak = 0
        # stride state (prediction is last_value + stride)
        self.stride: Optional[int] = None
        self.stride_streak = 0
        # finite-context state: value-history tuple -> {next value: count}
        self.context: Tuple[int, ...] = ()
        self.context_table: Dict[Tuple[int, ...], Dict[int, int]] = {}
        # per-kind training accuracy (would-have-predicted scoring)
        self.hits = {kind: 0 for kind in _KINDS}
        self.misses = {kind: 0 for kind in _KINDS}
        # master behaviour
        self.observations = 0
        self.master_streak = 0
        self.master_misses = 0
        self.overrides = 0

    # -- prediction --------------------------------------------------------

    def _predict_kind(self, kind: str, confidence: int) -> Optional[int]:
        """The cell's prediction under one kind, or None if unconfident."""
        if kind == "last":
            if self.last_value is not None and self.last_streak >= confidence:
                return self.last_value
            return None
        if kind == "stride":
            if (
                self.last_value is not None
                and self.stride is not None
                and self.stride_streak >= confidence
            ):
                return self.last_value + self.stride
            return None
        if kind == "context":
            counts = self.context_table.get(self.context)
            if not counts:
                return None
            # deterministic argmax: highest count, lowest value breaks ties
            value, count = min(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            if count >= confidence and count * 2 > sum(counts.values()):
                return value
            return None
        raise ValueError(f"unknown predictor kind {kind!r}")

    def best_kind(self) -> str:
        """Tournament winner: the kind with the most training hits."""
        return max(_KINDS, key=lambda k: (self.hits[k], -_KINDS.index(k)))

    def predict(self, kind: str, confidence: int) -> Optional[int]:
        if kind == "auto":
            kind = self.best_kind()
        return self._predict_kind(kind, confidence)

    # -- training ----------------------------------------------------------

    def train(self, truth: int, master_wrong: bool) -> None:
        """Score each kind's standing prediction against ``truth``, then
        advance all predictor states.  ``confidence=1`` scoring means a
        kind is credited whenever it had *any* prediction."""
        for kind in _KINDS:
            predicted = self._predict_kind(kind, confidence=1)
            if predicted is None:
                continue
            if predicted == truth:
                self.hits[kind] += 1
            else:
                self.misses[kind] += 1
        # last-value
        if self.last_value == truth:
            self.last_streak += 1
        else:
            self.last_streak = 0
        # stride
        if self.last_value is not None:
            stride = truth - self.last_value
            if stride == self.stride:
                self.stride_streak += 1
            else:
                self.stride_streak = 0
            self.stride = stride
        # finite-context
        counts = self.context_table.get(self.context)
        if counts is None and len(self.context_table) < CONTEXT_TABLE_CAP:
            counts = self.context_table[self.context] = {}
        if counts is not None:
            counts[truth] = counts.get(truth, 0) + 1
        self.context = (self.context + (truth,))[-CONTEXT_ORDER:]
        self.last_value = truth
        # master streak
        self.observations += 1
        if master_wrong:
            self.master_streak += 1
            self.master_misses += 1
        else:
            self.master_streak = 0


class ValuePredictorBank:
    """The engine-side collection of cell predictors.

    One bank lives per engine run; the engine trains it from
    ``_judge_task`` and the pipeline consults the episode snapshot when
    opening fork tasks.  ``classify`` restricts prediction to UNPROVEN
    cells and is refreshed (:meth:`retarget`) whenever the safety report
    changes — e.g. after a re-distillation hot swap, which also resets
    every master-miss streak, because the old master's miss history says
    nothing about the new master.
    """

    def __init__(self, kind: str, confidence: int, miss_gate: int) -> None:
        if kind not in ("last", "stride", "context", "auto", "observe"):
            raise ValueError(f"unknown predictor bank kind {kind!r}")
        self.kind = kind
        self.confidence = confidence
        self.miss_gate = miss_gate
        self.cells: Dict[Tuple[int, int], CellPredictor] = {}
        #: Episode-frozen predictions: anchor -> {reg: value}.
        self._snapshot: Dict[int, Dict[int, int]] = {}
        #: Anchors (original pcs) prediction may target; None = all.
        self._anchors: Optional[frozenset] = None
        #: (anchor, reg) cells the prover could NOT prove; None = all
        #: cells predictable (no report available).
        self._unproven: Optional[frozenset] = None
        #: Anchors the safety report actually classified.
        self._classified: frozenset = frozenset()

    # -- targeting ---------------------------------------------------------

    def retarget(self, anchors, safety_report) -> None:
        """Restrict prediction to ``anchors`` and, per anchor, to the
        live-in register cells ``safety_report`` classifies UNPROVEN.
        Cells whose anchor disappeared are dropped; all master-miss
        streaks reset (the master just changed)."""
        self._anchors = frozenset(anchors) if anchors is not None else None
        self._unproven = None
        self._classified = frozenset()
        if safety_report is not None:
            unproven = set()
            classified = set()
            try:
                from repro.analysis.specsafe import CellClass

                for anchor, region in safety_report.regions.items():
                    classified.add(anchor)
                    for reg, cls in region.cells.items():
                        if cls is CellClass.UNPROVEN:
                            unproven.add((anchor, reg))
                self._unproven = frozenset(unproven)
                self._classified = frozenset(classified)
            except Exception:
                self._unproven = None
                self._classified = frozenset()
        if self._anchors is not None:
            self.cells = {
                key: cell
                for key, cell in self.cells.items()
                if key[0] in self._anchors
            }
        for cell in self.cells.values():
            cell.master_streak = 0
        self._snapshot = {}

    def _predictable(self, anchor: int, reg: int) -> bool:
        if reg == 0:
            return False
        if self._anchors is not None and anchor not in self._anchors:
            return False
        if self._unproven is not None:
            # The prover classified this region: only UNPROVEN cells are
            # fair game.  Cells the report never mentions (never observed
            # as live-in during analysis) are treated as unproven.
            if anchor in self._classified and (anchor, reg) not in self._unproven:
                return False
        return True

    # -- training (judge time) ---------------------------------------------

    def observe_task(self, task, arch) -> Tuple[int, int]:
        """Train from one judged task; returns ``(hits, misses)`` scored
        over the cells this task's checkpoint actually overrode.

        Called for every judged non-exact task whose start pc matches the
        architected pc (so ``arch.regs`` *is* the truth at the anchor) —
        committed and squashed alike, before live-outs are applied.
        """
        hits = misses = 0
        anchor = task.start_pc
        regs = arch.regs
        for reg in sorted(task.live_in_regs):
            if not self._predictable(anchor, reg):
                continue
            truth = regs[reg]
            shipped = task.checkpoint.regs[reg]
            if reg in task.predicted_cells:
                master_value = task.predicted_cells[reg]
                if shipped == truth:
                    hits += 1
                else:
                    misses += 1
            else:
                master_value = shipped
            cell = self.cells.get((anchor, reg))
            if cell is None:
                cell = self.cells[(anchor, reg)] = CellPredictor()
            if reg in task.predicted_cells:
                cell.overrides += 1
            cell.train(truth, master_wrong=master_value != truth)
        return hits, misses

    # -- consultation (fork time) -------------------------------------------

    def begin_episode(self) -> None:
        """Freeze the episode snapshot of gate-open, confident cells."""
        snapshot: Dict[int, Dict[int, int]] = {}
        if self.kind == "observe":
            self._snapshot = snapshot
            return
        for (anchor, reg), cell in self.cells.items():
            if cell.master_streak < self.miss_gate:
                continue
            value = cell.predict(self.kind, self.confidence)
            if value is None:
                continue
            snapshot.setdefault(anchor, {})[reg] = value
        self._snapshot = snapshot

    def predictions_for(self, anchor: int) -> Optional[Dict[int, int]]:
        """The episode-frozen overrides for one fork anchor (or None)."""
        return self._snapshot.get(anchor)

    # -- reporting ----------------------------------------------------------

    def cell_stats(self) -> List[CellStats]:
        """Per-cell observed statistics, sorted by (anchor, reg)."""
        out = []
        for (anchor, reg), cell in sorted(self.cells.items()):
            kind = self.kind if self.kind in _KINDS else cell.best_kind()
            out.append(CellStats(
                anchor=anchor,
                reg=reg,
                kind=kind,
                train_hits=cell.hits[kind],
                train_misses=cell.misses[kind],
                observations=cell.observations,
                master_misses=cell.master_misses,
                overrides=cell.overrides,
            ))
        return out

    def stats_for(self, anchor: int) -> Dict[int, CellStats]:
        """``{reg: CellStats}`` for one anchor."""
        return {s.reg: s for s in self.cell_stats() if s.anchor == anchor}
