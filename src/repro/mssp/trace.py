"""Execution-trace records produced by the MSSP engine.

The functional engine decides *what happens* (which tasks commit, which
squash, how long each is); the timing model replays these records to
decide *how long it takes*.  In-order commit makes the functional outcome
timing-independent, which is what licenses this separation.

Records are not appended by the engine directly: the runtime core
announces every judgement/failure/recovery on its event bus
(:mod:`repro.mssp.runtime.events`), and :class:`TraceRecorder` — one
subscriber among possibly many — rebuilds the record stream from those
events.  Anything reconstructable from the event stream is therefore
reconstructable outside the engine too, which the event-seam tests pin
down byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass(frozen=True)
class TaskAttemptRecord:
    """One task attempt (committed or squashed)."""

    tid: int
    start_pc: int
    end_pc: Optional[int]
    #: Dynamic instructions the slave executed for this attempt.
    n_instrs: int
    #: Distilled instructions the master executed to delimit this task
    #: (between the fork opening it and the event closing it).
    master_instrs: int
    committed: bool
    #: Memory loads among ``n_instrs`` (slave side).
    n_loads: int = 0
    #: Memory loads among ``master_instrs`` (distilled side); value
    #: specialization exists to shrink this number.
    master_loads: int = 0
    squash_reason: str = "none"
    #: Original-program pc a squash is attributed to (the anchor for
    #: live-in/control mismatches, the slave's stopping pc for
    #: fault/overrun/protected); ``None`` for committed tasks.
    origin_pc: Optional[int] = None
    live_ins_checked: int = 0
    live_ins_mismatched: int = 0
    exact: bool = False
    final: bool = False
    #: The slave reached ``halt`` (the machine finishes at this task).
    halted: bool = False
    #: Words in the checkpoint shipped for this task (register file +
    #: master-dirty memory); drives the timing model's bandwidth cost.
    checkpoint_words: int = 0

    @property
    def outcome(self) -> str:
        return "committed" if self.committed else "squashed"


@dataclass(frozen=True)
class RecoveryRecord:
    """One non-speculative recovery episode (sequential re-execution)."""

    n_instrs: int
    halted: bool
    resumed_at: Optional[int]
    #: Memory loads among ``n_instrs``.
    n_loads: int = 0


@dataclass(frozen=True)
class MasterFailureRecord:
    """The master hit a trap/timeout instead of producing a fork."""

    kind: str
    master_instrs: int


TraceRecord = Union[TaskAttemptRecord, RecoveryRecord, MasterFailureRecord]


class TraceRecorder:
    """Event-bus subscriber that rebuilds the trace-record stream.

    Subscribed by the engine for the duration of a run; the ``records``
    list it accumulates *is* :attr:`MsspResult.records`.  Any other
    subscriber sees exactly the same events, so an independently
    subscribed recorder reconstructs the identical stream.
    """

    __slots__ = ("records",)

    #: Event kinds that carry a trace record, in the order the runtime
    #: emits them (judgement order, with recoveries interleaved).
    RECORD_KINDS = frozenset(
        ("task_committed", "task_squashed", "master_failure", "recovery")
    )

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(self, event) -> None:
        if event.kind in self.RECORD_KINDS:
            self.records.append(event.record)


@dataclass
class DispatchStats:
    """Plumbing statistics of one run's executor backend.

    Attached to :class:`MsspCounters` as ``dispatch`` but excluded from
    its equality: how tasks were *routed* (adopted from a worker, re-
    executed locally, discarded on squash) is backend-dependent by
    design, while everything the counters compare must stay bit-identical
    across backends.  An inline (eager) run leaves every field zero.
    """

    chunks: int = 0
    dispatched: int = 0
    #: Worker results adopted verbatim after the staleness check.
    adopted: int = 0
    #: Worker results discarded because an architected cell they read
    #: changed before their commit point (re-executed locally).
    stale: int = 0
    #: Tasks whose worker result never arrived (early chunk exit, broken
    #: pool, or never dispatched) — re-executed locally.
    missing: int = 0
    reexecuted: int = 0
    #: Produced-but-never-judged tasks thrown away when an episode ended
    #: early (the squash/cancel path).
    discarded: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "chunks": self.chunks,
            "dispatched": self.dispatched,
            "adopted": self.adopted,
            "stale": self.stale,
            "missing": self.missing,
            "reexecuted": self.reexecuted,
            "discarded": self.discarded,
        }


@dataclass
class MsspCounters:
    """Aggregate statistics of one MSSP run."""

    tasks_committed: int = 0
    tasks_squashed: int = 0
    exact_tasks: int = 0
    committed_instrs: int = 0
    squashed_instrs: int = 0
    recovery_instrs: int = 0
    recovery_episodes: int = 0
    master_instrs: int = 0
    master_failures: int = 0
    restarts: int = 0
    #: Non-speculative accesses performed in protected (I/O) regions.
    device_accesses: int = 0
    #: Dual-mode reversions to sequential execution (throttling).
    throttle_episodes: int = 0
    live_ins_checked: int = 0
    live_ins_mismatched: int = 0
    #: Register live-in compares covered by the static safety prover
    #: (:mod:`repro.analysis.specsafe`).  Unlike ``CellVersions.skipped``
    #: this *is* a compared field: the proven set is a pure function of
    #: the task's anchor, so every backend must report the same count.
    static_verify_skips: int = 0
    #: Predictor-overridden live-in cells that matched / missed
    #: architected truth at judge time (:mod:`repro.mssp.predict`).
    #: Compared fields: overrides are decided from an episode-frozen
    #: snapshot trained at the shared judge, so every backend overrides
    #: — and scores — identically.  Zero whenever the miss gate never
    #: opened (in particular, always zero with ``predictors="off"``).
    predictor_hits: int = 0
    predictor_misses: int = 0
    #: Mid-run master hot swaps by the adaptive re-distillation loop
    #: (:mod:`repro.mssp.redistill`); also a compared field.
    redistillations: int = 0
    squash_reasons: Dict[str, int] = field(default_factory=dict)
    #: How the run's tasks were routed through the executor backend.
    #: ``compare=False``: routing is backend-dependent by design, and
    #: counter equality is the cross-backend bit-identity oracle.
    dispatch: DispatchStats = field(
        default_factory=DispatchStats, compare=False, repr=False
    )

    def note_squash_reason(self, reason: str) -> None:
        self.squash_reasons[reason] = self.squash_reasons.get(reason, 0) + 1

    @property
    def total_instrs(self) -> int:
        """Instructions that advanced architected state."""
        return self.committed_instrs + self.recovery_instrs

    @property
    def task_attempts(self) -> int:
        return self.tasks_committed + self.tasks_squashed

    @property
    def squash_rate(self) -> float:
        """Fraction of task attempts that failed verification."""
        attempts = self.task_attempts
        return self.tasks_squashed / attempts if attempts else 0.0

    @property
    def live_in_accuracy(self) -> float:
        """Fraction of live-in values the master predicted correctly."""
        if not self.live_ins_checked:
            return 1.0
        return 1.0 - self.live_ins_mismatched / self.live_ins_checked

    @property
    def speculative_coverage(self) -> float:
        """Fraction of architected progress made by committed tasks."""
        total = self.total_instrs
        return self.committed_instrs / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """One flat dict: protocol statistics *and* dispatch routing.

        The dispatch keys (``chunks``/``dispatched``/``adopted``/
        ``stale``/``missing``/``reexecuted``/``discarded``) are present
        regardless of backend — all zero for an inline (eager) run.
        """
        out = {
            "tasks_committed": float(self.tasks_committed),
            "tasks_squashed": float(self.tasks_squashed),
            "squash_rate": self.squash_rate,
            "committed_instrs": float(self.committed_instrs),
            "recovery_instrs": float(self.recovery_instrs),
            "master_instrs": float(self.master_instrs),
            "live_in_accuracy": self.live_in_accuracy,
            "speculative_coverage": self.speculative_coverage,
            "restarts": float(self.restarts),
            "static_verify_skips": float(self.static_verify_skips),
            "predictor_hits": float(self.predictor_hits),
            "predictor_misses": float(self.predictor_misses),
            "redistillations": float(self.redistillations),
        }
        for key, value in self.dispatch.summary().items():
            out[key] = float(value)
        return out
