"""Tasks and checkpoints — the unit of speculation in MSSP.

A :class:`Checkpoint` is the master's live-in prediction for one task:
its full (speculative) register file plus the memory values it has
written since its last restart.  Slaves fall through to architected state
for memory the master did not touch, exactly as in the paper (the master
only ships what it modified).

A :class:`Task` is the paper's 4-tuple ⟨S_in, n, S_out, k⟩ in concrete
form: the live-in prediction (checkpoint + start pc), the region bounds
(``start_pc`` .. ``end_pc``; ``end_pc`` is fixed only when the *next*
fork arrives), and — after slave execution — the recorded live-in and
live-out sets plus the dynamic instruction count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.machine.state import ArchState


@dataclass(frozen=True)
class Checkpoint:
    """Live-in prediction shipped from the master to a slave."""

    regs: Tuple[int, ...]
    mem: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def exact(cls, state: ArchState) -> "Checkpoint":
        """A perfect checkpoint taken directly from architected state.

        Used for the task opened at a master (re)start: the paper's
        processors are "seeded with the correct values currently held in
        architected state" after a squash.  An exact checkpoint with an
        empty memory overlay can never cause a live-in mismatch.
        """
        return cls(regs=tuple(state.regs), mem={})

    def __len__(self) -> int:
        return len(self.regs) + len(self.mem)

    def patched(
        self, overrides: Dict[int, int]
    ) -> Tuple["Checkpoint", Dict[int, int]]:
        """Start-image patching: a copy with predicted register values
        written over the master's, plus ``{reg: master's value}`` for the
        cells actually changed.

        Only registers are ever patched — register images ship verbatim
        per task on every executor wire, whereas checkpoint *memory* is
        delta-chained by the process executor (``mem_k == mem_{k-1} |
        delta_k``), so patching it would corrupt the chain.  Returns
        ``(self, {})`` when no override changes anything, so unpatched
        checkpoints are never copied.
        """
        replaced: Dict[int, int] = {}
        regs = list(self.regs)
        for reg, value in overrides.items():
            if 0 < reg < len(regs) and regs[reg] != value:
                replaced[reg] = regs[reg]
                regs[reg] = value
        if not replaced:
            return self, {}
        return Checkpoint(regs=tuple(regs), mem=self.mem), replaced


class TaskStatus(enum.Enum):
    """Lifecycle of a task."""

    OPEN = "open"            # end pc not yet known (master still predicting)
    READY = "ready"          # fully defined, awaiting slave execution
    COMPLETED = "completed"  # slave finished; awaiting verification
    COMMITTED = "committed"  # live-ins verified, live-outs applied
    SQUASHED = "squashed"    # verification failed (or execution faulted)


class SquashReason(enum.Enum):
    """Why a task failed verification."""

    NONE = "none"
    WRONG_START_PC = "wrong-start-pc"
    REGISTER_LIVE_IN = "register-live-in"
    MEMORY_LIVE_IN = "memory-live-in"
    OVERRUN = "overrun"          # never reached its end pc within budget
    FAULT = "fault"              # invalid pc during speculative execution
    MASTER_TIMEOUT = "master-timeout"  # master never produced the next fork
    PROTECTED = "protected-access"     # would touch a non-idempotent region


@dataclass
class Task:
    """One unit of speculative work."""

    tid: int
    start_pc: int
    checkpoint: Checkpoint
    #: True when the checkpoint was taken from architected state itself
    #: (restart tasks); such tasks can only fail by overrun/fault.
    exact: bool = False
    #: Original-program pc at which the task ends (the next task's start);
    #: None means "run to halt" (the task after the master's last fork).
    end_pc: Optional[int] = None
    #: The task ends at this-many-th arrival at ``end_pc`` (strided forks
    #: pass their anchor several times before firing, so a task may loop
    #: through its end pc before stopping there).
    end_arrivals: int = 1
    final: bool = False
    status: TaskStatus = TaskStatus.OPEN

    # Filled by slave execution -------------------------------------------------
    live_in_regs: Dict[int, int] = field(default_factory=dict)
    live_in_mem: Dict[int, int] = field(default_factory=dict)
    live_out_regs: Dict[int, int] = field(default_factory=dict)
    live_out_mem: Dict[int, int] = field(default_factory=dict)
    n_instrs: int = 0
    n_loads: int = 0
    end_state_pc: int = -1
    halted: bool = False
    overrun: bool = False
    faulted: bool = False
    #: The task stopped before touching a protected (I/O) address.
    protected_access: bool = False
    #: Measured wall-seconds the executing substrate spent running this
    #: task (thread/process worker or local fallback).  Crosses the
    #: executor wire so the :class:`~repro.timing.clock.CostModel` can be
    #: calibrated from real runs; never judged, so it cannot perturb
    #: bit-identity.
    exec_seconds: float = 0.0
    #: :class:`~repro.mssp.verify.CellVersions` sequence number at which
    #: this task's view of architected memory is known to have been
    #: current (eager: execution time; parallel adopted results: episode
    #: start).  ``None`` disables the verify fast path for this task —
    #: every memory live-in is compared the slow way.
    base_version: Optional[int] = None
    #: Registers the speculation-safety prover marked PROVEN for this
    #: task's anchor (:mod:`repro.analysis.specsafe`).  Set at task
    #: creation from the engine's :class:`SafetyReport`; verify may skip
    #: (or soundness-check) these register compares.  A purely static
    #: attribute — never crosses the executor wire.
    proven_regs: frozenset = frozenset()
    #: Live-in cells the predictor bank overrode in this task's
    #: checkpoint, mapping register → the master's *original* (pre-patch)
    #: value; the predicted value is ``checkpoint.regs[reg]``.  Like
    #: ``proven_regs``, a creation-time attribute that never crosses the
    #: executor wire — the judge uses it to score predictor hits/misses
    #: and to recover the master's own guess for training.
    predicted_cells: Dict[int, int] = field(default_factory=dict)

    # Filled by verification -----------------------------------------------------
    squash_reason: SquashReason = SquashReason.NONE

    @property
    def live_in_count(self) -> int:
        """Number of live-in values the verify unit must check."""
        return len(self.live_in_regs) + len(self.live_in_mem) + 1  # +1: pc

    def describe(self) -> str:
        end = "halt" if self.end_pc is None else str(self.end_pc)
        return (
            f"task {self.tid}: [{self.start_pc} -> {end}] "
            f"{self.status.value} n={self.n_instrs} "
            f"live-ins={self.live_in_count}"
        )


def wire_result(task: Task) -> Tuple:
    """An executed task's observable outcome as a flat 13-tuple.

    This is the slave→verify wire format every executor backend speaks:
    whichever substrate ran the task (inline, thread pool, worker
    process), the pipeline adopts exactly these fields — so a backend
    can only influence the run through them, which is what makes the
    staleness check in
    :meth:`~repro.mssp.runtime.pipeline.TaskPipeline` sufficient for
    bit-identical adoption.  The trailing ``exec_seconds`` is
    measurement metadata for cost-model calibration; the verify unit
    never reads it.
    """
    return (
        task.tid, task.live_in_regs, task.live_in_mem, task.live_out_regs,
        task.live_out_mem, task.n_instrs, task.n_loads, task.end_state_pc,
        task.halted, task.faulted, task.overrun, task.protected_access,
        task.exec_seconds,
    )


def adopt_wire_result(task: Task, result: Tuple) -> None:
    """Install a :func:`wire_result` tuple onto the authoritative task."""
    (_, task.live_in_regs, task.live_in_mem, task.live_out_regs,
     task.live_out_mem, task.n_instrs, task.n_loads, task.end_state_pc,
     task.halted, task.faulted, task.overrun,
     task.protected_access, task.exec_seconds) = result
    task.status = TaskStatus.COMPLETED
