"""Protected (non-idempotent) memory regions.

The companion formal paper's closing section identifies machine state
"such as memory-mapped I/O addresses, where we cannot rely on accesses
being idempotent": speculation must be precluded there, with the machine
proceeding non-speculatively as per SEQ.  This module implements that
extension:

* a :class:`ProtectedRegions` set answers membership queries;
* slave views consult it *before* performing any memory access and abort
  the task when it would touch a protected cell (so speculative
  execution never produces a device-visible effect);
* the engine's non-speculative recovery path performs the access exactly
  once, in program order, and logs it to the run's **device trace** —
  which tests compare against the sequential model's device trace for
  sequence equality (the strongest form of the exactly-once guarantee).

The master needs no special handling: it reads protected addresses from
its private restart snapshot and writes only its private dirty map, so
it can neither observe nor cause device effects (its stale predictions
simply squash, which is the normal recovery path anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import MsspError


@dataclass(frozen=True)
class DeviceAccess:
    """One non-speculative access to a protected cell (device event)."""

    pc: int
    address: int
    value: int
    is_store: bool


class ProtectedRegions:
    """An immutable set of half-open address ranges ``[start, end)``."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()):
        normalized: List[Tuple[int, int]] = []
        for start, end in ranges:
            if end <= start:
                raise MsspError(
                    f"protected region [{start}, {end}) is empty or inverted"
                )
            normalized.append((start, end))
        normalized.sort()
        for (_, prev_end), (next_start, _) in zip(normalized, normalized[1:]):
            if next_start < prev_end:
                raise MsspError("protected regions overlap")
        self._ranges = tuple(normalized)

    @classmethod
    def from_config(
        cls, ranges: Optional[Iterable[Tuple[int, int]]]
    ) -> Optional["ProtectedRegions"]:
        """None (the fast no-check path) when no ranges are configured."""
        ranges = tuple(ranges or ())
        return cls(ranges) if ranges else None

    def __contains__(self, address: int) -> bool:
        for start, end in self._ranges:
            if start <= address < end:
                return True
            if address < start:
                return False
        return False

    def __len__(self) -> int:
        return len(self._ranges)

    @property
    def ranges(self) -> Tuple[Tuple[int, int], ...]:
        return self._ranges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{s}, {e})" for s, e in self._ranges)
        return f"ProtectedRegions({spans})"


def sequential_device_trace(
    program, regions: ProtectedRegions, max_steps: int = 50_000_000
) -> List[DeviceAccess]:
    """The SEQ model's I/O sequence: every in-region access, in order.

    This is the reference against which an MSSP run's ``device_trace``
    is compared: MSSP must produce the *identical* sequence — same
    accesses, same values, same order, no duplicates — for its protected
    regions to behave like real memory-mapped devices.
    """
    from repro.machine.interpreter import run

    trace: List[DeviceAccess] = []

    def observer(pc, instr, effect, state):
        del instr, state
        if effect.mem_addr is not None and effect.mem_addr in regions:
            trace.append(
                DeviceAccess(
                    pc=pc, address=effect.mem_addr,
                    value=effect.mem_value, is_store=effect.is_store,
                )
            )

    run(program, observer=observer, max_steps=max_steps)
    return trace
