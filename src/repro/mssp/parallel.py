"""Truly parallel MSSP runtime: pipelined master + process-pool slaves.

:class:`ParallelMsspEngine` is a drop-in replacement for
:class:`~repro.mssp.engine.MsspEngine` that actually overlaps slave
execution, the way the paper's CMP does, instead of replaying
concurrency in the timing model only.  Per episode:

* the **master** (main process) runs ahead, closing tasks into a
  bounded in-flight window;
* closed tasks are batched into **chunks** and dispatched to a
  ``ProcessPoolExecutor`` of ``MsspConfig.num_slaves`` workers, which
  execute them speculatively through the fast pre-decoded path;
* a **verify/commit** stage (main process) consumes completions
  strictly in commit order through the same
  :meth:`~repro.mssp.engine.MsspEngine._judge_task` the eager engine
  uses; the first squash ends the episode and all in-flight successors
  are cancelled/discarded, exactly as the eager engine discards them by
  never creating them.

Why the results are bit-identical
---------------------------------

Slave execution is a deterministic function of (program, checkpoint,
memory cells actually read from architected state).  Checkpoints and the
program are shipped verbatim, so the only way a worker's execution can
differ from the eager engine's is by reading a **stale** architected
memory cell — one whose value changed between dispatch and this task's
commit point.  Every such read is visible in the task's recorded
``live_in_mem``: by the slave view's lookup order, an address absent
from the checkpoint overlay was read from (the worker's image of)
architected state.  At verify time the engine re-checks exactly those
cells against the *true* architected state; if they all match, the
worker's execution is step-for-step what eager execution would have
produced (induction over the deterministic step function), and the task
is adopted.  If any differs, the worker result is discarded and the task
is **re-executed locally** against true architected state — the eager
path itself — so the judged task is identical either way.

Within a chunk, workers chain tasks **optimistically**: each task's
live-outs are applied to a chunk-local memory overlay before the next
task runs, mirroring the in-order commits the eager engine would have
performed by then.  If the optimism was wrong, either the successors are
never consumed (a squash ends the episode) or the staleness check
catches them.  Across chunks no live-outs are available (predecessor
chunks are still in flight), so cross-chunk reads of slave-written cells
miss and fall back to local re-execution.  Master-written cells are
unaffected: they travel in the checkpoints, which is precisely the
paper's dataflow.

The master's event stream within an episode is independent of task
outcomes (the master reseeds only at restarts), so running it ahead
cannot change *what* it forks.  Only accounting must follow consume
order: each event's instruction count is folded into the counters when
its task is judged, never when it is produced, so events past the first
squash — which the eager engine never produces — are never counted.

When the pool cannot start (sandboxed environments) or breaks mid-run,
the engine degrades to the eager in-process path — same results, no
speedup.
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Union

from repro.config import MsspConfig
from repro.distill.distiller import DistillationResult
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.state import ArchState
from repro.mssp.engine import MsspEngine, MsspResult
from repro.mssp.master import Master, MasterEvent, MasterEventKind
from repro.mssp.regions import ProtectedRegions
from repro.mssp.slave import execute_task
from repro.mssp.task import Checkpoint, Task, TaskStatus
from repro.mssp.trace import MsspCounters, TraceRecord

__all__ = ["ParallelMsspEngine", "DispatchStats", "program_wire_digest"]


def program_wire_digest(program: Program) -> bytes:
    """Content digest keying the per-worker program/decode cache."""
    hasher = hashlib.sha256()
    hasher.update(
        pickle.dumps(
            (program.code, tuple(sorted(program.memory.items())),
             program.entry),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    return hasher.digest()


# -- worker side --------------------------------------------------------------
#
# Workers keep two process-local caches: programs (and, via the global
# decode cache, their decodings) keyed by content digest — so the
# program ships once per worker, through the pool initializer, not once
# per task — and per-episode base memory images keyed by (run token,
# episode).  The token, unique per engine run within the parent process,
# keeps an externally shared executor from resurrecting a previous run's
# episode bases.

_WORKER_PROGRAMS: Dict[bytes, Program] = {}
_WORKER_BASES: Dict[tuple, Dict[int, int]] = {}
_WORKER_BASE_LIMIT = 4

_RUN_TOKENS = itertools.count()


def _worker_init(
    digest: bytes, program: Program, tier: str = "decoded"
) -> None:
    """Pool initializer: preload + pre-decode the original program.

    Under the jit tier the worker also builds its
    :class:`~repro.machine.jit.JitProgram` up front, which replays any
    superblocks already in the persistent code cache — workers reuse
    compilations (typically the parent's) instead of re-JITting through
    their own warmup.
    """
    _WORKER_PROGRAMS[digest] = program
    _WORKER_BASES.clear()
    decode(program)
    if tier == "jit":
        from repro.machine.jit import jit_for

        jit_for(program, "view")


def _pipe_worker(
    conn, digest: bytes, program: Program, tier: str = "decoded"
) -> None:
    """Slave process main loop: execute chunks arriving on ``conn``.

    Messages are ``(chunk_id, payload)``; replies are
    ``(chunk_id, results)``.  ``None`` (or a closed pipe) shuts the
    worker down.  The chunk id is echoed so the engine can discard
    replies to chunks it stopped caring about (episode squash).
    """
    _worker_init(digest, program, tier)
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            chunk_id, payload = message
            conn.send((chunk_id, _execute_chunk(payload)))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _PipePool:
    """A minimal process pool over raw pipes, one per worker.

    ``ProcessPoolExecutor`` routes every submission and result through a
    manager thread plus a queue-feeder thread; with a busy main thread
    (master production + verify) each hop costs GIL handoffs that dwarf
    the actual (sub-millisecond) pickling work.  Here the main thread
    talks to each worker over its own duplex pipe directly: submission
    is one ``send``, retrieval one ``recv`` (which releases the GIL
    while blocking), and there are no auxiliary threads at all.

    Chunks are assigned round-robin; each worker processes its pipe in
    FIFO order, so consuming results in submission order per worker is a
    plain ``recv`` loop.  Stale replies (chunks abandoned on episode
    squash) are skipped by chunk id.
    """

    def __init__(
        self,
        num_workers: int,
        digest: bytes,
        program: Program,
        tier: str = "decoded",
    ):
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._conns = []
        self._procs = []
        self._next_worker = 0
        self._chunk_ids = itertools.count()
        self.num_workers = num_workers
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_pipe_worker,
                args=(child_conn, digest, program, tier),
                daemon=True,
            )
            self._conns.append(parent_conn)
            self._procs.append((proc, child_conn))

    def start(self) -> None:
        """Start the worker processes (run from a background thread:
        submissions buffer in the pipes until workers come up, so the
        ~10ms-per-fork spawn cost overlaps master production)."""
        for proc, child_conn in self._procs:
            proc.start()
            # The child inherited its end; drop the parent's duplicate
            # so a dead worker surfaces as EOF instead of a hang.
            child_conn.close()

    def submit(self, payload: tuple):
        """Ship one chunk; returns an opaque ticket for :meth:`get`."""
        worker = self._next_worker
        self._next_worker = (worker + 1) % self.num_workers
        chunk_id = next(self._chunk_ids)
        self._conns[worker].send((chunk_id, payload))
        return (worker, chunk_id)

    def get(self, ticket) -> List[tuple]:
        """Block for one chunk's results, discarding stale replies."""
        worker, chunk_id = ticket
        conn = self._conns[worker]
        while True:
            got_id, results = conn.recv()
            if got_id == chunk_id:
                return results
            # else: a reply for an episode-squashed chunk; drop it.

    def shutdown(self, wait: bool = False, cancel_futures: bool = False):
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc, _ in self._procs:
            proc.join(timeout=0.5 if wait else 0.05)
            if proc.is_alive():
                proc.terminate()


class _ChainMemory:
    """Architected-memory stand-in for one chunk's optimistic chain.

    ``overlay`` accumulates the live-outs of the chunk's earlier tasks
    (their would-be commits); ``base`` is the episode-start memory
    image.  Mirrors :meth:`ArchState.load`: absent cells read as zero.
    Only :meth:`load` is required — slave execution never stores through
    its architected-state handle.
    """

    __slots__ = ("overlay", "base")

    def __init__(self, base: Dict[int, int]):
        self.overlay: Dict[int, int] = {}
        self.base = base

    def load(self, address: int) -> int:
        value = self.overlay.get(address)
        if value is not None:
            return value
        return self.base.get(address, 0)

    def apply(self, mem_writes: Dict[int, int]) -> None:
        self.overlay.update(mem_writes)


def _episode_base(
    key: tuple, base_delta: Dict[int, int], program: Program
) -> Dict[int, int]:
    """The episode-start memory image (boot image + commit delta)."""
    base = _WORKER_BASES.get(key)
    if base is None:
        base = dict(program.memory)
        for address, value in base_delta.items():
            if value:
                base[address] = value
            else:  # a boot-image cell the machine has since zeroed
                base.pop(address, None)
        while len(_WORKER_BASES) >= _WORKER_BASE_LIMIT:
            _WORKER_BASES.pop(next(iter(_WORKER_BASES)))
        _WORKER_BASES[key] = base
    return base


def _execute_chunk(payload: tuple) -> List[tuple]:
    """Execute one chunk of consecutive tasks; the pool worker entry.

    ``payload`` is built by :meth:`ParallelMsspEngine._encode_chunk`.
    Returns one result tuple per executed task.  Execution stops early
    when a task faults/overruns/aborts on a protected access: in-order
    verification squashes such a task unconditionally, ending the
    episode, so its successors can never be consumed (and if the abort
    was itself an artifact of stale reads, the missing results simply
    fall back to local re-execution).
    """
    (digest, shipped_program, regions_ranges, max_task_instrs,
     base_key, base_delta, wire_tasks, tier) = payload
    program = _WORKER_PROGRAMS.get(digest)
    if program is None:
        if shipped_program is None:  # pragma: no cover - defensive
            raise RuntimeError("worker received no program for digest")
        program = shipped_program
        _WORKER_PROGRAMS[digest] = program
    regions = ProtectedRegions.from_config(regions_ranges)
    chain = _ChainMemory(_episode_base(base_key, base_delta, program))
    results: List[tuple] = []
    prev_mem: Optional[Dict[int, int]] = None
    for (tid, start_pc, end_pc, end_arrivals, regs,
         mem_full, mem_delta) in wire_tasks:
        if mem_full is not None:
            ckpt_mem = mem_full
        else:  # cumulative chain: mem_k == mem_{k-1} | delta_k
            ckpt_mem = {**prev_mem, **mem_delta}
        prev_mem = ckpt_mem
        task = Task(
            tid=tid, start_pc=start_pc,
            checkpoint=Checkpoint(regs=regs, mem=ckpt_mem),
            end_pc=end_pc, end_arrivals=end_arrivals,
        )
        execute_task(
            program, task, chain, max_task_instrs, regions=regions, tier=tier
        )
        results.append(
            (tid, task.live_in_regs, task.live_in_mem, task.live_out_regs,
             task.live_out_mem, task.n_instrs, task.n_loads,
             task.end_state_pc, task.halted, task.faulted, task.overrun,
             task.protected_access)
        )
        if task.faulted or task.overrun or task.protected_access:
            break
        chain.apply(task.live_out_mem)
    return results


# -- engine side --------------------------------------------------------------


@dataclass
class DispatchStats:
    """Plumbing statistics of one parallel run (not part of MsspResult)."""

    chunks: int = 0
    dispatched: int = 0
    #: Worker results adopted verbatim after the staleness check.
    adopted: int = 0
    #: Worker results discarded because an architected cell they read
    #: changed before their commit point (re-executed locally).
    stale: int = 0
    #: Tasks whose worker result never arrived (early chunk exit, broken
    #: pool, or never dispatched) — re-executed locally.
    missing: int = 0
    reexecuted: int = 0
    #: Produced-but-never-judged tasks thrown away when an episode ended
    #: early (the squash/cancel path).
    discarded: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "chunks": self.chunks,
            "dispatched": self.dispatched,
            "adopted": self.adopted,
            "stale": self.stale,
            "missing": self.missing,
            "reexecuted": self.reexecuted,
            "discarded": self.discarded,
        }


@dataclass
class _Pending:
    """One produced-but-not-yet-judged task in episode order."""

    task: Task
    event: MasterEvent
    failure: bool = False
    #: Master store-delta of the event that OPENED this task (wire
    #: chain-encoding input); None ships the full checkpoint map.
    open_delta: Optional[Dict[int, int]] = None


@dataclass
class _Chunk:
    """One in-flight pool submission (exactly one handle is set)."""

    last_tid: int
    future: object = None    # external-executor path
    ticket: object = None    # _PipePool path


class ParallelMsspEngine(MsspEngine):
    """MSSP with real overlapped slave execution (see module docstring).

    Drop-in for :class:`MsspEngine`: same constructor, same ``run`` /
    ``run_and_check`` API, bit-identical :class:`MsspResult`.  Extra
    knobs come from :class:`~repro.config.MsspConfig` (``num_slaves``,
    ``parallel_chunk_tasks``); ``dispatch_stats`` reports how the last
    run was actually executed.  Pass ``executor`` to reuse an existing
    pool: the engine then ships the program with every chunk instead of
    preloading workers, and never shuts the pool down.
    """

    def __init__(
        self,
        original: Program,
        distillation: Union[DistillationResult, tuple],
        config: Optional[MsspConfig] = None,
        executor=None,
    ):
        super().__init__(original, distillation, config=config)
        self._external_executor = executor
        self._pool = None
        self._pool_broken = False
        self._finalizer = None
        self._episode_seq = 0
        self._run_token = -1
        self._digest = program_wire_digest(original)
        self._boot_mem: Dict[int, int] = dict(original.memory)
        self.dispatch_stats = DispatchStats()

    # -- pool lifecycle -----------------------------------------------------------
    #
    # The pool is created lazily on the first run and *kept* across runs
    # (worker spawns are the dominant fixed cost; steady-state reuse is
    # what benchmarking measures).  ``close()`` — also via context
    # manager or garbage collection — shuts it down.

    def run(self) -> MsspResult:
        self.dispatch_stats = DispatchStats()
        self._episode_seq = 0
        self._run_token = next(_RUN_TOKENS)
        if self._external_executor is not None:
            self._pool = self._external_executor
        elif self._pool is None and not self._pool_broken:
            self._pool = self._create_pool()
            if self._pool is None:
                self._pool_broken = True
        if self._pool_broken:
            self._pool = None
        return super().run()

    def close(self) -> None:
        """Shut down the engine's own worker pool (external pools stay up)."""
        if self._finalizer is not None:
            self._finalizer()
        self._pool = None

    def __enter__(self) -> "ParallelMsspEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _create_pool(self):
        """A :class:`_PipePool` preloaded with the program, or None.

        The worker processes are started from a background thread:
        submissions buffer in the pipes meanwhile, so the per-fork spawn
        cost overlaps master production instead of serializing in the
        dispatch path.
        """
        try:
            import threading
            import weakref

            pool = _PipePool(
                self.config.num_slaves, self._digest, self.original,
                tier=self.exec_tier,
            )
            threading.Thread(target=pool.start, daemon=True).start()
            self._finalizer = weakref.finalize(self, pool.shutdown)
            return pool
        except (ImportError, NotImplementedError, OSError, PermissionError):
            return None

    # -- the pipelined episode ----------------------------------------------------

    def _run_episode(
        self,
        arch: ArchState,
        master: Master,
        counters: MsspCounters,
        records: List[TraceRecord],
        recent_outcomes: deque,
        next_tid: int,
    ) -> tuple:
        if self._pool is None or self._pool_broken:
            # No (working) pool: the eager in-process episode is the
            # degradation path — identical results, no overlap.
            return super()._run_episode(
                arch, master, counters, records, recent_outcomes, next_tid
            )
        config = self.config
        chunk_size = min(config.parallel_chunk_tasks, config.max_inflight_tasks)
        window = max(
            chunk_size,
            min(config.max_inflight_tasks, config.num_slaves * chunk_size),
        )
        base_key = (self._run_token, self._episode_seq)
        self._episode_seq += 1
        base_delta = self._episode_base_delta(arch)
        # Workers execute against an image of architected memory frozen
        # at this point; cells unstamped since now are provably equal to
        # that image at every later judge point in the episode (the
        # verify fast path's precondition for adopted results).
        episode_version = self._versions.seq
        stats = self.dispatch_stats

        #: Produced, not yet judged — episode order; head judged first.
        pending: Deque[_Pending] = deque()
        #: Produced, not yet shipped — suffix of the episode order.
        to_dispatch: List[_Pending] = []
        inflight: Deque[_Chunk] = deque()
        results: Dict[int, tuple] = {}
        production_done = False

        open_task = Task(
            tid=next_tid, start_pc=arch.pc,
            checkpoint=Checkpoint.exact(arch), exact=True,
        )
        open_delta: Optional[Dict[int, int]] = None
        next_tid += 1

        try:
            while True:
                # 1. Master run-ahead: fork tasks into the window.
                while not production_done and len(pending) < window:
                    event = master.run_until_fork()
                    if event.kind is MasterEventKind.FORK:
                        open_task.end_pc = event.anchor
                        open_task.end_arrivals = event.arrivals
                        entry = _Pending(open_task, event,
                                         open_delta=open_delta)
                        pending.append(entry)
                        to_dispatch.append(entry)
                        open_task = Task(
                            tid=next_tid, start_pc=event.anchor,
                            checkpoint=event.checkpoint,
                        )
                        open_delta = event.mem_delta
                        next_tid += 1
                    elif event.kind is MasterEventKind.HALT:
                        open_task.end_pc = None
                        open_task.final = True
                        entry = _Pending(open_task, event,
                                         open_delta=open_delta)
                        pending.append(entry)
                        to_dispatch.append(entry)
                        production_done = True
                    else:  # TRAP / TIMEOUT: the open task is undelimited.
                        pending.append(_Pending(open_task, event,
                                                failure=True))
                        production_done = True

                # 2. Ship closed tasks in chunks.  Partial chunks go out
                # only when nothing is in flight (the pipeline would
                # starve) or nothing more is coming.
                while to_dispatch and (
                    len(to_dispatch) >= chunk_size
                    or production_done
                    or not inflight
                ):
                    batch = to_dispatch[:chunk_size]
                    del to_dispatch[:chunk_size]
                    self._submit_chunk(base_key, base_delta, batch,
                                       inflight, stats)

                # 3. Verify/commit the next task in episode order.
                entry = pending.popleft()
                counters.master_instrs += entry.event.instrs
                task = entry.task
                if entry.failure:
                    self._record_master_failure(
                        task, entry.event, counters, records
                    )
                    recent_outcomes.append(False)
                    return False, task.tid + 1
                result = self._await_result(task.tid, inflight, results)
                task.base_version = episode_version
                if result is not None and self._result_valid(
                    task, result, arch
                ):
                    self._adopt_result(task, result)
                    stats.adopted += 1
                else:
                    if result is not None:
                        stats.stale += 1
                    else:
                        stats.missing += 1
                    stats.reexecuted += 1
                    task.status = TaskStatus.READY
                    # Local re-execution is the eager path: the task
                    # reads architected state as of now.
                    task.base_version = self._versions.seq
                    execute_task(
                        self.original, task, arch, config.max_task_instrs,
                        regions=self.regions, tier=self.exec_tier,
                    )
                committed, slave_halted = self._judge_task(
                    task, entry.event, arch, counters, records
                )
                recent_outcomes.append(committed)
                if not committed:
                    return False, task.tid + 1
                if slave_halted:
                    return True, next_tid
                self._check_budget(counters)
        finally:
            # Episode over: every produced-but-unjudged successor is
            # discarded, exactly as the eager engine discards it by
            # never producing it.
            stats.discarded += len(pending) + len(to_dispatch)
            for chunk in inflight:
                if chunk.future is not None:
                    chunk.future.cancel()
                # Pipe-pool chunks can't be cancelled; their replies are
                # dropped by chunk id when the next episode reads the pipe.

    # -- dispatch helpers ---------------------------------------------------------

    def _episode_base_delta(self, arch: ArchState) -> Dict[int, int]:
        """Memory changed since boot (value 0 encodes a deleted cell)."""
        boot = self._boot_mem
        delta: Dict[int, int] = {}
        for address, value in arch.mem.items():
            if boot.get(address, 0) != value:
                delta[address] = value
        for address, value in boot.items():
            if value and address not in arch.mem:
                delta[address] = 0
        return delta

    def _submit_chunk(
        self,
        base_key: tuple,
        base_delta: Dict[int, int],
        batch: List[_Pending],
        inflight: Deque[_Chunk],
        stats: DispatchStats,
    ) -> None:
        if self._pool_broken or self._pool is None:
            return  # undispatched tasks re-execute locally when judged
        payload = self._encode_chunk(base_key, base_delta, batch)
        chunk = _Chunk(last_tid=batch[-1].task.tid)
        try:
            if isinstance(self._pool, _PipePool):
                chunk.ticket = self._pool.submit(payload)
            else:
                chunk.future = self._pool.submit(_execute_chunk, payload)
        except Exception:
            self._pool_broken = True
            return
        inflight.append(chunk)
        stats.chunks += 1
        stats.dispatched += len(batch)

    def _encode_chunk(
        self,
        base_key: tuple,
        base_delta: Dict[int, int],
        batch: List[_Pending],
    ) -> tuple:
        """The picklable worker payload for one chunk of tasks.

        In cumulative checkpoint mode consecutive checkpoints satisfy
        ``mem_k == mem_{k-1} | delta_k``, so only the chunk's first task
        ships its full (cumulative, possibly large) overlay; the rest
        ship the master's per-fork store delta and the worker re-chains
        them.  In delta mode every checkpoint already is its delta.
        """
        chained = self.config.checkpoint_mode == "cumulative"
        wire = []
        first = True
        for entry in batch:
            task = entry.task
            ckpt = task.checkpoint
            if not first and chained and entry.open_delta is not None:
                mem_full, mem_delta = None, entry.open_delta
            else:
                mem_full, mem_delta = ckpt.mem, None
            wire.append(
                (task.tid, task.start_pc, task.end_pc, task.end_arrivals,
                 ckpt.regs, mem_full, mem_delta)
            )
            first = False
        shipped = None if self._external_executor is None else self.original
        return (
            self._digest, shipped, self.config.protected_regions,
            self.config.max_task_instrs, base_key, base_delta, wire,
            self.exec_tier,
        )

    def _await_result(
        self,
        tid: int,
        inflight: Deque[_Chunk],
        results: Dict[int, tuple],
    ) -> Optional[tuple]:
        """The worker result for ``tid``, or None (→ local re-execution).

        Chunks are submitted and consumed in episode order, so draining
        the head future is enough; a drained chunk that *should* have
        contained ``tid`` but stopped early (task fault/overrun) yields
        None immediately instead of draining the whole pipeline.
        """
        while tid not in results:
            if not inflight:
                return None
            chunk = inflight.popleft()
            try:
                if chunk.ticket is not None:
                    chunk_results = self._pool.get(chunk.ticket)
                else:
                    chunk_results = chunk.future.result()
            except Exception:
                self._pool_broken = True
                return None
            for item in chunk_results:
                results[item[0]] = item
            if tid not in results and tid <= chunk.last_tid:
                return None
        return results.pop(tid)

    def _result_valid(
        self, task: Task, result: tuple, arch: ArchState
    ) -> bool:
        """True iff the worker's execution is what eager would produce.

        Register live-ins come from the checkpoint (shipped verbatim)
        and the memory overlay is reconstructed exactly, so the worker
        can only have diverged through a memory cell it read from its
        (possibly stale) image of architected state — by the slave
        view's lookup order, exactly the recorded ``live_in_mem``
        entries whose address the checkpoint overlay does not cover.
        If every such cell matches architected state *now* (this task's
        commit point), the worker's execution was step-for-step the
        eager one.

        Cells the version stamps prove unchanged since episode start
        skip the value compare (``task.base_version`` is the episode's
        base version here): an unchanged cell still holds the episode
        base image's value, which is exactly what the worker read —
        unless a chunk predecessor's overlay served the read, in which
        case that predecessor has committed by now and stamped the cell,
        forcing the full compare.  The verdict is identical either way.
        """
        ckpt_mem = task.checkpoint.mem
        load = arch.load
        versions = self._versions
        base = task.base_version
        for address, value in result[2].items():
            if address in ckpt_mem:
                continue
            if base is not None and not versions.changed_since(address, base):
                versions.skipped += 1
                continue
            if load(address) != value:
                return False
        return True

    @staticmethod
    def _adopt_result(task: Task, result: tuple) -> None:
        (_, task.live_in_regs, task.live_in_mem, task.live_out_regs,
         task.live_out_mem, task.n_instrs, task.n_loads, task.end_state_pc,
         task.halted, task.faulted, task.overrun,
         task.protected_access) = result
        task.status = TaskStatus.COMPLETED
