"""Deprecated shell around the process runtime (kept for back-compat).

:class:`ParallelMsspEngine` predates the unified runtime core: it used
to carry the pipelined episode loop and the process-pool plumbing
itself.  Both now live in :mod:`repro.mssp.runtime` — the episode state
machine in :class:`~repro.mssp.runtime.pipeline.TaskPipeline`, the
worker substrate in :mod:`~repro.mssp.runtime.procpool`, and the
dispatch layer in
:class:`~repro.mssp.runtime.executors.ProcessExecutor` — and a plain
:class:`~repro.mssp.engine.MsspEngine` with ``runtime="process"``
(via :func:`~repro.mssp.engine.create_engine`) is the supported way to
get overlapped slave execution.  ``runtime="parallel"`` remains a
working alias of ``"process"``.

This module keeps the old entry point alive: the class is now a thin
subclass that warns (``DeprecationWarning``, once per process), pins the
runtime to the documented process backend, and stashes the legacy
``executor=`` constructor argument (an externally owned pool) where the
shared :func:`~repro.mssp.runtime.executors.create_executor` factory
picks it up — the shim no longer carries any dispatch code of its own.
The worker-side names that used to be defined here (``_execute_chunk``,
``_PipePool``, ``_ChainMemory``, ...) are re-exported from
:mod:`repro.mssp.runtime.procpool` unchanged.

For the long-form argument of why overlapped execution stays
bit-identical to the eager reference, see
:mod:`repro.mssp.runtime.pipeline` (the short form) and the staleness
discussion in :meth:`TaskPipeline._result_valid`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import MsspConfig
from repro.distill.distiller import DistillationResult
from repro.isa.program import Program
from repro.mssp.engine import MsspEngine
from repro.mssp.runtime.procpool import (  # noqa: F401  (re-exports)
    _RUN_TOKENS,
    _WORKER_BASE_LIMIT,
    _WORKER_BASES,
    _WORKER_PROGRAMS,
    _ChainMemory,
    _PipePool,
    _episode_base,
    _execute_chunk,
    _pipe_worker,
    _worker_init,
    program_wire_digest,
)
from repro.mssp.trace import DispatchStats  # noqa: F401  (re-export)

__all__ = ["ParallelMsspEngine", "DispatchStats", "program_wire_digest"]


class ParallelMsspEngine(MsspEngine):
    """Deprecated: ``MsspEngine`` pinned to the process backend.

    Prefer ``create_engine(..., config=MsspConfig(runtime="process"))``.
    Drop-in for :class:`MsspEngine`: same constructor, same ``run`` /
    ``run_and_check`` API, bit-identical :class:`MsspResult`.  Pass
    ``executor`` to reuse an existing externally owned pool: the engine
    then ships the program with every chunk instead of preloading
    workers, and never shuts the pool down.
    """

    def __init__(
        self,
        original: Program,
        distillation: Union[DistillationResult, tuple],
        config: Optional[MsspConfig] = None,
        executor=None,
    ):
        import warnings

        warnings.warn(
            "ParallelMsspEngine is deprecated; use "
            "create_engine(..., config=MsspConfig(runtime='process'))",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(original, distillation, config=config)
        # The class itself is the runtime selection, whatever the config
        # says (configs predating the runtime field default to eager).
        self.runtime = "process"
        # The shared create_executor factory threads this through to
        # ProcessExecutor(external=...); the shim has no dispatch code.
        # (_external_executor is the legacy spelling some callers read.)
        self._external_pool = executor
        self._external_executor = executor
