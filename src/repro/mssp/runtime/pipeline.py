"""The MSSP episode state machine, written exactly once.

:class:`TaskPipeline` owns the fork/HALT/TRAP production loop — the
engine's only call into the master's run-ahead entry point lives here —
and runs it against any :class:`SlaveExecutor` backend:

* master production into a bounded in-flight window (window = one task
  for non-pipelined backends, which reproduces the eager engine's
  master/slave interleaving exactly);
* chunked dispatch to the executor (pipelined backends only);
* in-order judge via the engine core's shared ``_judge_task``: the
  worker result for the head task is awaited, staleness-checked against
  architected state at its commit point, and either adopted or replaced
  by local re-execution — the eager path itself — so the judged task is
  identical either way;
* squash/trap/halt ends the episode, discarding every produced-but-
  unjudged successor, exactly as the eager engine discards them by
  never producing them.

Accounting follows consume order, never production order: each master
event's instruction count folds into the counters when its task is
judged, so events past the first squash — which the eager engine never
produces — are never counted.  That, plus the staleness check, is the
bit-identity argument (see :mod:`repro.mssp.parallel` for the long
form).

Everything observable is announced on the engine's
:class:`~repro.mssp.runtime.events.EventBus` as it happens.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.machine.state import ArchState
from repro.mssp.master import Master, MasterEvent, MasterEventKind
from repro.mssp.runtime.events import (
    ChunkDispatched,
    EventBus,
    JitDeopt,
    LiveInPredicted,
    ResultAdopted,
    TaskExecuted,
    TaskForked,
)
from repro.mssp.runtime.executors import ChunkHandle, SlaveExecutor
from repro.mssp.slave import execute_task
from repro.mssp.task import (
    Checkpoint,
    Task,
    TaskStatus,
    adopt_wire_result,
)

__all__ = ["TaskPipeline", "_Pending"]


@dataclass
class _Pending:
    """One produced-but-not-yet-judged task in episode order."""

    task: Task
    event: MasterEvent
    failure: bool = False
    #: Master store-delta of the event that OPENED this task (wire
    #: chain-encoding input); None ships the full checkpoint map.
    open_delta: Optional[Dict[int, int]] = None


@dataclass
class _Chunk:
    """One in-flight executor submission."""

    last_tid: int
    handle: ChunkHandle


class TaskPipeline:
    """Runs episodes for an engine core over one executor backend.

    ``core`` is the engine (duck-typed): the pipeline reads its config,
    program, regions, tier, and version stamps, and calls back into its
    ``_judge_task`` / ``_record_master_failure`` / ``_check_budget`` —
    the verify/commit stage stays on the engine so subclasses that hook
    judgement keep working identically under every backend.
    """

    def __init__(self, core, executor: SlaveExecutor, events: EventBus):
        self.core = core
        self.executor = executor
        self.events = events
        # Mirror of the jit tier's whole-task deopt conditions in
        # execute_task, so local executions announce their deopts.
        self._jit_deopt_why: Optional[str] = None
        self._jit_leaders = None
        if core.exec_tier == "jit":
            if core.regions is not None:
                self._jit_deopt_why = "protected-regions"
            else:
                from repro.machine.jit import jit_for

                self._jit_leaders = jit_for(core.original, "view").leaders

    # -- episode ------------------------------------------------------------------

    def run_episode(
        self,
        arch: ArchState,
        master: Master,
        counters,
        recent_outcomes: deque,
        next_tid: int,
    ) -> tuple:
        """One episode: the master just restarted at ``arch``.

        Runs production/dispatch/judge until the machine halts or the
        episode fails (squash, master trap/timeout).  Returns
        ``(machine_halted, next_tid)``; the engine handles recovery and
        throttling around it.
        """
        core = self.core
        config = core.config
        events = self.events
        executor = self.executor
        pipelined = executor.pipelined and not executor.broken
        if pipelined:
            chunk_size = min(
                config.parallel_chunk_tasks, config.max_inflight_tasks
            )
            window = max(
                chunk_size,
                min(
                    config.max_inflight_tasks,
                    executor.workers * chunk_size,
                ),
            )
            executor.begin_episode(arch)
        else:
            chunk_size = 1
            window = 1
        # Workers execute against an image of architected memory frozen
        # at this point; cells unstamped since now are provably equal to
        # that image at every later judge point in the episode (the
        # verify fast path's precondition for adopted results).
        episode_version = core._versions.seq
        stats = core.dispatch_stats

        #: Produced, not yet judged — episode order; head judged first.
        pending: Deque[_Pending] = deque()
        #: Produced, not yet shipped — suffix of the episode order.
        to_dispatch: List[_Pending] = []
        inflight: Deque[_Chunk] = deque()
        results: Dict[int, tuple] = {}
        production_done = False

        open_task = Task(
            tid=next_tid, start_pc=arch.pc,
            checkpoint=Checkpoint.exact(arch), exact=True,
            proven_regs=core.static_proven_regs(arch.pc),
        )
        open_delta: Optional[Dict[int, int]] = None
        next_tid += 1

        try:
            while True:
                # 1. Master run-ahead: fork tasks into the window.
                while not production_done and len(pending) < window:
                    event = master.run_until_fork()
                    if event.kind is MasterEventKind.FORK:
                        open_task.end_pc = event.anchor
                        open_task.end_arrivals = event.arrivals
                        entry = _Pending(open_task, event,
                                         open_delta=open_delta)
                        pending.append(entry)
                        if pipelined:
                            to_dispatch.append(entry)
                        events.emit(TaskForked(
                            tid=open_task.tid, start_pc=open_task.start_pc,
                            end_pc=open_task.end_pc, exact=open_task.exact,
                        ))
                        # Start-image patching: override the master's
                        # guess for cells the predictor bank is both
                        # confident about and gate-open on (episode-
                        # frozen snapshot, so every backend patches
                        # identically).  Only registers are patched —
                        # checkpoint memory is delta-chained on the
                        # process wire.  Exact tasks are never patched.
                        checkpoint = event.checkpoint
                        predicted: Dict[int, int] = {}
                        bank = getattr(core, "predictor", None)
                        if bank is not None:
                            overrides = bank.predictions_for(event.anchor)
                            if overrides:
                                checkpoint, predicted = checkpoint.patched(
                                    overrides
                                )
                        open_task = Task(
                            tid=next_tid, start_pc=event.anchor,
                            checkpoint=checkpoint,
                            proven_regs=core.static_proven_regs(
                                event.anchor
                            ),
                            predicted_cells=predicted,
                        )
                        if predicted:
                            events.emit(LiveInPredicted(
                                tid=open_task.tid, anchor=event.anchor,
                                cells=tuple(sorted(predicted)),
                            ))
                        open_delta = event.mem_delta
                        next_tid += 1
                    elif event.kind is MasterEventKind.HALT:
                        open_task.end_pc = None
                        open_task.final = True
                        entry = _Pending(open_task, event,
                                         open_delta=open_delta)
                        pending.append(entry)
                        if pipelined:
                            to_dispatch.append(entry)
                        events.emit(TaskForked(
                            tid=open_task.tid, start_pc=open_task.start_pc,
                            end_pc=None, exact=open_task.exact, final=True,
                        ))
                        production_done = True
                    else:  # TRAP / TIMEOUT: the open task is undelimited.
                        pending.append(_Pending(open_task, event,
                                                failure=True))
                        production_done = True

                # 2. Ship closed tasks in chunks.  Partial chunks go out
                # only when nothing is in flight (the pipeline would
                # starve) or nothing more is coming.
                while to_dispatch and (
                    len(to_dispatch) >= chunk_size
                    or production_done
                    or not inflight
                ):
                    batch = to_dispatch[:chunk_size]
                    del to_dispatch[:chunk_size]
                    self._dispatch(batch, inflight, stats)

                # 3. Verify/commit the next task in episode order.
                entry = pending.popleft()
                counters.master_instrs += entry.event.instrs
                task = entry.task
                if entry.failure:
                    core._record_master_failure(task, entry.event, counters)
                    recent_outcomes.append(False)
                    return False, task.tid + 1
                result = self._await_result(task.tid, inflight, results)
                adopted = False
                if result is not None:
                    task.base_version = episode_version
                    if self._result_valid(task, result, arch):
                        adopt_wire_result(task, result)
                        adopted = True
                        stats.adopted += 1
                        events.emit(
                            ResultAdopted(
                                tid=task.tid, cost=task.exec_seconds
                            )
                        )
                    else:
                        stats.stale += 1
                if not adopted:
                    if pipelined:
                        if result is None:
                            stats.missing += 1
                        stats.reexecuted += 1
                    self._execute_locally(task, arch)
                events.emit(
                    TaskExecuted(
                        task=task, adopted=adopted, cost=task.exec_seconds
                    )
                )
                committed, slave_halted = core._judge_task(
                    task, entry.event, arch, counters
                )
                recent_outcomes.append(committed)
                if not committed:
                    return False, task.tid + 1
                if slave_halted:
                    return True, next_tid
                core._check_budget(counters)
        finally:
            # Episode over: every produced-but-unjudged successor is
            # discarded, exactly as the eager engine discards it by
            # never producing it.
            stats.discarded += len(pending) + len(to_dispatch)
            for chunk in inflight:
                chunk.handle.cancel()
            if pipelined:
                executor.end_episode()

    # -- stages -------------------------------------------------------------------

    def _dispatch(
        self,
        batch: List[_Pending],
        inflight: Deque[_Chunk],
        stats,
    ) -> None:
        handle = self.executor.submit_chunk(batch)
        if handle is None:
            return  # undispatched tasks re-execute locally when judged
        inflight.append(_Chunk(last_tid=batch[-1].task.tid, handle=handle))
        stats.chunks += 1
        stats.dispatched += len(batch)
        self.events.emit(ChunkDispatched(
            executor=self.executor.name,
            first_tid=batch[0].task.tid,
            last_tid=batch[-1].task.tid,
            n_tasks=len(batch),
        ))

    def _await_result(
        self,
        tid: int,
        inflight: Deque[_Chunk],
        results: Dict[int, tuple],
    ) -> Optional[tuple]:
        """The worker result for ``tid``, or None (→ local re-execution).

        Chunks are submitted and consumed in episode order, so draining
        the head handle is enough; a drained chunk that *should* have
        contained ``tid`` but stopped early (task fault/overrun) yields
        None immediately instead of draining the whole pipeline.
        """
        while tid not in results:
            if not inflight:
                return None
            chunk = inflight.popleft()
            try:
                chunk_results = chunk.handle()
            except Exception:
                self.executor.mark_broken("a chunk failed to complete")
                return None
            for item in chunk_results:
                results[item[0]] = item
            if tid not in results and tid <= chunk.last_tid:
                return None
        return results.pop(tid)

    def _result_valid(
        self, task: Task, result: tuple, arch: ArchState
    ) -> bool:
        """True iff the worker's execution is what eager would produce.

        Register live-ins come from the checkpoint (shipped verbatim)
        and the memory overlay is reconstructed exactly, so the worker
        can only have diverged through a memory cell it read from its
        (possibly stale) image of architected state — by the slave
        view's lookup order, exactly the recorded ``live_in_mem``
        entries whose address the checkpoint overlay does not cover.
        If every such cell matches architected state *now* (this task's
        commit point), the worker's execution was step-for-step the
        eager one.

        Cells the version stamps prove unchanged since episode start
        skip the value compare (``task.base_version`` is the episode's
        base version here): an unchanged cell still holds the episode
        base image's value, which is exactly what the worker read —
        unless a chunk predecessor's overlay served the read, in which
        case that predecessor has committed by now and stamped the cell,
        forcing the full compare.  The verdict is identical either way.
        """
        ckpt_mem = task.checkpoint.mem
        load = arch.load
        versions = self.core._versions
        base = task.base_version
        for address, value in result[2].items():
            if address in ckpt_mem:
                continue
            if base is not None and not versions.changed_since(address, base):
                versions.skipped += 1
                continue
            if load(address) != value:
                return False
        return True

    def _execute_locally(self, task: Task, arch: ArchState) -> None:
        """The eager path: execute against architected state as of now."""
        core = self.core
        task.status = TaskStatus.READY
        # Nothing commits between this execution and the judge that
        # follows it, so the version stamp taken now never invalidates.
        task.base_version = core._versions.seq
        if self._jit_deopt_why is not None:
            self.events.emit(JitDeopt(tid=task.tid, why=self._jit_deopt_why))
        elif (
            self._jit_leaders is not None
            and task.end_pc is not None
            and task.end_pc not in self._jit_leaders
        ):
            self.events.emit(JitDeopt(tid=task.tid, why="non-leader-end-pc"))
        t0 = time.perf_counter()
        execute_task(
            core.original, task, arch, core.config.max_task_instrs,
            regions=core.regions, tier=core.exec_tier,
        )
        task.exec_seconds = time.perf_counter() - t0
