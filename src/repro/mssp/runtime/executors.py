"""Pluggable slave-execution backends for the task pipeline.

One protocol, three substrates:

* :class:`InlineExecutor` — no dispatch at all.  The pipeline runs with
  a window of one and executes every task locally at judge time, which
  *is* the eager reference path.
* :class:`ThreadExecutor` — slave chunks on a
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Zero pickling and
  zero wire encoding (tasks are read in place through an episode-start
  memory snapshot), so its entire cost is the thread handoff: the right
  overlap story on 1-core containers and free-threaded CPython, and a
  much cheaper differential target for tests than a process pool.
* :class:`ProcessExecutor` — the :class:`~repro.mssp.runtime.procpool`
  substrate: chunks are wire-encoded (delta-chained checkpoints),
  shipped to forked workers over raw pipes, and decoded against
  per-worker program/base caches.

Every backend returns the same flat :func:`repro.mssp.task.wire_result`
tuples, and the pipeline treats a missing/stale result identically
regardless of backend (local re-execution), which is what keeps
:class:`~repro.mssp.engine.MsspResult` bit-identical across all three.

A backend that cannot start or breaks mid-run flags itself ``broken``
and announces a :class:`~repro.mssp.runtime.events.PoolDegraded` event;
from the next episode on the pipeline treats it as inline.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from typing import Callable, Dict, List, Optional

from repro.machine.flatmem import as_dict
from repro.machine.state import ArchState
from repro.mssp.runtime.events import EventBus, PoolDegraded
from repro.mssp.runtime.procpool import (
    _RUN_TOKENS,
    _ChainMemory,
    _PipePool,
    _execute_chunk,
    program_wire_digest,
)
from repro.mssp.slave import execute_task
from repro.mssp.task import Task, wire_result

__all__ = [
    "SlaveExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ChunkHandle",
    "create_executor",
    "resolve_runtime",
    "RUNTIME_CHOICES",
]

#: Runtime names :func:`resolve_runtime` accepts ("parallel" is the
#: deprecated spelling of "process", kept for config/CLI back-compat;
#: "sim" runs slaves on the discrete-event simulator's virtual clock).
RUNTIME_CHOICES = ("eager", "thread", "process", "parallel", "sim")

# One DeprecationWarning per process for runtime="parallel", however
# many engines resolve it.
_PARALLEL_WARNED = False


def resolve_runtime(setting: Optional[str]) -> str:
    """Resolve a config/CLI runtime setting to a backend name.

    ``None`` defers to the ``REPRO_RUNTIME`` environment variable
    (default eager), mirroring how ``exec_tier``/``REPRO_EXEC`` resolve;
    the deprecated alias ``"parallel"`` maps to ``"process"`` with a
    one-time :class:`DeprecationWarning`.
    """
    if setting is None:
        setting = os.environ.get("REPRO_RUNTIME") or "eager"
    if setting == "parallel":
        global _PARALLEL_WARNED
        if not _PARALLEL_WARNED:
            _PARALLEL_WARNED = True
            warnings.warn(
                "runtime='parallel' is deprecated; use runtime='process' "
                "(the documented name for the forked-worker backend)",
                DeprecationWarning,
                stacklevel=3,
            )
        setting = "process"
    if setting not in ("eager", "thread", "process", "sim"):
        raise ValueError(
            f"unknown runtime {setting!r}: "
            "expected 'eager', 'thread', 'process' or 'sim' "
            "(or the deprecated alias 'parallel')"
        )
    return setting


class ChunkHandle:
    """One in-flight chunk: call to block for its wire results."""

    __slots__ = ("_result", "_cancel")

    def __init__(
        self,
        result: Callable[[], List[tuple]],
        cancel: Optional[Callable[[], object]] = None,
    ):
        self._result = result
        self._cancel = cancel

    def __call__(self) -> List[tuple]:
        return self._result()

    def cancel(self) -> None:
        """Best-effort abandon (pipe chunks cannot be cancelled; their
        replies are dropped by chunk id instead)."""
        if self._cancel is not None:
            self._cancel()


class SlaveExecutor:
    """Protocol (and inline default) every backend implements.

    The pipeline drives it per episode: ``begin_run`` once per engine
    run, ``begin_episode(arch)`` before production starts, then
    ``submit_chunk(batch)`` for each batch of closed tasks — returning a
    :class:`ChunkHandle` or ``None`` when the backend is (now) broken —
    and ``end_episode`` when the episode ends (commit, squash, or halt).
    ``close`` releases OS resources and must be idempotent.
    """

    name = "inline"
    #: Whether the pipeline should run the master ahead and dispatch
    #: chunks at all.  Non-pipelined backends get a window of one task —
    #: exactly the eager engine's interleaving.
    pipelined = False

    def __init__(self, core, events: EventBus):
        self.core = core
        self.events = events
        self.broken = False

    @property
    def workers(self) -> int:
        return 1

    def begin_run(self) -> None:
        pass

    def begin_episode(self, arch: ArchState) -> None:
        pass

    def submit_chunk(self, batch) -> Optional[ChunkHandle]:
        raise NotImplementedError(
            f"{self.name} executor does not dispatch chunks"
        )

    def end_episode(self) -> None:
        pass

    def close(self) -> None:
        pass

    def mark_broken(self, why: str) -> None:
        """Flag the backend dead and announce the degradation (once)."""
        if not self.broken:
            self.broken = True
            self.events.emit(PoolDegraded(executor=self.name, why=why))


class InlineExecutor(SlaveExecutor):
    """Today's eager path: every task executes locally at judge time."""


class ThreadExecutor(SlaveExecutor):
    """Slave chunks on an in-process thread pool, no wire cost.

    Chunks execute against a memory snapshot taken at episode start
    (the exact analogue of the process workers' ``_episode_base``
    image), chaining live-outs through a chunk-local
    :class:`~repro.mssp.runtime.procpool._ChainMemory` overlay.  Worker
    threads run *shadow* tasks built from the authoritative tasks'
    immutable fields, so the main thread's judge/re-execute path never
    races a thread over task state; results travel back as the same
    :func:`~repro.mssp.task.wire_result` tuples the process backend
    produces.
    """

    name = "thread"
    pipelined = True

    def __init__(self, core, events: EventBus):
        super().__init__(core, events)
        self._pool = None
        self._finalizer = None
        self._base: Dict[int, int] = {}
        if core.exec_tier == "jit" and core.regions is None:
            # Compile the JitProgram on the main thread before worker
            # threads race to attach it to the program object.
            from repro.machine.jit import jit_for

            jit_for(core.original, "view")

    @property
    def workers(self) -> int:
        return self.core.config.num_slaves

    def _ensure_pool(self):
        if self._pool is None and not self.broken:
            try:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="mssp-slave",
                )
                self._finalizer = weakref.finalize(
                    self, self._pool.shutdown, wait=False,
                    cancel_futures=True,
                )
            except Exception:  # pragma: no cover - thread-less hosts
                self.mark_broken("thread pool failed to start")
        return self._pool

    def begin_episode(self, arch: ArchState) -> None:
        # Freeze the episode-start image: committing tasks mutate
        # arch.mem on the main thread while chunks read concurrently.
        # (as_dict snapshots the flat backend page-wise, not cell-wise.)
        self._base = as_dict(arch.mem)

    def submit_chunk(self, batch) -> Optional[ChunkHandle]:
        pool = self._ensure_pool()
        if pool is None:
            return None
        core = self.core
        specs = [
            (entry.task.tid, entry.task.start_pc, entry.task.end_pc,
             entry.task.end_arrivals, entry.task.checkpoint)
            for entry in batch
        ]
        chain = _ChainMemory(self._base)
        program = core.original
        max_instrs = core.config.max_task_instrs
        regions = core.regions
        tier = core.exec_tier

        def run() -> List[tuple]:
            results: List[tuple] = []
            for tid, start_pc, end_pc, end_arrivals, checkpoint in specs:
                shadow = Task(
                    tid=tid, start_pc=start_pc, checkpoint=checkpoint,
                    end_pc=end_pc, end_arrivals=end_arrivals,
                )
                t0 = time.perf_counter()
                execute_task(
                    program, shadow, chain, max_instrs,
                    regions=regions, tier=tier,
                )
                shadow.exec_seconds = time.perf_counter() - t0
                results.append(wire_result(shadow))
                if shadow.faulted or shadow.overrun or shadow.protected_access:
                    break
                chain.apply(shadow.live_out_mem)
            return results

        try:
            future = pool.submit(run)
        except Exception:
            self.mark_broken("thread pool rejected a submission")
            return None
        return ChunkHandle(future.result, future.cancel)

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
        self._pool = None


class ProcessExecutor(SlaveExecutor):
    """Slave chunks on forked worker processes (the procpool substrate).

    Owns a lazily started :class:`~repro.mssp.runtime.procpool._PipePool`
    kept across runs (worker spawns are the dominant fixed cost;
    steady-state reuse is what benchmarking measures), or wraps an
    externally supplied executor — then the program ships with every
    chunk instead of preloading workers, and the pool is never shut
    down.  Chunks go over the wire delta-encoded: in cumulative
    checkpoint mode consecutive checkpoints satisfy
    ``mem_k == mem_{k-1} | delta_k``, so only a chunk's first task ships
    its full overlay.
    """

    name = "process"
    pipelined = True

    def __init__(self, core, events: EventBus, external=None):
        super().__init__(core, events)
        self._external = external
        self._pool = None
        self._finalizer = None
        self._digest = program_wire_digest(core.original)
        self._boot_mem: Dict[int, int] = dict(core.original.memory)
        self._run_token = -1
        self._episode_seq = 0
        self._base_key: tuple = (-1, -1)
        self._base_delta: Dict[int, int] = {}

    @property
    def workers(self) -> int:
        return self.core.config.num_slaves

    def begin_run(self) -> None:
        self._run_token = next(_RUN_TOKENS)
        self._episode_seq = 0
        if self._external is not None:
            self._pool = self._external
        elif self._pool is None and not self.broken:
            self._pool = self._create_pool()
            if self._pool is None:
                self.mark_broken("worker pool failed to start")

    def _create_pool(self):
        """A :class:`_PipePool` preloaded with the program, or None.

        The worker processes are started from a background thread:
        submissions buffer in the pipes meanwhile, so the per-fork spawn
        cost overlaps master production instead of serializing in the
        dispatch path.
        """
        try:
            import threading

            pool = _PipePool(
                self.core.config.num_slaves, self._digest,
                self.core.original, tier=self.core.exec_tier,
            )
            threading.Thread(target=pool.start, daemon=True).start()
            self._finalizer = weakref.finalize(self, pool.shutdown)
            return pool
        except (ImportError, NotImplementedError, OSError, PermissionError):
            return None

    def begin_episode(self, arch: ArchState) -> None:
        self._base_key = (self._run_token, self._episode_seq)
        self._episode_seq += 1
        self._base_delta = self._episode_base_delta(arch)

    def _episode_base_delta(self, arch: ArchState) -> Dict[int, int]:
        """Memory changed since boot (value 0 encodes a deleted cell)."""
        boot = self._boot_mem
        delta: Dict[int, int] = {}
        current = as_dict(arch.mem)
        for address, value in current.items():
            if boot.get(address, 0) != value:
                delta[address] = value
        for address, value in boot.items():
            if value and address not in current:
                delta[address] = 0
        return delta

    def _encode_chunk(self, batch) -> tuple:
        """The picklable worker payload for one chunk of tasks."""
        core = self.core
        chained = core.config.checkpoint_mode == "cumulative"
        wire = []
        first = True
        for entry in batch:
            task = entry.task
            ckpt = task.checkpoint
            if not first and chained and entry.open_delta is not None:
                mem_full, mem_delta = None, entry.open_delta
            else:
                mem_full, mem_delta = ckpt.mem, None
            wire.append(
                (task.tid, task.start_pc, task.end_pc, task.end_arrivals,
                 ckpt.regs, mem_full, mem_delta)
            )
            first = False
        shipped = None if self._external is None else core.original
        return (
            self._digest, shipped, core.config.protected_regions,
            core.config.max_task_instrs, self._base_key, self._base_delta,
            wire, core.exec_tier,
        )

    def submit_chunk(self, batch) -> Optional[ChunkHandle]:
        if self.broken or self._pool is None:
            return None
        payload = self._encode_chunk(batch)
        pool = self._pool
        try:
            if isinstance(pool, _PipePool):
                ticket = pool.submit(payload)
                return ChunkHandle(lambda: pool.get(ticket))
            future = pool.submit(_execute_chunk, payload)
        except Exception:
            self.mark_broken("worker pool rejected a submission")
            return None
        return ChunkHandle(future.result, future.cancel)

    def close(self) -> None:
        """Shut down the executor's own pool (external pools stay up)."""
        if self._finalizer is not None:
            self._finalizer()
        self._pool = None


def create_executor(core, events: EventBus) -> SlaveExecutor:
    """The backend ``core.runtime`` names, bound to ``core``."""
    runtime = core.runtime
    if runtime == "thread":
        return ThreadExecutor(core, events)
    if runtime == "process":
        return ProcessExecutor(
            core, events, external=getattr(core, "_external_pool", None)
        )
    if runtime == "sim":
        # Deferred import: repro.sim depends on this module.
        from repro.sim.executor import SimExecutor

        return SimExecutor(core, events)
    return InlineExecutor(core, events)
