"""The unified MSSP runtime core.

One episode state machine (:class:`~repro.mssp.runtime.pipeline.TaskPipeline`),
pluggable slave-execution backends
(:mod:`~repro.mssp.runtime.executors`: inline / thread / process), and a
structured event seam (:mod:`~repro.mssp.runtime.events`).  Both public
engines (:class:`repro.mssp.engine.MsspEngine` and the deprecated
:class:`repro.mssp.parallel.ParallelMsspEngine` shell) are thin layers
over this package.
"""

from repro.mssp.runtime.events import (
    ChunkDispatched,
    EpisodeAccepted,
    EpisodeCompleted,
    EpisodeDispatched,
    EpisodeShed,
    EventBus,
    EventLog,
    JitDeopt,
    MasterFailed,
    PoolDegraded,
    RecoveryRun,
    ResultAdopted,
    RuntimeEvent,
    TaskCommitted,
    TaskExecuted,
    TaskForked,
    TaskSquashed,
)
from repro.mssp.runtime.executors import (
    RUNTIME_CHOICES,
    ChunkHandle,
    InlineExecutor,
    ProcessExecutor,
    SlaveExecutor,
    ThreadExecutor,
    create_executor,
    resolve_runtime,
)
from repro.mssp.runtime.pipeline import TaskPipeline

__all__ = [
    "RuntimeEvent",
    "TaskForked",
    "ChunkDispatched",
    "TaskExecuted",
    "ResultAdopted",
    "TaskCommitted",
    "TaskSquashed",
    "MasterFailed",
    "RecoveryRun",
    "JitDeopt",
    "PoolDegraded",
    "EpisodeAccepted",
    "EpisodeDispatched",
    "EpisodeCompleted",
    "EpisodeShed",
    "EventBus",
    "EventLog",
    "SlaveExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ChunkHandle",
    "create_executor",
    "resolve_runtime",
    "RUNTIME_CHOICES",
    "TaskPipeline",
]
