"""The structured runtime-event seam.

Every observable step of the task pipeline — forks, dispatches,
adoptions, judgements, recoveries, degradations — is announced as one
frozen :class:`RuntimeEvent` on the engine's :class:`EventBus`.  Trace
recording (:class:`repro.mssp.trace.TraceRecorder`), fault injection
(:func:`repro.mssp.faults.corrupt_live_in`), the runtime lint checks
(``RT001``/``RT002`` in :mod:`repro.analysis.checker`), and tests all
consume this one surface by subscription instead of each growing its own
hook into the engine.

Events carry *references* (records, tasks), not copies: a
``task_executed`` subscriber that mutates ``event.task`` changes what
the verify unit judges — that is the sanctioned fault-injection point,
deliberately placed after execution/adoption and before judgement so an
injection lands identically under every executor backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, ClassVar, List, Optional

__all__ = [
    "RuntimeEvent",
    "TaskForked",
    "ChunkDispatched",
    "TaskExecuted",
    "ResultAdopted",
    "TaskCommitted",
    "TaskSquashed",
    "LiveInPredicted",
    "Redistilled",
    "MasterFailed",
    "RecoveryRun",
    "JitDeopt",
    "PoolDegraded",
    "EpisodeAccepted",
    "EpisodeDispatched",
    "EpisodeCompleted",
    "EpisodeShed",
    "EventBus",
    "EventLog",
]


@dataclass(frozen=True)
class RuntimeEvent:
    """Base class; ``kind`` is the stable, documented discriminator.

    ``at`` and ``actor`` are *stamps*, not constructor fields: the
    emitting :class:`EventBus` writes them per instance (via
    ``object.__setattr__``, which frozen dataclasses without
    ``__slots__`` permit) the moment the event is published.  Keeping
    them out of the dataclass fields leaves every subclass constructor,
    equality, and repr unchanged while still guaranteeing that every
    emitted event carries a clock timestamp — the invariant the SIM001
    lint check audits.
    """

    kind: ClassVar[str] = "runtime-event"
    # Stamped by EventBus.emit; class-level defaults mean un-emitted
    # events read as t=0 from an anonymous actor.
    at = 0.0
    actor = ""


@dataclass(frozen=True)
class TaskForked(RuntimeEvent):
    """The master delimited a task (its end pc is now fixed)."""

    kind: ClassVar[str] = "task_forked"
    tid: int
    start_pc: int
    end_pc: Optional[int]
    exact: bool = False
    final: bool = False


@dataclass(frozen=True)
class ChunkDispatched(RuntimeEvent):
    """A batch of closed tasks was shipped to a pipelined executor."""

    kind: ClassVar[str] = "chunk_dispatched"
    executor: str
    first_tid: int
    last_tid: int
    n_tasks: int


@dataclass(frozen=True)
class TaskExecuted(RuntimeEvent):
    """A task holds its execution outcome and is about to be judged.

    Emitted for every judged task regardless of backend (adopted worker
    result or local execution).  ``task`` is the live, authoritative
    object — mutating it here alters what verification sees, which is
    the event seam's sanctioned fault-injection point.
    """

    kind: ClassVar[str] = "task_executed"
    task: object
    adopted: bool = False
    cost: float = 0.0  # measured wall-seconds spent executing the task


@dataclass(frozen=True)
class ResultAdopted(RuntimeEvent):
    """A worker result survived the staleness check verbatim."""

    kind: ClassVar[str] = "result_adopted"
    tid: int
    cost: float = 0.0  # measured wall-seconds the worker spent on it


@dataclass(frozen=True)
class TaskCommitted(RuntimeEvent):
    """Verification passed; live-outs were applied to architected state."""

    kind: ClassVar[str] = "task_committed"
    tid: int
    record: object  # TaskAttemptRecord


@dataclass(frozen=True)
class TaskSquashed(RuntimeEvent):
    """Verification failed; the episode's in-flight successors die.

    ``mismatched_regs`` names the register live-ins whose architected
    values disagreed with the checkpoint (empty for non-live-in squash
    reasons) — the evidence stream the
    :class:`~repro.mssp.redistill.Redistiller` maps back onto asserted
    branches whose suppressed paths write those registers.
    """

    kind: ClassVar[str] = "task_squashed"
    tid: int
    reason: str
    record: object  # TaskAttemptRecord
    mismatched_regs: tuple = ()


@dataclass(frozen=True)
class LiveInPredicted(RuntimeEvent):
    """The predictor bank patched a fork checkpoint's start image."""

    kind: ClassVar[str] = "live_in_predicted"
    tid: int
    anchor: int
    cells: tuple  # sorted register indices overridden


@dataclass(frozen=True)
class Redistilled(RuntimeEvent):
    """The engine hot-swapped a freshly re-distilled master.

    ``threshold`` is embedded so the RT003 lint check (every
    ``redistilled`` event preceded by ≥ threshold live-in squashes for
    ``region``) is self-contained on the event stream.
    """

    kind: ClassVar[str] = "redistilled"
    region: int          # hot fork anchor (original-program pc)
    misses: int          # live-in squashes accumulated for that region
    threshold: int       # configured redistill_threshold
    despecialized: int   # value_spec sites de-specialized this round
    deasserted: int      # asserted branches de-asserted this round
    generation: int      # 1-based count of swaps this run


@dataclass(frozen=True)
class MasterFailed(RuntimeEvent):
    """The master trapped/timed out; the open task was undelimited."""

    kind: ClassVar[str] = "master_failure"
    tid: int
    record: object  # MasterFailureRecord


@dataclass(frozen=True)
class RecoveryRun(RuntimeEvent):
    """One non-speculative recovery episode completed."""

    kind: ClassVar[str] = "recovery"
    record: object  # RecoveryRecord


@dataclass(frozen=True)
class JitDeopt(RuntimeEvent):
    """A locally executed task could not use superblocks end to end."""

    kind: ClassVar[str] = "jit_deopt"
    tid: int
    why: str


@dataclass(frozen=True)
class PoolDegraded(RuntimeEvent):
    """A pipelined executor broke (or never started); inline fallback."""

    kind: ClassVar[str] = "pool_degraded"
    executor: str
    why: str


@dataclass(frozen=True)
class EpisodeAccepted(RuntimeEvent):
    """The episode server admitted a tenant request (queued or direct).

    Every accepted request terminates in exactly one
    ``episode_completed`` or ``episode_shed`` — the pairing RT004
    audits.  ``digest`` is the request's program content digest, the
    key the cross-tenant warm caches share state under.
    """

    kind: ClassVar[str] = "episode_accepted"
    request_id: int
    digest: str
    tenant: str = "default"


@dataclass(frozen=True)
class EpisodeDispatched(RuntimeEvent):
    """The scheduler assigned an accepted request to a server worker.

    ``capacity`` is the worker's declared episode capacity, embedded so
    the RT004 lint check (no worker ever holds more dispatched-but-
    uncompleted episodes than its capacity) is self-contained on the
    event stream.  ``batched`` marks requests folded into a compatible
    in-service batch rather than routed by least-loaded dispatch.
    """

    kind: ClassVar[str] = "episode_dispatched"
    request_id: int
    worker: int
    capacity: int
    batched: bool = False


@dataclass(frozen=True)
class EpisodeCompleted(RuntimeEvent):
    """A dispatched episode finished (result or error) on ``worker``."""

    kind: ClassVar[str] = "episode_completed"
    request_id: int
    worker: int
    ok: bool = True


@dataclass(frozen=True)
class EpisodeShed(RuntimeEvent):
    """Admission control rejected an accepted request (ServerBusy)."""

    kind: ClassVar[str] = "episode_shed"
    request_id: int
    why: str = "queue-full"


class EventBus:
    """A minimal synchronous pub/sub fanout for runtime events.

    Subscribers are plain callables invoked in subscription order on the
    emitting thread; :meth:`subscribe` returns the matching unsubscribe
    callable.

    The bus is also the single place events acquire *time*: every
    emitted event is stamped with ``clock.now()`` (``at``) and, when the
    event doesn't already carry one, the bus's ``actor`` label.  The
    clock defaults to a :class:`~repro.timing.clock.WallClock`; engines
    running the ``sim`` backend inject a ``VirtualClock`` instead, so
    the same pipeline emits wall time or simulated time through one
    seam.
    """

    __slots__ = ("_subscribers", "clock", "actor", "_lock")

    def __init__(self, clock=None, actor: str = "runtime") -> None:
        if clock is None:
            # Deferred import: repro.timing imports the simulator, which
            # imports the engine, which imports this module.
            from repro.timing.clock import WallClock

            clock = WallClock()
        self.clock = clock
        self.actor = actor
        self._subscribers: List[Callable[[RuntimeEvent], None]] = []
        # Stamp-and-publish is atomic so a multi-threaded producer (the
        # episode server) cannot interleave a later stamp before an
        # earlier one in subscriber order — the per-actor monotonicity
        # SIM001 lints.  Re-entrant: a subscriber may emit.
        self._lock = threading.RLock()

    def subscribe(
        self, subscriber: Callable[[RuntimeEvent], None]
    ) -> Callable[[], None]:
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def emit(self, event: RuntimeEvent) -> None:
        # Stamp time (always) and actor (unless the producer set one).
        # Frozen dataclasses without __slots__ still honour
        # object.__setattr__, and the stamps are class-attribute
        # shadows, so equality and repr are untouched.
        with self._lock:
            object.__setattr__(event, "at", self.clock.now())
            if not event.actor:
                object.__setattr__(event, "actor", self.actor)
            for subscriber in self._subscribers:
                subscriber(event)


@dataclass
class EventLog:
    """A subscriber that simply collects every event, in order.

    The input shape ``repro lint``'s runtime checks
    (:func:`repro.analysis.checker.check_runtime_events`) consume.
    """

    events: List[RuntimeEvent] = field(default_factory=list)

    def __call__(self, event: RuntimeEvent) -> None:
        self.events.append(event)
