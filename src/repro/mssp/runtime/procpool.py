"""Worker-process substrate of the process executor.

This module is the *slave side* of the process backend: everything that
runs (or is pickled into) a worker process lives here, deliberately free
of any import of the engine layer so the runtime core
(:mod:`repro.mssp.runtime.executors`, :mod:`repro.mssp.runtime.pipeline`)
can build on it without cycles.

Workers keep two process-local caches: programs (and, via the global
decode cache, their decodings) keyed by content digest — so the program
ships once per worker, through the pool initializer, not once per task —
and per-episode base memory images keyed by (run token, episode).  The
token, unique per engine run within the parent process, keeps an
externally shared executor from resurrecting a previous run's episode
bases.
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
import time
from typing import Dict, List, Optional

from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.mssp.regions import ProtectedRegions
from repro.mssp.slave import execute_task
from repro.mssp.task import Checkpoint, Task, wire_result

__all__ = [
    "program_wire_digest",
    "_ChainMemory",
    "_PipePool",
    "_episode_base",
    "_execute_chunk",
    "_pipe_worker",
    "_worker_init",
    "_WORKER_BASES",
    "_WORKER_PROGRAMS",
    "_RUN_TOKENS",
]


def program_wire_digest(program: Program) -> bytes:
    """Content digest keying the per-worker program/decode cache."""
    hasher = hashlib.sha256()
    hasher.update(
        pickle.dumps(
            (program.code, tuple(sorted(program.memory.items())),
             program.entry),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    return hasher.digest()


_WORKER_PROGRAMS: Dict[bytes, Program] = {}
_WORKER_BASES: Dict[tuple, Dict[int, int]] = {}
_WORKER_BASE_LIMIT = 4

_RUN_TOKENS = itertools.count()


def _worker_init(
    digest: bytes, program: Program, tier: str = "decoded"
) -> None:
    """Pool initializer: preload + pre-decode the original program.

    Under the jit tier the worker also builds its
    :class:`~repro.machine.jit.JitProgram` up front, which replays any
    superblocks already in the persistent code cache — workers reuse
    compilations (typically the parent's) instead of re-JITting through
    their own warmup.
    """
    _WORKER_PROGRAMS[digest] = program
    _WORKER_BASES.clear()
    decode(program)
    if tier == "jit":
        from repro.machine.jit import jit_for

        jit_for(program, "view")


def _pipe_worker(
    conn, digest: bytes, program: Program, tier: str = "decoded"
) -> None:
    """Slave process main loop: execute chunks arriving on ``conn``.

    Messages are ``(chunk_id, payload)``; replies are
    ``(chunk_id, results)``.  ``None`` (or a closed pipe) shuts the
    worker down.  The chunk id is echoed so the engine can discard
    replies to chunks it stopped caring about (episode squash).
    """
    _worker_init(digest, program, tier)
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            chunk_id, payload = message
            conn.send((chunk_id, _execute_chunk(payload)))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _PipePool:
    """A minimal process pool over raw pipes, one per worker.

    ``ProcessPoolExecutor`` routes every submission and result through a
    manager thread plus a queue-feeder thread; with a busy main thread
    (master production + verify) each hop costs GIL handoffs that dwarf
    the actual (sub-millisecond) pickling work.  Here the main thread
    talks to each worker over its own duplex pipe directly: submission
    is one ``send``, retrieval one ``recv`` (which releases the GIL
    while blocking), and there are no auxiliary threads at all.

    Chunks are assigned round-robin; each worker processes its pipe in
    FIFO order, so consuming results in submission order per worker is a
    plain ``recv`` loop.  Stale replies (chunks abandoned on episode
    squash) are skipped by chunk id.
    """

    def __init__(
        self,
        num_workers: int,
        digest: bytes,
        program: Program,
        tier: str = "decoded",
    ):
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._conns = []
        self._procs = []
        self._next_worker = 0
        self._chunk_ids = itertools.count()
        self.num_workers = num_workers
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_pipe_worker,
                args=(child_conn, digest, program, tier),
                daemon=True,
            )
            self._conns.append(parent_conn)
            self._procs.append((proc, child_conn))

    def start(self) -> None:
        """Start the worker processes (run from a background thread:
        submissions buffer in the pipes until workers come up, so the
        ~10ms-per-fork spawn cost overlaps master production)."""
        for proc, child_conn in self._procs:
            proc.start()
            # The child inherited its end; drop the parent's duplicate
            # so a dead worker surfaces as EOF instead of a hang.
            child_conn.close()

    def submit(self, payload: tuple):
        """Ship one chunk; returns an opaque ticket for :meth:`get`."""
        worker = self._next_worker
        self._next_worker = (worker + 1) % self.num_workers
        chunk_id = next(self._chunk_ids)
        self._conns[worker].send((chunk_id, payload))
        return (worker, chunk_id)

    def get(self, ticket) -> List[tuple]:
        """Block for one chunk's results, discarding stale replies."""
        worker, chunk_id = ticket
        conn = self._conns[worker]
        while True:
            got_id, results = conn.recv()
            if got_id == chunk_id:
                return results
            # else: a reply for an episode-squashed chunk; drop it.

    def shutdown(self, wait: bool = False, cancel_futures: bool = False):
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc, _ in self._procs:
            proc.join(timeout=0.5 if wait else 0.05)
            if proc.is_alive():
                proc.terminate()
        for proc, _ in self._procs:
            if not proc.is_alive():
                proc.join(timeout=0.1)


class _ChainMemory:
    """Architected-memory stand-in for one chunk's optimistic chain.

    ``overlay`` accumulates the live-outs of the chunk's earlier tasks
    (their would-be commits); ``base`` is the episode-start memory
    image.  Mirrors :meth:`ArchState.load`: absent cells read as zero.
    Only :meth:`load` is required — slave execution never stores through
    its architected-state handle.
    """

    __slots__ = ("overlay", "base")

    def __init__(self, base: Dict[int, int]):
        self.overlay: Dict[int, int] = {}
        self.base = base

    def load(self, address: int) -> int:
        value = self.overlay.get(address)
        if value is not None:
            return value
        return self.base.get(address, 0)

    def apply(self, mem_writes: Dict[int, int]) -> None:
        self.overlay.update(mem_writes)


def _episode_base(
    key: tuple, base_delta: Dict[int, int], program: Program
) -> Dict[int, int]:
    """The episode-start memory image (boot image + commit delta)."""
    base = _WORKER_BASES.get(key)
    if base is None:
        base = dict(program.memory)
        for address, value in base_delta.items():
            if value:
                base[address] = value
            else:  # a boot-image cell the machine has since zeroed
                base.pop(address, None)
        while len(_WORKER_BASES) >= _WORKER_BASE_LIMIT:
            _WORKER_BASES.pop(next(iter(_WORKER_BASES)))
        _WORKER_BASES[key] = base
    return base


def _execute_chunk(payload: tuple) -> List[tuple]:
    """Execute one chunk of consecutive tasks; the pool worker entry.

    ``payload`` is built by
    :meth:`repro.mssp.runtime.executors.ProcessExecutor._encode_chunk`.
    Returns one result tuple per executed task.  Execution stops early
    when a task faults/overruns/aborts on a protected access: in-order
    verification squashes such a task unconditionally, ending the
    episode, so its successors can never be consumed (and if the abort
    was itself an artifact of stale reads, the missing results simply
    fall back to local re-execution).
    """
    (digest, shipped_program, regions_ranges, max_task_instrs,
     base_key, base_delta, wire_tasks, tier) = payload
    program = _WORKER_PROGRAMS.get(digest)
    if program is None:
        if shipped_program is None:  # pragma: no cover - defensive
            raise RuntimeError("worker received no program for digest")
        program = shipped_program
        _WORKER_PROGRAMS[digest] = program
    regions = ProtectedRegions.from_config(regions_ranges)
    chain = _ChainMemory(_episode_base(base_key, base_delta, program))
    results: List[tuple] = []
    prev_mem: Optional[Dict[int, int]] = None
    for (tid, start_pc, end_pc, end_arrivals, regs,
         mem_full, mem_delta) in wire_tasks:
        if mem_full is not None:
            ckpt_mem = mem_full
        else:  # cumulative chain: mem_k == mem_{k-1} | delta_k
            ckpt_mem = {**prev_mem, **mem_delta}
        prev_mem = ckpt_mem
        task = Task(
            tid=tid, start_pc=start_pc,
            checkpoint=Checkpoint(regs=regs, mem=ckpt_mem),
            end_pc=end_pc, end_arrivals=end_arrivals,
        )
        t0 = time.perf_counter()
        execute_task(
            program, task, chain, max_task_instrs, regions=regions, tier=tier
        )
        task.exec_seconds = time.perf_counter() - t0
        results.append(wire_result(task))
        if task.faulted or task.overrun or task.protected_access:
            break
        chain.apply(task.live_out_mem)
    return results
