"""The MSSP engine: orchestrates master, slaves, and verify/commit.

This is the functional model of the whole machine.  The episode state
machine itself lives in the runtime core
(:class:`repro.mssp.runtime.pipeline.TaskPipeline`); this module owns
what surrounds it — the restart/recovery loop, the verify/commit
decisions, and the result assembly — plus the engine's executor backend
(:mod:`repro.mssp.runtime.executors`), selected by
``MsspConfig.runtime``:

* ``"eager"`` executes every task inline in commit order (the
  functional reference model);
* ``"thread"`` overlaps slave chunks on an in-process thread pool;
* ``"process"`` overlaps them on forked worker processes.

All three are behaviourally equivalent to the concurrent machine —
and bit-identical to one another — because (a) commits are in order,
(b) slaves never write architected state, and (c) verification outcomes
depend only on architected state at commit time, not on when slaves
physically ran.  The timing model (:mod:`repro.timing`) replays the
resulting trace to recover the concurrency.

One *episode* = one master (re)start:

1. the master is reseeded from architected state at the pc-map resume
   point, and an *exact* task (perfect checkpoint) is opened at the
   current architected pc;
2. each master fork closes the open task (fixing its end pc) and opens
   the next one with the fork's checkpoint; the closed task is executed
   by a slave and then verified in order;
3. a verification failure, master trap/timeout, or slave overrun squashes
   the rest of the episode; a *recovery* then executes the original
   program non-speculatively from architected state to the next anchor
   (or halt), after which the next episode begins.

Forward progress is unconditional: every recovery advances architected
state by at least one instruction, and committed tasks only ever advance
it, so arbitrary master misbehaviour degrades performance, never
correctness or termination.

Everything observable along the way is announced on the engine's
:class:`~repro.mssp.runtime.events.EventBus`;
:attr:`MsspResult.records` is itself rebuilt from those events by a
:class:`~repro.mssp.trace.TraceRecorder` subscription.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.analysis.specsafe import SafetyReport, prove_safety
from repro.config import MsspConfig
from repro.errors import CheckFailure
from repro.distill.distiller import DistillationResult
from repro.distill.pc_map import PcMap
from repro.errors import InvalidPcError, MsspError, StepLimitExceeded
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.flatmem import PagedMemory, resolve_mem_backend
from repro.machine.interpreter import run_to_halt
from repro.machine.jit import EXIT_HALT, EXIT_STOP, jit_for, resolve_exec_tier
from repro.machine.state import ArchState
from repro.mssp.master import Master, MasterEvent
from repro.mssp.regions import DeviceAccess, ProtectedRegions
from repro.mssp.runtime.events import (
    EventBus,
    MasterFailed,
    RecoveryRun,
    Redistilled,
    TaskCommitted,
    TaskSquashed,
)
from repro.mssp.runtime.executors import create_executor, resolve_runtime
from repro.mssp.runtime.pipeline import TaskPipeline
from repro.mssp.task import SquashReason, Task
from repro.mssp.trace import (
    DispatchStats,
    MasterFailureRecord,
    MsspCounters,
    RecoveryRecord,
    TaskAttemptRecord,
    TraceRecord,
    TraceRecorder,
)
from repro.mssp.verify import (
    CellVersions,
    commit_task,
    squash_task,
    verify_task,
)


@dataclass
class MsspResult:
    """Everything one MSSP run produced."""

    final_state: ArchState
    halted: bool
    records: List[TraceRecord] = field(default_factory=list)
    counters: MsspCounters = field(default_factory=MsspCounters)
    #: Ordered non-speculative accesses to protected regions (the
    #: machine's externally visible I/O sequence).
    device_trace: List[DeviceAccess] = field(default_factory=list)

    @property
    def task_records(self) -> List[TaskAttemptRecord]:
        return [r for r in self.records if isinstance(r, TaskAttemptRecord)]

    @property
    def recovery_records(self) -> List[RecoveryRecord]:
        return [r for r in self.records if isinstance(r, RecoveryRecord)]


class MsspEngine:
    """Functional simulator of one MSSP machine running one program."""

    def __init__(
        self,
        original: Program,
        distillation: Union[DistillationResult, tuple],
        config: Optional[MsspConfig] = None,
        safety_report=None,
        clock=None,
        cost_model=None,
    ):
        if isinstance(distillation, DistillationResult):
            distilled, pc_map = distillation.distilled, distillation.pc_map
        else:
            distilled, pc_map = distillation
        if not isinstance(pc_map, PcMap):
            raise MsspError("second element of distillation must be a PcMap")
        self.original = original
        self.distilled = distilled
        self.pc_map = pc_map
        self.config = config or MsspConfig()
        #: Full distillation artifact when one was provided (the adaptive
        #: re-distillation loop needs its pass statistics); swapped by
        #: :meth:`_install_distillation`, with the construction-time
        #: artifact kept so repeated runs start identically.
        self._distillation: Optional[DistillationResult] = (
            distillation if isinstance(distillation, DistillationResult)
            else None
        )
        self._initial_distillation = self._distillation
        #: Live-in value predictor bank (:mod:`repro.mssp.predict`);
        #: rebuilt fresh at each :meth:`run` so repeated runs are
        #: identical.  ``None`` when ``config.predictors == "off"``.
        self.predictor = None
        #: Squash-driven re-distiller, armed by :meth:`enable_adaptation`.
        self.redistiller = None
        #: Execution tier for master, slaves and recovery (config beats
        #: the ``REPRO_EXEC`` environment variable; default decoded).
        self.exec_tier = resolve_exec_tier(self.config.exec_tier)
        #: Architected-memory backend (config beats the ``REPRO_MEM``
        #: environment variable; default dict).  Bit-identical results
        #: across backends; ``check`` runs dict and flat in lockstep.
        self.mem_backend = resolve_mem_backend(self.config.mem_backend)
        self._decoded_original = decode(
            original, oracle=self.exec_tier == "oracle"
        )
        self.regions = ProtectedRegions.from_config(
            self.config.protected_regions
        )
        # Superblocks for the recovery loop.  Only sound when no
        # protected regions exist (device accesses need per-step
        # effects) and every anchor is a block leader (superblocks check
        # stop pcs at leaders only); otherwise recovery deopts to the
        # per-step decoded path.
        self._jit_recover = None
        if self.exec_tier == "jit" and self.regions is None:
            candidate = jit_for(original)
            if self.pc_map.anchors <= candidate.leaders:
                self._jit_recover = candidate
        #: Write-version stamps over architected memory, driving the
        #: verify fast path (re-created per run; see repro.mssp.verify).
        self._versions = CellVersions()
        #: Resolved executor backend name: eager, thread or process
        #: (config beats the ``REPRO_RUNTIME`` environment variable;
        #: default eager; ``"parallel"`` is a deprecated process alias).
        self.runtime = resolve_runtime(self.config.runtime)
        #: The engine's one time source.  Wall time by default; the
        #: ``sim`` backend defaults to a :class:`VirtualClock` the
        #: executor advances as it prices simulated work.  Injected
        #: clocks win, so tests and the cluster simulator can drive
        #: time themselves.
        if clock is None:
            from repro.timing.clock import VirtualClock, WallClock

            clock = VirtualClock() if self.runtime == "sim" else WallClock()
        self.clock = clock
        #: Cost model pricing simulated work (``sim`` runtime only;
        #: ``None`` means the SimExecutor's default pricing).
        self.cost_model = cost_model
        #: Structured runtime-event seam.  Subscribe any callable to
        #: observe forks, dispatches, judgements, squashes, recoveries,
        #: jit deopts and pool degradations as they happen.  Every event
        #: it emits is stamped with ``self.clock.now()``.
        self.events = EventBus(clock=self.clock)
        #: Routing statistics of the most recent run (the same object as
        #: that run's ``result.counters.dispatch``).
        self.dispatch_stats = DispatchStats()
        self._executor = None
        #: Static speculation-safety report driving the verify register
        #: fast path (``config.static_safety``).  Computed here unless
        #: injected (tests inject fabricated reports to prove the
        #: ``check``-mode escalation fires); ``"off"`` skips the prover
        #: entirely.  The prover never raises — unprovable or unaligned
        #: artifacts yield a bailed, all-UNPROVEN report, which makes
        #: verify behave exactly as it did without the analysis.
        if safety_report is not None:
            self.safety_report = safety_report
        elif self.config.static_safety == "off":
            self.safety_report = SafetyReport()
        else:
            self.safety_report = prove_safety(original, distilled, pc_map)
        self._allowed_squash_reasons: Optional[frozenset] = None
        if self.config.assert_static_soundness:
            if not isinstance(distillation, DistillationResult):
                raise MsspError(
                    "assert_static_soundness needs a DistillationResult "
                    "(its pass statistics predict the legal squash causes)"
                )
            from repro.analysis.checker import predicted_squash_reasons

            self._allowed_squash_reasons = predicted_squash_reasons(
                distillation
            )

    # -- public API ---------------------------------------------------------------

    def run(self) -> MsspResult:
        """Execute the program under MSSP to completion."""
        arch = ArchState.initial(self.original, backend=self.mem_backend)
        self._versions = CellVersions()
        # Fresh adaptive state per run, so repeated runs of one engine
        # are identical: a new predictor bank, a reset redistiller, and
        # the construction-time artifact if a prior run hot-swapped it.
        self.predictor = self._make_predictor()
        redistiller = self.redistiller
        if redistiller is not None:
            redistiller.reset()
            if (
                self._initial_distillation is not None
                and self._distillation is not self._initial_distillation
            ):
                self._install_distillation(self._initial_distillation)
        master = self._build_master()
        counters = MsspCounters()
        self.dispatch_stats = counters.dispatch
        device_trace: List[DeviceAccess] = []
        recent_outcomes: deque = deque(maxlen=self.config.throttle_window)
        next_tid = 0
        halted = False

        executor = self._executor
        if executor is None:
            executor = self._executor = self._make_executor()
        executor.begin_run()
        pipeline = TaskPipeline(self, executor, self.events)
        recorder = TraceRecorder()
        unsubscribe = self.events.subscribe(recorder)
        try:
            while not halted:
                # Adaptive hot swap, strictly between episodes (so never
                # under an in-flight speculation): if squash evidence
                # crossed the threshold, re-distill and replace the
                # master with every dependent cache invalidated.
                if redistiller is not None:
                    swap = redistiller.maybe_redistill(arch)
                    if swap is not None:
                        region, misses, result, delta = swap
                        self._install_distillation(result)
                        master = self._build_master()
                        counters.redistillations += 1
                        self.events.emit(Redistilled(
                            region=region,
                            misses=misses,
                            threshold=redistiller.threshold,
                            despecialized=len(delta.despecialized),
                            deasserted=len(delta.deasserted),
                            generation=redistiller.generation,
                        ))
                if not self.pc_map.is_anchor(arch.pc):
                    # The machine is at a pc the master cannot restart
                    # from (possible only with a malformed map, e.g. a
                    # fork whose target never got a map entry).
                    # Sequential execution to the next anchor is always
                    # a safe fallback.
                    recovery = self._recover(arch, counters, device_trace)
                    halted = recovery.halted
                    continue
                master.restart(arch, self.pc_map.resume_pc(arch.pc))
                counters.restarts += 1
                if self.predictor is not None:
                    # Freeze this episode's override snapshot: training
                    # continues at every judge, but what forks see is
                    # fixed here, identically for every backend.
                    self.predictor.begin_episode()
                halted, next_tid = pipeline.run_episode(
                    arch, master, counters, recent_outcomes, next_tid
                )
                if halted:
                    break
                # Episode failed: recover non-speculatively, then
                # restart.  Persistent misspeculation triggers dual-mode
                # throttling: a long sequential stretch before
                # speculation is retried.
                min_instrs = 0
                threshold = self.config.throttle_threshold
                if (
                    threshold is not None
                    and len(recent_outcomes) == recent_outcomes.maxlen
                ):
                    failures = sum(1 for ok in recent_outcomes if not ok)
                    if failures / len(recent_outcomes) >= threshold:
                        min_instrs = self.config.throttle_chunk
                        counters.throttle_episodes += 1
                        recent_outcomes.clear()
                recovery = self._recover(
                    arch, counters, device_trace, min_instrs=min_instrs
                )
                if recovery.halted:
                    halted = True
        finally:
            unsubscribe()

        return MsspResult(
            final_state=arch, halted=True, records=recorder.records,
            counters=counters, device_trace=device_trace,
        )

    def run_and_check(self) -> MsspResult:
        """Run MSSP, then assert equivalence with sequential execution."""
        result = self.run()
        reference = run_to_halt(
            self.original, max_steps=self.config.max_total_instrs
        )
        differences = result.final_state.diff(reference.state)
        if differences:
            raise MsspError(
                "MSSP final state diverged from SEQ: " + "; ".join(differences)
            )
        return result

    def enable_adaptation(self, profile, distill_config=None, threshold=None):
        """Arm the squash-driven re-distillation loop.

        ``profile`` is the training profile distillation started from
        (observed counterexamples are folded into it);
        ``distill_config`` defaults to the distiller's own defaults;
        ``threshold`` defaults to ``config.redistill_threshold``.
        Returns the armed :class:`~repro.mssp.redistill.Redistiller`,
        or ``None`` when no threshold is configured anywhere (the loop
        stays off).  Requires the engine to have been built from a full
        :class:`DistillationResult` — re-distillation reads its pass
        statistics to know which speculative bets to revisit.
        """
        if threshold is None and self.config.redistill_threshold is None:
            return None
        if self._distillation is None:
            raise MsspError(
                "adaptation needs a full DistillationResult (its pass "
                "statistics identify the distiller's speculative bets)"
            )
        from repro.mssp.redistill import Redistiller

        if self.redistiller is not None:
            self.redistiller.close()
        self.redistiller = Redistiller(
            self, profile, distill_config=distill_config,
            threshold=threshold,
        )
        return self.redistiller

    def close(self) -> None:
        """Release the executor backend (worker processes/threads).

        Idempotent; a closed engine rebuilds the backend lazily if run
        again.  ``with create_engine(...) as engine:`` closes for you.
        """
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.close()
        if self.redistiller is not None:
            self.redistiller.close()
            self.redistiller = None

    def __enter__(self) -> "MsspEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------------------

    def static_proven_regs(self, start_pc: int) -> frozenset:
        """Registers verify may skip for tasks anchored at ``start_pc``."""
        if self.config.static_safety == "off":
            return frozenset()
        return self.safety_report.proven_for(start_pc)

    def _make_predictor(self):
        """A fresh predictor bank for one run (None when disabled)."""
        if self.config.predictors == "off":
            return None
        from repro.mssp.predict import ValuePredictorBank

        bank = ValuePredictorBank(
            kind=self.config.predictors,
            confidence=self.config.predict_confidence,
            miss_gate=self.config.predict_miss_gate,
        )
        bank.retarget(
            self.pc_map.anchors,
            self.safety_report if self.config.static_safety != "off"
            else None,
        )
        return bank

    def _build_master(self) -> Master:
        """A master over the *current* distilled artifact."""
        return Master(
            self.distilled, self.config,
            arrival_pcs=self.pc_map.arrival_pcs(),
            jr_table=self.pc_map.jr_table,
            tier=self.exec_tier,
        )

    def _install_distillation(self, result: DistillationResult) -> None:
        """Hot-swap the distilled artifact, coherently.

        Everything derived from the old distilled program / pc map is
        rebuilt or invalidated here: the recovery superblock cache, the
        safety report (and with it the verify fast path and the per-task
        proven sets), the statically allowed squash causes, the memory
        version stamps (bulk invalidation — the cheap, always-sound
        option), and the predictor bank's targets (whose master-miss
        streaks reset: the old master's miss history says nothing about
        the new master).  The caller rebuilds the Master itself.
        """
        self._distillation = result
        self.distilled = result.distilled
        self.pc_map = result.pc_map
        self._jit_recover = None
        if self.exec_tier == "jit" and self.regions is None:
            candidate = jit_for(self.original)
            if self.pc_map.anchors <= candidate.leaders:
                self._jit_recover = candidate
        if self.config.static_safety == "off":
            self.safety_report = SafetyReport()
        else:
            self.safety_report = prove_safety(
                self.original, self.distilled, self.pc_map
            )
        if self._allowed_squash_reasons is not None:
            from repro.analysis.checker import predicted_squash_reasons

            self._allowed_squash_reasons = predicted_squash_reasons(result)
        self._versions.invalidate_all()
        if self.predictor is not None:
            self.predictor.retarget(
                self.pc_map.anchors,
                self.safety_report if self.config.static_safety != "off"
                else None,
            )

    def _make_executor(self):
        """Build the executor backend ``self.runtime`` names.

        Subclasses override this (not the episode loop) to supply a
        custom backend; the pipeline and all verify/commit decisions
        (:meth:`_judge_task`) are shared, which is what keeps every
        backend bit-identical.
        """
        return create_executor(self, self.events)

    def _record_master_failure(
        self,
        task: Task,
        event: MasterEvent,
        counters: MsspCounters,
    ) -> None:
        """Account a terminal TRAP/TIMEOUT: the open task is undelimited."""
        counters.master_failures += 1
        record = MasterFailureRecord(
            kind=event.kind.value, master_instrs=event.instrs
        )
        squash_task(task, SquashReason.MASTER_TIMEOUT)
        self._assert_predicted(SquashReason.MASTER_TIMEOUT, None)
        counters.tasks_squashed += 1
        counters.note_squash_reason(SquashReason.MASTER_TIMEOUT.value)
        self.events.emit(MasterFailed(tid=task.tid, record=record))

    def _judge_task(
        self,
        task: Task,
        event: MasterEvent,
        arch: ArchState,
        counters: MsspCounters,
    ) -> tuple:
        """Verify + (maybe) commit one already-executed task.

        This is the in-order verify/commit stage every backend shares:
        it is the only code that writes architected state, announces
        task records, or bumps task counters, so any execution strategy
        that feeds it identical task objects in identical order produces
        an identical :class:`MsspResult`.  Returns
        ``(committed, machine_halted)``.
        """
        outcome = verify_task(
            task, arch, versions=self._versions,
            safety_mode=self.config.static_safety,
        )
        counters.live_ins_checked += outcome.checked
        counters.live_ins_mismatched += outcome.mismatched
        counters.static_verify_skips += outcome.static_skips
        if outcome.proven_mismatch:
            # ``check`` mode found a statically PROVEN register whose
            # prediction was wrong: the safety analysis is unsound for
            # this artifact.  This must never be recovered from — it is
            # the strongest differential oracle the prover has.
            raise CheckFailure(
                f"statically PROVEN live-in mismatched at anchor "
                f"{task.start_pc}: {outcome.detail}"
            )
        if task.exact:
            counters.exact_tasks += 1
        bank = self.predictor
        if (
            bank is not None
            and not task.exact
            and task.start_pc == arch.pc
        ):
            # Train the bank from architected truth at the anchor (arch
            # has not moved yet: commit applies live-outs below).  The
            # judge is the one stage every backend passes through in the
            # same order, so training — and therefore every later
            # override — is bit-identical across runtimes.
            hits, misses = bank.observe_task(task, arch)
            counters.predictor_hits += hits
            counters.predictor_misses += misses
        record = TaskAttemptRecord(
            tid=task.tid,
            start_pc=task.start_pc,
            end_pc=task.end_pc,
            n_instrs=task.n_instrs,
            master_instrs=event.instrs,
            committed=outcome.ok,
            n_loads=task.n_loads,
            master_loads=event.loads,
            squash_reason=outcome.reason.value,
            origin_pc=outcome.origin_pc,
            live_ins_checked=outcome.checked,
            live_ins_mismatched=outcome.mismatched,
            exact=task.exact,
            final=task.final,
            halted=task.halted,
            checkpoint_words=len(task.checkpoint),
        )
        if outcome.ok:
            commit_task(task, arch)
            self._versions.stamp_commit(task.live_out_mem)
            counters.tasks_committed += 1
            counters.committed_instrs += task.n_instrs
            self.events.emit(TaskCommitted(tid=task.tid, record=record))
            return True, task.halted
        squash_task(task, outcome.reason)
        self._assert_predicted(outcome.reason, outcome.origin_pc)
        counters.tasks_squashed += 1
        counters.squashed_instrs += task.n_instrs
        counters.note_squash_reason(outcome.reason.value)
        mismatched_regs: tuple = ()
        if task.start_pc == arch.pc:
            # Redistillation evidence: which register live-ins actually
            # disagreed with architected truth (the slave recorded the
            # value it read, so compare those against arch directly).
            regs = arch.regs
            mismatched_regs = tuple(
                r for r, value in sorted(task.live_in_regs.items())
                if value != regs[r]
            )
        self.events.emit(TaskSquashed(
            tid=task.tid, reason=outcome.reason.value, record=record,
            mismatched_regs=mismatched_regs,
        ))
        return False, False

    def _recover(
        self,
        arch: ArchState,
        counters: MsspCounters,
        device_trace: List[DeviceAccess],
        min_instrs: int = 0,
    ) -> RecoveryRecord:
        """Execute the original program non-speculatively from ``arch``.

        Stops at the first arrival (after at least one instruction) at an
        anchor the master can restart from, or at ``halt``.  Architected
        state is advanced directly — this is ordinary sequential
        execution, exactly the paper's fallback path — and it is the only
        path allowed to touch protected regions, so device accesses are
        logged here, in program order, exactly once each.
        """
        anchors = self.pc_map.anchors
        regions = self.regions
        decoded = self._decoded_original
        steppers = decoded.steppers
        size = decoded.size
        steps = 0
        loads = 0
        halted = False
        budget = self.config.max_total_instrs - counters.total_instrs
        jp = self._jit_recover
        flat = isinstance(arch.mem, PagedMemory)
        # Superblocks may run only while every bound stays unreachable
        # within one region body; the per-step loop below handles the
        # boundaries (anchor stops and budget raises fire at exactly the
        # per-step instruction counts).
        cap = min(budget, max(min_instrs, self.config.recovery_max_instrs))
        while True:
            pc = arch.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            if jp is not None:
                region = jp.region_for(pc)
                if region is not None and steps + region.linear_len < cap:
                    steps, loads, _arrivals, status = region.select(flat)(
                        arch, steps, loads, cap, None, 0,
                        anchors, min_instrs,
                    )
                    if status == EXIT_HALT:
                        halted = True
                        break
                    if status == EXIT_STOP:
                        break
                    continue  # EXIT_RUN: pc synced; retry dispatch there.
            effect = steppers[pc](arch)
            if effect.halted:
                halted = True
                break
            steps += 1
            if effect.mem_addr is not None and not effect.is_store:
                loads += 1
            if (
                regions is not None
                and effect.mem_addr is not None
                and effect.mem_addr in regions
            ):
                device_trace.append(
                    DeviceAccess(
                        pc=pc, address=effect.mem_addr,
                        value=effect.mem_value, is_store=effect.is_store,
                    )
                )
                counters.device_accesses += 1
            if steps >= min_instrs and arch.pc in anchors:
                break
            if steps >= budget:
                raise StepLimitExceeded(self.config.max_total_instrs)
            if steps >= max(min_instrs, self.config.recovery_max_instrs):
                # Episode cap: hand control back; the engine will start
                # another recovery episode if no anchor was reached.
                break
        # Recovery wrote architected cells without itemizing them:
        # invalidate every version stamp at once.
        self._versions.invalidate_all()
        counters.recovery_instrs += steps
        counters.recovery_episodes += 1
        record = RecoveryRecord(
            n_instrs=steps, halted=halted,
            resumed_at=None if halted else arch.pc,
            n_loads=loads,
        )
        self.events.emit(RecoveryRun(record=record))
        return record

    def _assert_predicted(
        self, reason: SquashReason, origin_pc: Optional[int]
    ) -> None:
        """Cross-check a squash cause against the static prediction.

        Active only under ``config.assert_static_soundness``: a squash
        whose cause no distiller pass statistic can account for means
        either the distillation pipeline or the checker's model of it is
        wrong, so fail loudly instead of silently recovering.
        """
        allowed = self._allowed_squash_reasons
        if allowed is None or reason.value in allowed:
            return
        where = f" (origin pc {origin_pc})" if origin_pc is not None else ""
        raise MsspError(
            f"statically unpredicted squash cause {reason.value!r}{where}: "
            f"pass statistics only license {sorted(allowed)}"
        )

    def _check_budget(self, counters: MsspCounters) -> None:
        if counters.total_instrs > self.config.max_total_instrs:
            raise StepLimitExceeded(self.config.max_total_instrs)


def create_engine(
    original: Program,
    distillation: Union[DistillationResult, tuple],
    config: Optional[MsspConfig] = None,
    clock=None,
    cost_model=None,
) -> MsspEngine:
    """Build an engine for ``config.runtime``: eager, thread, process
    or sim.

    Every runtime is the same :class:`MsspEngine` over a different
    executor backend (``"parallel"`` is a deprecated alias of
    ``"process"``).  Pipelined backends hold worker threads/processes:
    close the engine when done — ``with create_engine(...) as engine:``
    — or rely on garbage collection's finalizers as a backstop.
    """
    return MsspEngine(
        original, distillation, config=config,
        clock=clock, cost_model=cost_model,
    )


def run_mssp(
    original: Program,
    distillation: DistillationResult,
    config: Optional[MsspConfig] = None,
) -> MsspResult:
    """Convenience wrapper: build an engine, run it, release its workers."""
    with create_engine(original, distillation, config=config) as engine:
        return engine.run()
