"""The MSSP engine: orchestrates master, slaves, and verify/commit.

This is the functional model of the whole machine.  It executes tasks
eagerly in commit order — which is behaviourally equivalent to the
concurrent machine because (a) commits are in order, (b) slaves never
write architected state, and (c) verification outcomes depend only on
architected state at commit time, not on when slaves physically ran.
The timing model (:mod:`repro.timing`) replays the resulting trace to
recover the concurrency.

One *episode* = one master (re)start:

1. the master is reseeded from architected state at the pc-map resume
   point, and an *exact* task (perfect checkpoint) is opened at the
   current architected pc;
2. each master fork closes the open task (fixing its end pc) and opens
   the next one with the fork's checkpoint; the closed task is executed
   by a slave and then verified in order;
3. a verification failure, master trap/timeout, or slave overrun squashes
   the rest of the episode; a *recovery* then executes the original
   program non-speculatively from architected state to the next anchor
   (or halt), after which the next episode begins.

Forward progress is unconditional: every recovery advances architected
state by at least one instruction, and committed tasks only ever advance
it, so arbitrary master misbehaviour degrades performance, never
correctness or termination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.config import MsspConfig
from repro.distill.distiller import DistillationResult
from repro.distill.pc_map import PcMap
from repro.errors import InvalidPcError, MsspError, StepLimitExceeded
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.interpreter import run_to_halt
from repro.machine.jit import EXIT_HALT, EXIT_STOP, jit_for, resolve_exec_tier
from repro.machine.state import ArchState
from repro.mssp.master import Master, MasterEvent, MasterEventKind
from repro.mssp.regions import DeviceAccess, ProtectedRegions
from repro.mssp.slave import execute_task
from repro.mssp.task import Checkpoint, SquashReason, Task, TaskStatus
from repro.mssp.trace import (
    MasterFailureRecord,
    MsspCounters,
    RecoveryRecord,
    TaskAttemptRecord,
    TraceRecord,
)
from repro.mssp.verify import (
    CellVersions,
    commit_task,
    squash_task,
    verify_task,
)


@dataclass
class MsspResult:
    """Everything one MSSP run produced."""

    final_state: ArchState
    halted: bool
    records: List[TraceRecord] = field(default_factory=list)
    counters: MsspCounters = field(default_factory=MsspCounters)
    #: Ordered non-speculative accesses to protected regions (the
    #: machine's externally visible I/O sequence).
    device_trace: List[DeviceAccess] = field(default_factory=list)

    @property
    def task_records(self) -> List[TaskAttemptRecord]:
        return [r for r in self.records if isinstance(r, TaskAttemptRecord)]

    @property
    def recovery_records(self) -> List[RecoveryRecord]:
        return [r for r in self.records if isinstance(r, RecoveryRecord)]


class MsspEngine:
    """Functional simulator of one MSSP machine running one program."""

    def __init__(
        self,
        original: Program,
        distillation: Union[DistillationResult, tuple],
        config: Optional[MsspConfig] = None,
    ):
        if isinstance(distillation, DistillationResult):
            distilled, pc_map = distillation.distilled, distillation.pc_map
        else:
            distilled, pc_map = distillation
        if not isinstance(pc_map, PcMap):
            raise MsspError("second element of distillation must be a PcMap")
        self.original = original
        self.distilled = distilled
        self.pc_map = pc_map
        self.config = config or MsspConfig()
        #: Execution tier for master, slaves and recovery (config beats
        #: the ``REPRO_EXEC`` environment variable; default decoded).
        self.exec_tier = resolve_exec_tier(self.config.exec_tier)
        self._decoded_original = decode(
            original, oracle=self.exec_tier == "oracle"
        )
        self.regions = ProtectedRegions.from_config(
            self.config.protected_regions
        )
        # Superblocks for the recovery loop.  Only sound when no
        # protected regions exist (device accesses need per-step
        # effects) and every anchor is a block leader (superblocks check
        # stop pcs at leaders only); otherwise recovery deopts to the
        # per-step decoded path.
        self._jit_recover = None
        if self.exec_tier == "jit" and self.regions is None:
            candidate = jit_for(original)
            if self.pc_map.anchors <= candidate.leaders:
                self._jit_recover = candidate
        #: Write-version stamps over architected memory, driving the
        #: verify fast path (re-created per run; see repro.mssp.verify).
        self._versions = CellVersions()
        self._allowed_squash_reasons: Optional[frozenset] = None
        if self.config.assert_static_soundness:
            if not isinstance(distillation, DistillationResult):
                raise MsspError(
                    "assert_static_soundness needs a DistillationResult "
                    "(its pass statistics predict the legal squash causes)"
                )
            from repro.analysis.checker import predicted_squash_reasons

            self._allowed_squash_reasons = predicted_squash_reasons(
                distillation
            )

    # -- public API ---------------------------------------------------------------

    def run(self) -> MsspResult:
        """Execute the program under MSSP to completion."""
        arch = ArchState.initial(self.original)
        self._versions = CellVersions()
        master = Master(
            self.distilled, self.config,
            arrival_pcs=self.pc_map.arrival_pcs(),
            jr_table=self.pc_map.jr_table,
            tier=self.exec_tier,
        )
        counters = MsspCounters()
        records: List[TraceRecord] = []
        device_trace: List[DeviceAccess] = []
        recent_outcomes: deque = deque(maxlen=self.config.throttle_window)
        next_tid = 0
        halted = False

        while not halted:
            if not self.pc_map.is_anchor(arch.pc):
                # The machine is at a pc the master cannot restart from
                # (possible only with a malformed map, e.g. a fork whose
                # target never got a map entry).  Sequential execution to
                # the next anchor is always a safe fallback.
                recovery = self._recover(arch, counters, device_trace)
                records.append(recovery)
                halted = recovery.halted
                continue
            master.restart(arch, self.pc_map.resume_pc(arch.pc))
            counters.restarts += 1
            halted, next_tid = self._run_episode(
                arch, master, counters, records, recent_outcomes, next_tid
            )
            if halted:
                break
            # Episode failed: recover non-speculatively, then restart.
            # Persistent misspeculation triggers dual-mode throttling:
            # a long sequential stretch before speculation is retried.
            min_instrs = 0
            threshold = self.config.throttle_threshold
            if (
                threshold is not None
                and len(recent_outcomes) == recent_outcomes.maxlen
            ):
                failures = sum(1 for ok in recent_outcomes if not ok)
                if failures / len(recent_outcomes) >= threshold:
                    min_instrs = self.config.throttle_chunk
                    counters.throttle_episodes += 1
                    recent_outcomes.clear()
            recovery = self._recover(
                arch, counters, device_trace, min_instrs=min_instrs
            )
            records.append(recovery)
            if recovery.halted:
                halted = True

        return MsspResult(
            final_state=arch, halted=True, records=records,
            counters=counters, device_trace=device_trace,
        )

    def run_and_check(self) -> MsspResult:
        """Run MSSP, then assert equivalence with sequential execution."""
        result = self.run()
        reference = run_to_halt(
            self.original, max_steps=self.config.max_total_instrs
        )
        differences = result.final_state.diff(reference.state)
        if differences:
            raise MsspError(
                "MSSP final state diverged from SEQ: " + "; ".join(differences)
            )
        return result

    # -- internals -----------------------------------------------------------------

    def _run_episode(
        self,
        arch: ArchState,
        master: Master,
        counters: MsspCounters,
        records: List[TraceRecord],
        recent_outcomes: deque,
        next_tid: int,
    ) -> tuple:
        """One episode: master just restarted at ``arch``.

        Runs the master/attempt loop until the machine halts or the
        episode fails (squash, master trap/timeout).  Returns
        ``(machine_halted, next_tid)``; the caller handles recovery and
        throttling.  The parallel runtime overrides this method only —
        the surrounding restart/recovery loop and all verify/commit
        decisions (:meth:`_judge_task`) are shared, which is what keeps
        the two runtimes bit-identical.
        """
        open_task = Task(
            tid=next_tid, start_pc=arch.pc,
            checkpoint=Checkpoint.exact(arch), exact=True,
        )
        next_tid += 1
        while True:
            event = master.run_until_fork()
            counters.master_instrs += event.instrs
            if event.kind is MasterEventKind.FORK:
                open_task.end_pc = event.anchor
                open_task.end_arrivals = event.arrivals
                closing_event: Optional[MasterEvent] = event
            elif event.kind is MasterEventKind.HALT:
                open_task.end_pc = None
                open_task.final = True
                closing_event = event
            else:  # TRAP or TIMEOUT: the open task cannot be delimited.
                self._record_master_failure(
                    open_task, event, counters, records
                )
                recent_outcomes.append(False)
                return False, next_tid

            committed, slave_halted = self._attempt_task(
                open_task, closing_event, arch, counters, records
            )
            recent_outcomes.append(committed)
            if not committed:
                return False, next_tid
            if slave_halted:
                return True, next_tid
            self._check_budget(counters)
            open_task = Task(
                tid=next_tid, start_pc=event.anchor,
                checkpoint=event.checkpoint,
            )
            next_tid += 1

    def _record_master_failure(
        self,
        task: Task,
        event: MasterEvent,
        counters: MsspCounters,
        records: List[TraceRecord],
    ) -> None:
        """Account a terminal TRAP/TIMEOUT: the open task is undelimited."""
        counters.master_failures += 1
        records.append(
            MasterFailureRecord(
                kind=event.kind.value, master_instrs=event.instrs
            )
        )
        squash_task(task, SquashReason.MASTER_TIMEOUT)
        self._assert_predicted(SquashReason.MASTER_TIMEOUT, None)
        counters.tasks_squashed += 1
        counters.note_squash_reason(SquashReason.MASTER_TIMEOUT.value)

    def _attempt_task(
        self,
        task: Task,
        event: MasterEvent,
        arch: ArchState,
        counters: MsspCounters,
        records: List[TraceRecord],
    ) -> tuple:
        """Execute + verify + (maybe) commit one task.

        Returns ``(committed, machine_halted)``.
        """
        task.status = TaskStatus.READY
        # Eagerly executed tasks read architected state as of *now*, and
        # nothing commits between execution and the verify below.
        task.base_version = self._versions.seq
        execute_task(
            self.original, task, arch, self.config.max_task_instrs,
            regions=self.regions, tier=self.exec_tier,
        )
        return self._judge_task(task, event, arch, counters, records)

    def _judge_task(
        self,
        task: Task,
        event: MasterEvent,
        arch: ArchState,
        counters: MsspCounters,
        records: List[TraceRecord],
    ) -> tuple:
        """Verify + (maybe) commit one already-executed task.

        This is the in-order verify/commit stage both runtimes share: it
        is the only code that writes architected state, appends task
        records, or bumps task counters, so any execution strategy that
        feeds it identical task objects in identical order produces an
        identical :class:`MsspResult`.  Returns
        ``(committed, machine_halted)``.
        """
        outcome = verify_task(task, arch, versions=self._versions)
        counters.live_ins_checked += outcome.checked
        counters.live_ins_mismatched += outcome.mismatched
        if task.exact:
            counters.exact_tasks += 1
        record = TaskAttemptRecord(
            tid=task.tid,
            start_pc=task.start_pc,
            end_pc=task.end_pc,
            n_instrs=task.n_instrs,
            master_instrs=event.instrs,
            committed=outcome.ok,
            n_loads=task.n_loads,
            master_loads=event.loads,
            squash_reason=outcome.reason.value,
            origin_pc=outcome.origin_pc,
            live_ins_checked=outcome.checked,
            live_ins_mismatched=outcome.mismatched,
            exact=task.exact,
            final=task.final,
            halted=task.halted,
            checkpoint_words=len(task.checkpoint),
        )
        records.append(record)
        if outcome.ok:
            commit_task(task, arch)
            self._versions.stamp_commit(task.live_out_mem)
            counters.tasks_committed += 1
            counters.committed_instrs += task.n_instrs
            return True, task.halted
        squash_task(task, outcome.reason)
        self._assert_predicted(outcome.reason, outcome.origin_pc)
        counters.tasks_squashed += 1
        counters.squashed_instrs += task.n_instrs
        counters.note_squash_reason(outcome.reason.value)
        return False, False

    def _recover(
        self,
        arch: ArchState,
        counters: MsspCounters,
        device_trace: List[DeviceAccess],
        min_instrs: int = 0,
    ) -> RecoveryRecord:
        """Execute the original program non-speculatively from ``arch``.

        Stops at the first arrival (after at least one instruction) at an
        anchor the master can restart from, or at ``halt``.  Architected
        state is advanced directly — this is ordinary sequential
        execution, exactly the paper's fallback path — and it is the only
        path allowed to touch protected regions, so device accesses are
        logged here, in program order, exactly once each.
        """
        anchors = self.pc_map.anchors
        regions = self.regions
        decoded = self._decoded_original
        steppers = decoded.steppers
        size = decoded.size
        steps = 0
        loads = 0
        halted = False
        budget = self.config.max_total_instrs - counters.total_instrs
        jp = self._jit_recover
        # Superblocks may run only while every bound stays unreachable
        # within one region body; the per-step loop below handles the
        # boundaries (anchor stops and budget raises fire at exactly the
        # per-step instruction counts).
        cap = min(budget, max(min_instrs, self.config.recovery_max_instrs))
        while True:
            pc = arch.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            if jp is not None:
                region = jp.region_for(pc)
                if region is not None and steps + region.linear_len < cap:
                    steps, loads, _arrivals, status = region.fn(
                        arch, steps, loads, cap, None, 0,
                        anchors, min_instrs,
                    )
                    if status == EXIT_HALT:
                        halted = True
                        break
                    if status == EXIT_STOP:
                        break
                    continue  # EXIT_RUN: pc synced; retry dispatch there.
            effect = steppers[pc](arch)
            if effect.halted:
                halted = True
                break
            steps += 1
            if effect.mem_addr is not None and not effect.is_store:
                loads += 1
            if (
                regions is not None
                and effect.mem_addr is not None
                and effect.mem_addr in regions
            ):
                device_trace.append(
                    DeviceAccess(
                        pc=pc, address=effect.mem_addr,
                        value=effect.mem_value, is_store=effect.is_store,
                    )
                )
                counters.device_accesses += 1
            if steps >= min_instrs and arch.pc in anchors:
                break
            if steps >= budget:
                raise StepLimitExceeded(self.config.max_total_instrs)
            if steps >= max(min_instrs, self.config.recovery_max_instrs):
                # Episode cap: hand control back; the engine will start
                # another recovery episode if no anchor was reached.
                break
        # Recovery wrote architected cells without itemizing them:
        # invalidate every version stamp at once.
        self._versions.invalidate_all()
        counters.recovery_instrs += steps
        counters.recovery_episodes += 1
        return RecoveryRecord(
            n_instrs=steps, halted=halted,
            resumed_at=None if halted else arch.pc,
            n_loads=loads,
        )

    def _assert_predicted(
        self, reason: SquashReason, origin_pc: Optional[int]
    ) -> None:
        """Cross-check a squash cause against the static prediction.

        Active only under ``config.assert_static_soundness``: a squash
        whose cause no distiller pass statistic can account for means
        either the distillation pipeline or the checker's model of it is
        wrong, so fail loudly instead of silently recovering.
        """
        allowed = self._allowed_squash_reasons
        if allowed is None or reason.value in allowed:
            return
        where = f" (origin pc {origin_pc})" if origin_pc is not None else ""
        raise MsspError(
            f"statically unpredicted squash cause {reason.value!r}{where}: "
            f"pass statistics only license {sorted(allowed)}"
        )

    def _check_budget(self, counters: MsspCounters) -> None:
        if counters.total_instrs > self.config.max_total_instrs:
            raise StepLimitExceeded(self.config.max_total_instrs)


def create_engine(
    original: Program,
    distillation: Union[DistillationResult, tuple],
    config: Optional[MsspConfig] = None,
) -> MsspEngine:
    """Build the engine ``config.runtime`` selects (eager or parallel)."""
    config = config or MsspConfig()
    if config.runtime == "parallel":
        from repro.mssp.parallel import ParallelMsspEngine

        return ParallelMsspEngine(original, distillation, config=config)
    return MsspEngine(original, distillation, config=config)


def run_mssp(
    original: Program,
    distillation: DistillationResult,
    config: Optional[MsspConfig] = None,
) -> MsspResult:
    """Convenience wrapper: build an engine and run it."""
    return create_engine(original, distillation, config=config).run()
