"""The master processor: executes the distilled program and emits forks.

The master is deliberately *untrusted*: nothing it computes reaches
architected state except through checkpoints whose every value is
verified before commit.  Accordingly this implementation bounds the
master instead of validating it — a master that runs off the distilled
text, hits a trap ``halt``, or fails to produce a fork within its budget
simply reports a terminal event and the engine falls back to
non-speculative recovery.

State model: at (re)start the master's registers and its view of memory
are seeded from architected state (the paper's post-squash reseeding).
Its stores accumulate in a private dirty map — the speculative L1 — and
each fork's checkpoint carries the full register file plus a copy of the
dirty map (the "values modified by the master" the paper ships to
slaves).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MsspConfig
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.jit import EXIT_HALT, jit_for
from repro.machine.state import ArchState, wrap64
from repro.mssp.task import Checkpoint


class MasterEventKind(enum.Enum):
    FORK = "fork"
    HALT = "halt"
    TRAP = "trap"          # ran outside the distilled text
    TIMEOUT = "timeout"    # fork budget exhausted


@dataclass(frozen=True)
class MasterEvent:
    """One terminal outcome of ``run_until_fork``."""

    kind: MasterEventKind
    #: Distilled instructions executed since the previous event.
    instrs: int
    #: Memory loads among ``instrs``.
    loads: int = 0
    #: FORK only: original-program pc at which the next task starts.
    anchor: Optional[int] = None
    #: FORK only: live-in prediction for that task.
    checkpoint: Optional[Checkpoint] = None
    #: FORK only: how many times the master arrived at the fork's anchor
    #: since the previous event.  A strided fork passes its anchor
    #: several times before firing; the closing task spans this many
    #: arrivals at its end pc.
    arrivals: int = 1
    #: FORK only: memory cells the master wrote since the *previous*
    #: fork (its per-fork store delta).  In ``cumulative`` checkpoint
    #: mode ``checkpoint.mem`` is the whole dirty map, so consecutive
    #: checkpoints satisfy ``mem_k == mem_{k-1} | mem_delta_k`` — the
    #: parallel runtime uses this identity to delta-encode checkpoint
    #: chains on the wire instead of shipping the cumulative map per
    #: task.
    mem_delta: Optional[Dict[int, int]] = None


class _MasterView:
    """MachineStateLike over (registers, dirty memory, restart snapshot).

    ``dirty`` holds every write since restart (the master's speculative
    L1); ``delta`` holds writes since the last fork, for delta-mode
    checkpoints.
    """

    __slots__ = ("pc", "regs", "dirty", "delta", "_base_mem")

    def __init__(self, arch: ArchState, pc: int):
        self.pc = pc
        self.regs: List[int] = list(arch.regs)
        self.dirty: Dict[int, int] = {}
        self.delta: Dict[int, int] = {}
        self._base_mem = dict(arch.mem)

    def read_reg(self, index: int) -> int:
        return self.regs[index] if index else 0

    def write_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = wrap64(value)

    def load(self, address: int) -> int:
        if address in self.dirty:
            return self.dirty[address]
        return self._base_mem.get(address, 0)

    def store(self, address: int, value: int) -> None:
        value = wrap64(value)
        self.dirty[address] = value
        self.delta[address] = value


class Master:
    """Drives the distilled program, yielding fork/halt/trap/timeout events."""

    def __init__(
        self,
        distilled: Program,
        config: MsspConfig,
        arrival_pcs: Optional[Dict[int, int]] = None,
        jr_table: Optional[Dict[int, int]] = None,
        tier: str = "decoded",
    ):
        self.distilled = distilled
        self.config = config
        #: distilled pc -> original anchor pc, for arrival counting.
        self.arrival_pcs = dict(arrival_pcs or {})
        #: original return pc -> distilled pc, for jr translation.  The
        #: distilled program keeps original-program code addresses in
        #: registers and memory (so they verify as live-ins); the master
        #: hardware maps them back into its own text on indirect jumps.
        self.jr_table = dict(jr_table or {})
        self._view: Optional[_MasterView] = None
        self._arrivals: Dict[int, int] = {}
        self.total_instrs = 0
        #: Distilled instructions executed inside generated JIT code (the
        #: master-JIT coverage numerator; bench smoke asserts on it).
        self.jit_instrs = 0
        self.restarts = 0
        # Execution tier: ``oracle`` swaps the per-step stepper; ``jit``
        # additionally compiles hot distilled regions in the ``master``
        # codegen mode — the tracer treats FORK/JR as region boundaries
        # (the hardware intercepts both before execution) and per-pc
        # arrival counting is batched inside generated code, so the
        # superblocks preserve this loop's exact observable event stream.
        self._decoded = decode(distilled, oracle=tier == "oracle")
        self._jit = (
            jit_for(distilled, "master", arrival_pcs=self.arrival_pcs)
            if tier == "jit"
            else None
        )
        # Per-pc dispatch for the two opcodes the master hardware
        # intercepts before execution: None for ordinary instructions,
        # (FORK, anchor) for forks, (JR, rs) for indirect jumps (whose
        # original-program return addresses translate through jr_table).
        self._special: tuple = tuple(
            (Opcode.FORK, int(instr.target))
            if instr.op is Opcode.FORK
            else (Opcode.JR, instr.rs)
            if instr.op is Opcode.JR
            else None
            for instr in distilled.code
        )

    def restart(self, arch: ArchState, distilled_pc: int) -> None:
        """Reseed the master from architected state at ``distilled_pc``."""
        self._view = _MasterView(arch, distilled_pc)
        self._arrivals = {}
        self.restarts += 1

    def run_until_fork(self) -> MasterEvent:
        """Execute distilled code until the next fork or a terminal event."""
        view = self._view
        if view is None:
            raise RuntimeError("master.restart() must be called first")
        size = self._decoded.size
        steppers = self._decoded.steppers
        special = self._special
        budget = self.config.max_master_instrs_per_task
        arrival_pcs = self.arrival_pcs
        arrivals = self._arrivals
        jp = self._jit
        executed = 0
        loads = 0
        while True:
            pc = view.pc
            if not 0 <= pc < size:
                return MasterEvent(MasterEventKind.TRAP, executed, loads)
            if jp is not None:
                # Region dispatch happens *instead of* the per-step
                # arrival count below: generated code counts the arrival
                # of every traced pc (this one included) at its visit.
                region = jp.region_for(pc)
                if (
                    region is not None
                    and executed + region.linear_len < budget
                ):
                    before = executed
                    executed, loads, status = region.master(
                        view, executed, loads, budget, arrivals
                    )
                    self.total_instrs += executed - before
                    self.jit_instrs += executed - before
                    if status == EXIT_HALT:
                        return MasterEvent(
                            MasterEventKind.HALT, executed, loads
                        )
                    continue
            if pc in arrival_pcs:
                anchor = arrival_pcs[pc]
                arrivals[anchor] = arrivals.get(anchor, 0) + 1
            dispatch = special[pc]
            if dispatch is None:
                effect = steppers[pc](view)
                if effect.halted:
                    return MasterEvent(MasterEventKind.HALT, executed, loads)
                if effect.mem_addr is not None and not effect.is_store:
                    loads += 1
            elif dispatch[0] is Opcode.FORK:
                view.pc = pc + 1
                executed += 1
                self.total_instrs += 1
                delta = dict(view.delta)
                if self.config.checkpoint_mode == "delta":
                    shipped = delta
                else:
                    shipped = dict(view.dirty)
                view.delta = {}
                checkpoint = Checkpoint(regs=tuple(view.regs), mem=shipped)
                anchor = dispatch[1]
                count = max(1, arrivals.get(anchor, 0))
                self._arrivals = {}
                return MasterEvent(
                    MasterEventKind.FORK, executed, loads,
                    anchor=anchor, checkpoint=checkpoint, arrivals=count,
                    mem_delta=delta,
                )
            else:  # JR: translate the original return pc into our text.
                target = self.jr_table.get(view.read_reg(dispatch[1]))
                if target is None:
                    return MasterEvent(MasterEventKind.TRAP, executed, loads)
                view.pc = target
            executed += 1
            self.total_instrs += 1
            if executed >= budget:
                return MasterEvent(MasterEventKind.TIMEOUT, executed, loads)

    def run_standalone(self, arch: ArchState, max_steps: int) -> int:
        """Run the distilled program to halt, forks as no-ops.

        Measures the distilled program's dynamic path length with jr
        translation active — the distillation-effectiveness numerator.
        Returns the executed instruction count; raises
        :class:`~repro.errors.StepLimitExceeded` past ``max_steps``.
        """
        from repro.errors import StepLimitExceeded

        view = _MasterView(arch, self.distilled.entry)
        size = self._decoded.size
        steppers = self._decoded.steppers
        special = self._special
        jp = self._jit
        scratch_arrivals: Dict[int, int] = {}
        executed = 0
        while True:
            pc = view.pc
            if not 0 <= pc < size:
                return executed  # ran off the text: treat as terminated
            if jp is not None:
                region = jp.region_for(pc)
                if (
                    region is not None
                    and executed + region.linear_len < max_steps
                ):
                    before = executed
                    executed, _loads, status = region.master(
                        view, executed, 0, max_steps, scratch_arrivals
                    )
                    self.jit_instrs += executed - before
                    if status == EXIT_HALT:
                        return executed
                    continue
            dispatch = special[pc]
            if dispatch is not None and dispatch[0] is Opcode.JR:
                target = self.jr_table.get(view.read_reg(dispatch[1]))
                if target is None:
                    return executed
                view.pc = target
            else:  # forks execute as fall-through, everything else as-is
                if steppers[pc](view).halted:
                    return executed
            executed += 1
            if executed >= max_steps:
                raise StepLimitExceeded(max_steps)
