"""The MSSP machine: master, slaves, verify/commit, and the engine.

This package is the functional model of the paper's machine.  The
architectural contract it exports — and that the test suite enforces
property-style — is: for *any* original program and *any* distilled
program + pc map (however wrong), the engine's final architected state
equals sequential execution of the original program.
"""

from repro.mssp.engine import MsspEngine, MsspResult, create_engine, run_mssp
from repro.mssp.master import Master, MasterEvent, MasterEventKind
from repro.mssp.parallel import ParallelMsspEngine
from repro.mssp.regions import DeviceAccess, ProtectedRegions
from repro.mssp.runtime import (
    EventBus,
    EventLog,
    InlineExecutor,
    ProcessExecutor,
    RuntimeEvent,
    SlaveExecutor,
    TaskPipeline,
    ThreadExecutor,
    resolve_runtime,
)
from repro.mssp.slave import SlaveView, execute_task
from repro.mssp.task import Checkpoint, SquashReason, Task, TaskStatus
from repro.mssp.trace import (
    DispatchStats,
    MasterFailureRecord,
    MsspCounters,
    RecoveryRecord,
    TaskAttemptRecord,
    TraceRecorder,
)
from repro.mssp.verify import VerifyOutcome, commit_task, squash_task, verify_task

__all__ = [
    "MsspEngine",
    "MsspResult",
    "ParallelMsspEngine",
    "DispatchStats",
    "TraceRecorder",
    "create_engine",
    "run_mssp",
    "RuntimeEvent",
    "EventBus",
    "EventLog",
    "SlaveExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskPipeline",
    "resolve_runtime",
    "Master",
    "MasterEvent",
    "MasterEventKind",
    "DeviceAccess",
    "ProtectedRegions",
    "SlaveView",
    "execute_task",
    "Checkpoint",
    "SquashReason",
    "Task",
    "TaskStatus",
    "MasterFailureRecord",
    "MsspCounters",
    "RecoveryRecord",
    "TaskAttemptRecord",
    "VerifyOutcome",
    "commit_task",
    "squash_task",
    "verify_task",
]
