"""``python -m repro`` — entry point delegating to the CLI."""

import sys

from repro.cli import main

sys.exit(main())
