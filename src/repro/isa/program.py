"""Program container for the Z-ISA.

A :class:`Program` is an immutable bundle of:

* ``code`` — the text section: a tuple of instructions whose branch/jump
  targets have been resolved to integer program counters;
* ``memory`` — the initial data image, a sparse ``{address: value}`` map;
* ``entry`` — the pc at which execution starts;
* ``symbols`` — label → value bindings (text labels map to pcs, data labels
  map to addresses), kept for disassembly and debugging.

``fork`` targets are *not* required to lie inside the program's own text:
in a distilled program they name pcs in the **original** program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import IsaError
from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class Program:
    """An assembled, executable Z-ISA program."""

    code: Tuple[Instruction, ...]
    memory: Mapping[int, int] = field(default_factory=dict)
    entry: int = 0
    symbols: Mapping[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        object.__setattr__(self, "code", tuple(self.code))
        object.__setattr__(self, "memory", dict(self.memory))
        object.__setattr__(self, "symbols", dict(self.symbols))
        self._validate()

    def _validate(self) -> None:
        size = len(self.code)
        if size == 0:
            raise IsaError("program has no code")
        if not 0 <= self.entry < size:
            raise IsaError(f"entry point {self.entry} outside text [0, {size})")
        for pc, instr in enumerate(self.code):
            target = instr.target
            if target is None:
                continue
            if isinstance(target, str):
                raise IsaError(
                    f"pc {pc}: unresolved symbolic target {target!r}"
                )
            if instr.op is Opcode.FORK:
                # fork targets refer to the original program; the engine
                # validates them against the pc map instead.
                continue
            if not 0 <= target < size:
                raise IsaError(
                    f"pc {pc}: target {target} outside text [0, {size})"
                )

    def __getstate__(self) -> Dict[str, object]:
        """Pickle/deepcopy state: the dataclass fields only.

        Runtime attachments (the pre-decoded execution cache, which holds
        closures) are identity-scoped and must never travel with the
        program's value.
        """
        return {
            name: self.__dict__[name]
            for name in ("code", "memory", "entry", "symbols", "name")
        }

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.code)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.code)

    def instruction_at(self, pc: int) -> Instruction:
        """The instruction at ``pc`` (raises IndexError when out of range)."""
        if not 0 <= pc < len(self.code):
            raise IndexError(pc)
        return self.code[pc]

    @property
    def halts(self) -> bool:
        """True if the program contains at least one ``halt``."""
        return any(i.op is Opcode.HALT for i in self.code)

    def label_at(self, pc: int) -> Optional[str]:
        """The first symbol bound to ``pc``, if any (for disassembly)."""
        for name, value in sorted(self.symbols.items()):
            if value == pc:
                return name
        return None

    # -- derived variants ----------------------------------------------------

    def with_memory(self, memory: Mapping[int, int]) -> "Program":
        """The same code with a different initial data image."""
        return Program(
            code=self.code, memory=dict(memory), entry=self.entry,
            symbols=self.symbols, name=self.name,
        )

    def with_name(self, name: str) -> "Program":
        return Program(
            code=self.code, memory=self.memory, entry=self.entry,
            symbols=self.symbols, name=name,
        )

    def updated_memory(self, updates: Mapping[int, int]) -> "Program":
        """The same code with ``updates`` overlaid on the data image."""
        merged: Dict[int, int] = dict(self.memory)
        merged.update(updates)
        return self.with_memory(merged)

    # -- statistics ----------------------------------------------------------

    def static_opcode_histogram(self) -> Dict[str, int]:
        """Static instruction mix, keyed by mnemonic."""
        histogram: Dict[str, int] = {}
        for instr in self.code:
            key = instr.op.mnemonic
            histogram[key] = histogram.get(key, 0) + 1
        return histogram
