"""Programmatic builder DSL for Z-ISA programs.

The workload suite constructs its programs with this builder rather than
with assembly text: it is less error-prone (labels are checked, registers
are validated at emission time) and composes well with Python control flow
for generating parameterized code.

Example::

    b = ProgramBuilder(name="countdown")
    b.li("r1", 100)
    b.label("loop")
    b.addi("r1", "r1", -1)
    b.bne("r1", "zero", "loop")
    b.halt()
    program = b.build()

Instruction-emitting methods are named after their mnemonics (``b.add``,
``b.lw``, ``b.beq``, ...) and are dispatched generically from the opcode
table: register operands accept names or numbers, and target/immediate
operands accept integers or label names (resolved at :meth:`build` time,
with data labels resolving to their word addresses).

Memory-operand convention: ``b.lw(rd, base, offset)`` and
``b.sw(rt, base, offset)``, mirroring ``lw rd, offset(base)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.errors import AssemblerError, IsaError
from repro.isa.instructions import (
    Format,
    Instruction,
    Opcode,
    OPCODES_BY_MNEMONIC,
)
from repro.isa.program import Program
from repro.isa.registers import RA, SP, parse_register

#: Operand accepted for register slots: a name or a register number.
Reg = Union[str, int]

#: Operand accepted for immediate/target slots: an int or a label name.
Value = Union[str, int]

#: Default base word address of builder-allocated data.
DEFAULT_DATA_BASE = 0x10000


class ProgramBuilder:
    """Incrementally builds a Z-ISA :class:`Program`."""

    def __init__(self, name: str = "program", data_base: int = DEFAULT_DATA_BASE):
        self.name = name
        self._code: List[Instruction] = []
        self._pending: List[tuple] = []  # (index, field, label)
        self._labels: Dict[str, int] = {}
        self._data_labels: Dict[str, int] = {}
        self._memory: Dict[int, int] = {}
        self._data_cursor = data_base

    # -- labels and data -------------------------------------------------------

    @property
    def pc(self) -> int:
        """The pc the next emitted instruction will occupy."""
        return len(self._code)

    def label(self, name: str) -> "ProgramBuilder":
        """Bind ``name`` to the current pc."""
        if name in self._labels or name in self._data_labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = self.pc
        return self

    def alloc(self, name: str, values: Iterable[int]) -> int:
        """Allocate initialized words in the data section; returns the address."""
        return self._bind_data(name, list(values))

    def space(self, name: str, count: int) -> int:
        """Allocate ``count`` zeroed words; returns the address."""
        if count < 0:
            raise AssemblerError(f".space count must be >= 0, got {count}")
        return self._bind_data(name, [0] * count, materialize=False, count=count)

    def _bind_data(
        self,
        name: str,
        values: List[int],
        materialize: bool = True,
        count: Optional[int] = None,
    ) -> int:
        if name in self._labels or name in self._data_labels:
            raise AssemblerError(f"duplicate label {name!r}")
        address = self._data_cursor
        self._data_labels[name] = address
        length = count if count is not None else len(values)
        if materialize:
            for offset, value in enumerate(values):
                if value:
                    self._memory[address + offset] = value
        self._data_cursor += length
        return address

    def data_addr(self, name: str) -> int:
        """Address of a previously allocated data label."""
        if name not in self._data_labels:
            raise AssemblerError(f"unknown data label {name!r}")
        return self._data_labels[name]

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the initial memory image."""
        if value:
            self._memory[address] = value
        else:
            self._memory.pop(address, None)

    # -- generic instruction emission -------------------------------------------

    def __getattr__(self, mnemonic: str) -> Callable[..., "ProgramBuilder"]:
        """Dispatch ``b.<mnemonic>(...)`` for every opcode in the ISA.

        Mnemonics that collide with Python keywords are spelled with a
        trailing underscore (``b.and_``, ``b.or_``).
        """
        if mnemonic.endswith("_"):
            mnemonic = mnemonic[:-1]
        op = OPCODES_BY_MNEMONIC.get(mnemonic)
        if op is None:
            raise AttributeError(mnemonic)

        def emit(*operands) -> "ProgramBuilder":
            self._emit(op, operands)
            return self

        emit.__name__ = mnemonic
        return emit

    def _reg(self, operand: Reg) -> int:
        if isinstance(operand, int):
            return operand
        return parse_register(operand)

    def _value(self, operand: Value, index: int, field: str) -> Optional[int]:
        """Resolve an int now, or record a label fixup for build time."""
        if isinstance(operand, int):
            return operand
        self._pending.append((index, field, operand))
        return 0  # placeholder patched at build()

    def _emit(self, op: Opcode, operands: tuple) -> None:
        index = len(self._code)
        fmt = op.format
        try:
            if fmt == Format.R3:
                rd, rs, rt = operands
                instr = Instruction(
                    op=op, rd=self._reg(rd), rs=self._reg(rs), rt=self._reg(rt)
                )
            elif fmt == Format.I2:
                rd, rs, imm = operands
                instr = Instruction(
                    op=op, rd=self._reg(rd), rs=self._reg(rs),
                    imm=self._value(imm, index, "imm"),
                )
            elif fmt == Format.LI:
                rd, imm = operands
                instr = Instruction(
                    op=op, rd=self._reg(rd), imm=self._value(imm, index, "imm")
                )
            elif fmt == Format.MOV:
                rd, rs = operands
                instr = Instruction(op=op, rd=self._reg(rd), rs=self._reg(rs))
            elif fmt == Format.LOAD:
                rd, base, offset = operands
                instr = Instruction(
                    op=op, rd=self._reg(rd), rs=self._reg(base),
                    imm=self._value(offset, index, "imm"),
                )
            elif fmt == Format.STORE:
                rt, base, offset = operands
                instr = Instruction(
                    op=op, rt=self._reg(rt), rs=self._reg(base),
                    imm=self._value(offset, index, "imm"),
                )
            elif fmt == Format.BR:
                rs, rt, target = operands
                instr = Instruction(
                    op=op, rs=self._reg(rs), rt=self._reg(rt),
                    target=self._value(target, index, "target"),
                )
            elif fmt == Format.J:
                (target,) = operands
                instr = Instruction(
                    op=op, target=self._value(target, index, "target")
                )
            elif fmt == Format.JR:
                (rs,) = operands
                instr = Instruction(op=op, rs=self._reg(rs))
            else:
                if operands:
                    raise IsaError(f"{op.mnemonic} takes no operands")
                instr = Instruction(op=op)
        except ValueError as exc:
            raise AssemblerError(
                f"{op.mnemonic}: wrong operand count {len(operands)}"
            ) from exc
        self._code.append(instr)

    # -- macros ------------------------------------------------------------------

    def push(self, reg: Reg) -> "ProgramBuilder":
        """Push a register on the stack (sp pre-decrement convention)."""
        self.addi("sp", "sp", -1)
        self.sw(reg, "sp", 0)
        return self

    def pop(self, reg: Reg) -> "ProgramBuilder":
        """Pop the stack top into a register."""
        self.lw(reg, "sp", 0)
        self.addi("sp", "sp", 1)
        return self

    def call(self, label: Value) -> "ProgramBuilder":
        """Call a subroutine (``jal``; callee returns with :meth:`ret`)."""
        self.jal(label)
        return self

    def ret(self) -> "ProgramBuilder":
        """Return from a subroutine (``jr ra``)."""
        self.jr(RA)
        return self

    def comment(self, _text: str) -> "ProgramBuilder":
        """Structured no-op; keeps generator code self-documenting."""
        return self

    # -- finalization --------------------------------------------------------------

    def resolve(self, label: str) -> int:
        """Resolve a text or data label (only valid once bound)."""
        if label in self._labels:
            return self._labels[label]
        if label in self._data_labels:
            return self._data_labels[label]
        raise AssemblerError(f"undefined label {label!r}")

    def build(self, entry: Optional[Value] = None) -> Program:
        """Resolve all fixups and produce the immutable :class:`Program`.

        ``entry`` defaults to the ``main`` label when bound, else pc 0.
        """
        code = list(self._code)
        for index, field, label in self._pending:
            value = self.resolve(label)
            instr = code[index]
            if field == "target":
                code[index] = instr.with_target(value)
            else:
                code[index] = Instruction(
                    op=instr.op, rd=instr.rd, rs=instr.rs, rt=instr.rt,
                    imm=value, target=instr.target,
                )
        if entry is None:
            entry_pc = self._labels.get("main", 0)
        elif isinstance(entry, int):
            entry_pc = entry
        else:
            entry_pc = self.resolve(entry)
        symbols = dict(self._labels)
        symbols.update(self._data_labels)
        return Program(
            code=tuple(code), memory=dict(self._memory), entry=entry_pc,
            symbols=symbols, name=self.name,
        )


def stack_region(builder: ProgramBuilder, size: int = 4096,
                 base: int = 0x8000000) -> int:
    """Initialize ``sp`` convention: returns the initial stack-pointer value.

    The stack grows downward from ``base``; callers emit ``b.li('sp', value)``
    themselves so the initialization is visible in the program text.
    """
    del builder, size
    return base
