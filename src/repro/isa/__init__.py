"""Z-ISA: the instruction set, assembler, disassembler and builder DSL.

The public surface of this package:

* :class:`~repro.isa.instructions.Instruction` and
  :class:`~repro.isa.instructions.Opcode` — the instruction set itself;
* :class:`~repro.isa.program.Program` — an assembled program;
* :func:`~repro.isa.asm.assemble` — textual assembler;
* :func:`~repro.isa.disasm.disassemble` — round-trippable disassembler;
* :class:`~repro.isa.builder.ProgramBuilder` — programmatic builder DSL;
* :mod:`~repro.isa.encoding` — fixed-width binary encoding.
"""

from repro.isa.asm import Assembler, assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, disassemble_instruction
from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    code_size_bytes,
    decode_instruction,
    decode_program_words,
    encode_instruction,
    encode_program_words,
)
from repro.isa.instructions import (
    BRANCH_OPS,
    Format,
    Instruction,
    JUMP_OPS,
    Opcode,
    TERMINATOR_OPS,
)
from repro.isa.program import Program
from repro.isa.registers import (
    FP,
    NUM_REGS,
    RA,
    RV,
    SP,
    ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "Assembler",
    "assemble",
    "ProgramBuilder",
    "disassemble",
    "disassemble_instruction",
    "INSTRUCTION_BYTES",
    "code_size_bytes",
    "decode_instruction",
    "decode_program_words",
    "encode_instruction",
    "encode_program_words",
    "BRANCH_OPS",
    "Format",
    "Instruction",
    "JUMP_OPS",
    "Opcode",
    "TERMINATOR_OPS",
    "Program",
    "FP",
    "NUM_REGS",
    "RA",
    "RV",
    "SP",
    "ZERO",
    "parse_register",
    "register_name",
]
