"""Register file definition for the Z-ISA.

The Z-ISA has 32 general-purpose 64-bit registers, ``r0`` through ``r31``.
``r0`` is hardwired to zero (writes are discarded), following the usual RISC
convention, and a few registers have conventional aliases:

======  =====  ==========================================
alias   reg    conventional role
======  =====  ==========================================
zero    r0     constant zero
rv      r1     return value
sp      r29    stack pointer
fp      r30    frame pointer
ra      r31    return address (written by ``jal``)
======  =====  ==========================================

Registers are identified by small integers throughout the package; the
functions here translate between names and numbers.
"""

from __future__ import annotations

from repro.errors import IsaError

#: Number of architectural registers.
NUM_REGS = 32

#: Register number of the hardwired-zero register.
ZERO = 0

#: Register number of the conventional return-value register.
RV = 1

#: Register number of the conventional stack pointer.
SP = 29

#: Register number of the conventional frame pointer.
FP = 30

#: Register number written by ``jal`` (the link register).
RA = 31

_ALIASES = {
    "zero": ZERO,
    "rv": RV,
    "sp": SP,
    "fp": FP,
    "ra": RA,
}

_ALIAS_BY_NUMBER = {ZERO: "zero", SP: "sp", FP: "fp", RA: "ra"}


def parse_register(name: str) -> int:
    """Translate a register name (``r7``, ``sp``, ...) to its number.

    Raises :class:`~repro.errors.IsaError` for anything that is not a valid
    register name.
    """
    name = name.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number < NUM_REGS:
            return number
    raise IsaError(f"invalid register name: {name!r}")


def register_name(number: int, prefer_alias: bool = True) -> str:
    """Translate a register number back to its canonical name.

    With ``prefer_alias`` (the default), registers that have a conventional
    alias are rendered with it (``sp`` rather than ``r29``); ``rv`` is never
    used since ``r1`` is also a perfectly ordinary register.
    """
    if not 0 <= number < NUM_REGS:
        raise IsaError(f"invalid register number: {number}")
    if prefer_alias and number in _ALIAS_BY_NUMBER:
        return _ALIAS_BY_NUMBER[number]
    return f"r{number}"


def check_register(number: int) -> int:
    """Validate ``number`` as a register index and return it unchanged."""
    if not isinstance(number, int) or not 0 <= number < NUM_REGS:
        raise IsaError(f"invalid register number: {number!r}")
    return number
