"""Instruction set definition for the Z-ISA.

The Z-ISA is a small, regular RISC instruction set designed for this
reproduction.  It is word-oriented: memory is an array of 64-bit words
addressed by word index, and all registers are 64-bit.  Arithmetic wraps to
64-bit two's complement, division is trap-free (division by zero yields 0),
so every instruction is total — there are no architectural exceptions.

Instruction formats
-------------------

======  ========================  ==========================================
format  operands                  opcodes
======  ========================  ==========================================
R3      ``rd, rs, rt``            add sub mul div mod and or xor sll srl sra
                                  slt sle seq sne
I2      ``rd, rs, imm``           addi muli andi ori xori slli srli slti
LI      ``rd, imm``               li
MOV     ``rd, rs``                mov
LOAD    ``rd, imm(rs)``           lw
STORE   ``rt, imm(rs)``           sw
BR      ``rs, rt, target``        beq bne blt bge
J       ``target``                j jal fork
JR      ``rs``                    jr
N0      (none)                    halt nop
======  ========================  ==========================================

``fork`` is the MSSP-specific opcode: it appears only in *distilled*
programs, where its target is a program counter **in the original program**
at which the next task begins.  Under plain sequential execution ``fork``
behaves like ``nop``, so a distilled program is itself an ordinary runnable
Z-ISA program (this is how distilled dynamic path length is measured).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from repro.errors import IsaError
from repro.isa.registers import check_register, register_name


class Format(enum.Enum):
    """Operand layout of an opcode."""

    R3 = "R3"
    I2 = "I2"
    LI = "LI"
    MOV = "MOV"
    LOAD = "LOAD"
    STORE = "STORE"
    BR = "BR"
    J = "J"
    JR = "JR"
    N0 = "N0"


class Opcode(enum.Enum):
    """All Z-ISA opcodes, each carrying its format and encoding number."""

    # R3 arithmetic / logic / compare
    ADD = ("add", Format.R3, 1)
    SUB = ("sub", Format.R3, 2)
    MUL = ("mul", Format.R3, 3)
    DIV = ("div", Format.R3, 4)
    MOD = ("mod", Format.R3, 5)
    AND = ("and", Format.R3, 6)
    OR = ("or", Format.R3, 7)
    XOR = ("xor", Format.R3, 8)
    SLL = ("sll", Format.R3, 9)
    SRL = ("srl", Format.R3, 10)
    SRA = ("sra", Format.R3, 11)
    SLT = ("slt", Format.R3, 12)
    SLE = ("sle", Format.R3, 13)
    SEQ = ("seq", Format.R3, 14)
    SNE = ("sne", Format.R3, 15)
    # I2 immediate forms
    ADDI = ("addi", Format.I2, 16)
    MULI = ("muli", Format.I2, 17)
    ANDI = ("andi", Format.I2, 18)
    ORI = ("ori", Format.I2, 19)
    XORI = ("xori", Format.I2, 20)
    SLLI = ("slli", Format.I2, 21)
    SRLI = ("srli", Format.I2, 22)
    SLTI = ("slti", Format.I2, 23)
    # constants and moves
    LI = ("li", Format.LI, 24)
    MOV = ("mov", Format.MOV, 25)
    # memory
    LW = ("lw", Format.LOAD, 26)
    SW = ("sw", Format.STORE, 27)
    # control
    BEQ = ("beq", Format.BR, 28)
    BNE = ("bne", Format.BR, 29)
    BLT = ("blt", Format.BR, 30)
    BGE = ("bge", Format.BR, 31)
    J = ("j", Format.J, 32)
    JAL = ("jal", Format.J, 33)
    JR = ("jr", Format.JR, 34)
    HALT = ("halt", Format.N0, 35)
    NOP = ("nop", Format.N0, 36)
    # MSSP task-boundary marker (distilled programs only)
    FORK = ("fork", Format.J, 37)

    def __init__(self, mnemonic: str, fmt: Format, number: int):
        self.mnemonic = mnemonic
        self.format = fmt
        self.number = number

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Opcodes by mnemonic, for the assembler.
OPCODES_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}

#: Opcodes by encoding number, for the decoder.
OPCODES_BY_NUMBER = {op.number: op for op in Opcode}

#: Conditional branches.
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

#: Opcodes that unconditionally redirect control flow.
JUMP_OPS = frozenset({Opcode.J, Opcode.JAL, Opcode.JR})

#: Opcodes that end a basic block.
TERMINATOR_OPS = BRANCH_OPS | JUMP_OPS | frozenset({Opcode.HALT})

#: A branch/jump target: a resolved pc, or a label before resolution.
Target = Union[int, str]


@dataclass(frozen=True)
class Instruction:
    """One Z-ISA instruction.

    Unused operand fields are ``None``.  ``target`` holds either a resolved
    program counter (``int``) or, transiently inside the assembler and the
    distiller's IR, a symbolic label (``str``).
    """

    op: Opcode
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[Target] = None

    def __post_init__(self) -> None:
        fmt = self.op.format
        expectations = {
            Format.R3: ("rd", "rs", "rt"),
            Format.I2: ("rd", "rs", "imm"),
            Format.LI: ("rd", "imm"),
            Format.MOV: ("rd", "rs"),
            Format.LOAD: ("rd", "rs", "imm"),
            Format.STORE: ("rt", "rs", "imm"),
            Format.BR: ("rs", "rt", "target"),
            Format.J: ("target",),
            Format.JR: ("rs",),
            Format.N0: (),
        }[fmt]
        for field_name in ("rd", "rs", "rt", "imm", "target"):
            value = getattr(self, field_name)
            if field_name in expectations:
                if value is None:
                    raise IsaError(
                        f"{self.op.mnemonic}: missing operand {field_name!r}"
                    )
            elif value is not None:
                raise IsaError(
                    f"{self.op.mnemonic}: unexpected operand {field_name}={value!r}"
                )
        for field_name in ("rd", "rs", "rt"):
            value = getattr(self, field_name)
            if value is not None:
                check_register(value)
        if self.imm is not None and not isinstance(self.imm, int):
            raise IsaError(f"{self.op.mnemonic}: immediate must be int")
        if self.target is not None and not isinstance(self.target, (int, str)):
            raise IsaError(f"{self.op.mnemonic}: bad target {self.target!r}")

    # -- semantic classification -------------------------------------------

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.op in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        """True for unconditional control transfers (``j``/``jal``/``jr``)."""
        return self.op in JUMP_OPS

    @property
    def is_terminator(self) -> bool:
        """True if this instruction ends a basic block."""
        return self.op in TERMINATOR_OPS

    @property
    def is_load(self) -> bool:
        return self.op is Opcode.LW

    @property
    def is_store(self) -> bool:
        return self.op is Opcode.SW

    def defs(self) -> FrozenSet[int]:
        """Registers written by this instruction."""
        fmt = self.op.format
        if fmt in (Format.R3, Format.I2, Format.LI, Format.MOV, Format.LOAD):
            return frozenset({self.rd})
        if self.op is Opcode.JAL:
            from repro.isa.registers import RA

            return frozenset({RA})
        return frozenset()

    def uses(self) -> FrozenSet[int]:
        """Registers read by this instruction."""
        fmt = self.op.format
        if fmt == Format.R3:
            return frozenset({self.rs, self.rt})
        if fmt in (Format.I2, Format.MOV, Format.LOAD, Format.JR):
            return frozenset({self.rs})
        if fmt == Format.STORE:
            return frozenset({self.rs, self.rt})
        if fmt == Format.BR:
            return frozenset({self.rs, self.rt})
        return frozenset()

    @property
    def has_side_effect(self) -> bool:
        """True if removing this instruction can change more than its def.

        Stores, control transfers, ``halt`` and ``fork`` are side-effecting;
        pure ALU ops, loads, moves and ``nop`` are not.
        """
        return (
            self.is_store
            or self.is_terminator
            or self.op in (Opcode.FORK, Opcode.JAL)
        )

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """Render in canonical assembly syntax (targets rendered literally)."""
        op = self.op
        fmt = op.format
        r = register_name
        if fmt == Format.R3:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs)}, {r(self.rt)}"
        if fmt == Format.I2:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs)}, {self.imm}"
        if fmt == Format.LI:
            return f"{op.mnemonic} {r(self.rd)}, {self.imm}"
        if fmt == Format.MOV:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs)}"
        if fmt == Format.LOAD:
            return f"{op.mnemonic} {r(self.rd)}, {self.imm}({r(self.rs)})"
        if fmt == Format.STORE:
            return f"{op.mnemonic} {r(self.rt)}, {self.imm}({r(self.rs)})"
        if fmt == Format.BR:
            return f"{op.mnemonic} {r(self.rs)}, {r(self.rt)}, {self.target}"
        if fmt == Format.J:
            return f"{op.mnemonic} {self.target}"
        if fmt == Format.JR:
            return f"{op.mnemonic} {r(self.rs)}"
        return op.mnemonic

    def __str__(self) -> str:
        return self.render()

    # -- rewriting helpers ---------------------------------------------------

    def with_target(self, target: Target) -> "Instruction":
        """A copy of this instruction with a different branch/jump target."""
        return Instruction(
            op=self.op, rd=self.rd, rs=self.rs, rt=self.rt, imm=self.imm,
            target=target,
        )


# -- convenience constructors used by the builder DSL and tests --------------

def r3(op: Opcode, rd: int, rs: int, rt: int) -> Instruction:
    return Instruction(op=op, rd=rd, rs=rs, rt=rt)


def i2(op: Opcode, rd: int, rs: int, imm: int) -> Instruction:
    return Instruction(op=op, rd=rd, rs=rs, imm=imm)


def li(rd: int, imm: int) -> Instruction:
    return Instruction(op=Opcode.LI, rd=rd, imm=imm)


def mov(rd: int, rs: int) -> Instruction:
    return Instruction(op=Opcode.MOV, rd=rd, rs=rs)


def lw(rd: int, imm: int, rs: int) -> Instruction:
    return Instruction(op=Opcode.LW, rd=rd, rs=rs, imm=imm)


def sw(rt: int, imm: int, rs: int) -> Instruction:
    return Instruction(op=Opcode.SW, rt=rt, rs=rs, imm=imm)


def branch(op: Opcode, rs: int, rt: int, target: Target) -> Instruction:
    return Instruction(op=op, rs=rs, rt=rt, target=target)


def jump(target: Target) -> Instruction:
    return Instruction(op=Opcode.J, target=target)


def jal(target: Target) -> Instruction:
    return Instruction(op=Opcode.JAL, target=target)


def jr(rs: int) -> Instruction:
    return Instruction(op=Opcode.JR, rs=rs)


def fork(target: Target) -> Instruction:
    return Instruction(op=Opcode.FORK, target=target)


def halt() -> Instruction:
    return Instruction(op=Opcode.HALT)


def nop() -> Instruction:
    return Instruction(op=Opcode.NOP)
