"""Disassembler for Z-ISA programs.

Produces assembly text that re-assembles to an equivalent program (same
code, same initial memory, same entry pc).  Branch and jump targets are
rendered as generated labels (``L<pc>``) so the output is readable and
position-independent; ``fork`` targets are rendered numerically because
they refer to pcs in a *different* (the original) program.
"""

from __future__ import annotations

from typing import List, Set

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


def _collect_label_pcs(program: Program) -> Set[int]:
    pcs: Set[int] = {program.entry}
    for instr in program.code:
        if instr.op is Opcode.FORK:
            continue
        if isinstance(instr.target, int):
            pcs.add(instr.target)
    return pcs


def _label_for(pc: int) -> str:
    return f"L{pc}"


def disassemble_instruction(instr: Instruction) -> str:
    """Render a single instruction with numeric targets."""
    return instr.render()


def disassemble(program: Program) -> str:
    """Render ``program`` as re-assemblable source text."""
    label_pcs = _collect_label_pcs(program)
    lines: List[str] = ["        .text"]
    for pc, instr in enumerate(program.code):
        prefix = ""
        if pc == program.entry and pc in label_pcs:
            lines.append("main:")
        if pc in label_pcs:
            prefix = f"{_label_for(pc)}:"
        rendered = _render_with_labels(instr)
        lines.append(f"{prefix:<8}{rendered}")
    if program.memory:
        lines.extend(_render_data(program))
    return "\n".join(lines) + "\n"


def _render_with_labels(instr: Instruction) -> str:
    if instr.target is None or instr.op is Opcode.FORK:
        return instr.render()
    return instr.with_target(_label_for(int(instr.target))).render()


def _render_data(program: Program) -> List[str]:
    """Render the initial memory image as .data/.word runs."""
    lines: List[str] = []
    addresses = sorted(program.memory)
    run_start = None
    run_values: List[int] = []
    previous = None
    for addr in addresses + [None]:
        contiguous = previous is not None and addr == previous + 1
        if addr is None or not contiguous:
            if run_values:
                lines.append(f"        .data {run_start}")
                for index in range(0, len(run_values), 8):
                    chunk = run_values[index:index + 8]
                    rendered = ", ".join(str(v) for v in chunk)
                    lines.append(f"        .word {rendered}")
            if addr is None:
                break
            run_start = addr
            run_values = [program.memory[addr]]
        else:
            run_values.append(program.memory[addr])
        previous = addr
    return lines
