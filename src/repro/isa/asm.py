"""Two-pass textual assembler for the Z-ISA.

Syntax overview::

    # comment                 ; also a comment
            .text             # switch to text section (default)
    main:   li   r1, 100
    loop:   addi r1, r1, -1
            lw   r2, 4(r3)
            sw   r2, table(r0)    # data labels usable as offsets
            bne  r1, zero, loop
            jal  subroutine
            halt

            .data 0x1000      # switch to data section at word address 0x1000
    table:  .word 1, 2, 3, -4
    buffer: .space 16         # 16 zeroed words

Labels bound in the text section resolve to program counters; labels bound
in the data section resolve to word addresses.  Immediates and offsets may
be decimal, hex (``0x``), negative, or symbolic (a label name).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError, IsaError
from repro.isa.instructions import Format, Instruction, OPCODES_BY_MNEMONIC
from repro.isa.program import Program
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(\s*([A-Za-z0-9_]+)\s*\)$")


@dataclass
class _Line:
    """One meaningful source line after pass 1."""

    number: int
    mnemonic: str
    operands: List[str]
    pc: int


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(text: str) -> Optional[int]:
    """Parse a decimal/hex integer literal, or None if not a literal."""
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        return None


class Assembler:
    """Assembles Z-ISA source text into a :class:`Program`."""

    def __init__(self) -> None:
        self._symbols: Dict[str, int] = {}
        self._lines: List[_Line] = []
        self._memory: Dict[int, int] = {}
        self._data_items: List[Tuple[int, str, List[str]]] = []

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` and return the resulting program."""
        self._symbols = {}
        self._lines = []
        self._memory = {}
        self._data_items = []
        self._first_pass(source)
        code = [self._build_instruction(line) for line in self._lines]
        self._build_data()
        entry = self._symbols.get("main", 0)
        return Program(
            code=tuple(code), memory=self._memory, entry=entry,
            symbols=self._symbols, name=name,
        )

    # -- pass 1: layout and symbol binding ------------------------------------

    def _first_pass(self, source: str) -> None:
        in_data = False
        data_addr = 0
        pc = 0
        for number, raw in enumerate(source.splitlines(), start=1):
            text = _strip_comment(raw)
            while text:
                match = _LABEL_RE.match(text)
                if not match:
                    break
                label = match.group(1)
                if label in self._symbols:
                    raise AssemblerError(f"duplicate label {label!r}", number)
                self._symbols[label] = data_addr if in_data else pc
                text = match.group(2).strip()
            if not text:
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            operands = [o.strip() for o in rest.split(",")] if rest else []
            if mnemonic == ".text":
                in_data = False
            elif mnemonic == ".data":
                in_data = True
                if operands and operands[0]:
                    addr = _parse_int(operands[0])
                    if addr is None:
                        raise AssemblerError(
                            f"bad .data address {operands[0]!r}", number
                        )
                    data_addr = addr
            elif mnemonic == ".word":
                if not in_data:
                    raise AssemblerError(".word outside .data section", number)
                self._data_items.append((data_addr, ".word", operands))
                data_addr += len(operands)
            elif mnemonic == ".space":
                if not in_data:
                    raise AssemblerError(".space outside .data section", number)
                count = _parse_int(operands[0]) if operands else None
                if count is None or count < 0:
                    raise AssemblerError("bad .space count", number)
                self._data_items.append((data_addr, ".space", operands))
                data_addr += count
            elif mnemonic.startswith("."):
                raise AssemblerError(f"unknown directive {mnemonic!r}", number)
            else:
                if in_data:
                    raise AssemblerError(
                        "instruction inside .data section", number
                    )
                self._lines.append(_Line(number, mnemonic, operands, pc))
                pc += 1

    # -- pass 2: operand resolution -------------------------------------------

    def _resolve_value(self, text: str, line: int) -> int:
        value = _parse_int(text)
        if value is not None:
            return value
        if text in self._symbols:
            return self._symbols[text]
        raise AssemblerError(f"undefined symbol {text!r}", line)

    def _resolve_register(self, text: str, line: int) -> int:
        try:
            return parse_register(text)
        except IsaError as exc:
            raise AssemblerError(str(exc), line) from exc

    def _split_mem_operand(self, text: str, line: int) -> Tuple[int, int]:
        """Parse ``offset(reg)`` into (offset, register)."""
        match = _MEM_OPERAND_RE.match(text.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {text!r}", line)
        offset_text = match.group(1).strip() or "0"
        offset = self._resolve_value(offset_text, line)
        reg = self._resolve_register(match.group(2), line)
        return offset, reg

    def _build_instruction(self, line: _Line) -> Instruction:
        if line.mnemonic not in OPCODES_BY_MNEMONIC:
            raise AssemblerError(
                f"unknown mnemonic {line.mnemonic!r}", line.number
            )
        op = OPCODES_BY_MNEMONIC[line.mnemonic]
        ops = line.operands
        expected = {
            Format.R3: 3, Format.I2: 3, Format.LI: 2, Format.MOV: 2,
            Format.LOAD: 2, Format.STORE: 2, Format.BR: 3, Format.J: 1,
            Format.JR: 1, Format.N0: 0,
        }[op.format]
        if len(ops) != expected:
            raise AssemblerError(
                f"{op.mnemonic} expects {expected} operand(s), got {len(ops)}",
                line.number,
            )
        reg = self._resolve_register
        val = self._resolve_value
        n = line.number
        try:
            if op.format == Format.R3:
                return Instruction(
                    op=op, rd=reg(ops[0], n), rs=reg(ops[1], n),
                    rt=reg(ops[2], n),
                )
            if op.format == Format.I2:
                return Instruction(
                    op=op, rd=reg(ops[0], n), rs=reg(ops[1], n),
                    imm=val(ops[2], n),
                )
            if op.format == Format.LI:
                return Instruction(op=op, rd=reg(ops[0], n), imm=val(ops[1], n))
            if op.format == Format.MOV:
                return Instruction(op=op, rd=reg(ops[0], n), rs=reg(ops[1], n))
            if op.format == Format.LOAD:
                offset, base = self._split_mem_operand(ops[1], n)
                return Instruction(op=op, rd=reg(ops[0], n), rs=base, imm=offset)
            if op.format == Format.STORE:
                offset, base = self._split_mem_operand(ops[1], n)
                return Instruction(op=op, rt=reg(ops[0], n), rs=base, imm=offset)
            if op.format == Format.BR:
                return Instruction(
                    op=op, rs=reg(ops[0], n), rt=reg(ops[1], n),
                    target=val(ops[2], n),
                )
            if op.format == Format.J:
                return Instruction(op=op, target=val(ops[0], n))
            if op.format == Format.JR:
                return Instruction(op=op, rs=reg(ops[0], n))
            return Instruction(op=op)
        except IsaError as exc:
            raise AssemblerError(str(exc), n) from exc

    def _build_data(self) -> None:
        for addr, kind, operands in self._data_items:
            if kind == ".word":
                for offset, text in enumerate(operands):
                    value = self._resolve_value(text, 0)
                    if value:
                        self._memory[addr + offset] = value
            # .space contributes only layout; memory defaults to zero.


def assemble(source: str, name: str = "program") -> Program:
    """Assemble Z-ISA source text into a :class:`Program` (one-shot helper)."""
    return Assembler().assemble(source, name=name)
