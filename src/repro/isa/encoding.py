"""Binary encoding of Z-ISA instructions.

Each instruction encodes to a fixed-size 128-bit word pair:

* high word (64 bits): ``opcode`` (8 bits) | ``rd`` (6) | ``rs`` (6) |
  ``rt`` (6) | 38 bits of zero padding.  Absent register operands encode
  as 0; the decoder knows from the opcode's format which fields are real.
* low word (64 bits): the immediate or resolved target, as a 64-bit two's
  complement value (0 when absent).

The encoding exists to pin down a concrete binary representation (it gives
programs a definite size in bytes, used by the timing model's checkpoint
accounting) and to support encode/decode round-trip testing.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import IsaError
from repro.isa.instructions import (
    Format,
    Instruction,
    Opcode,
    OPCODES_BY_NUMBER,
)

#: Size of one encoded instruction, in bytes.
INSTRUCTION_BYTES = 16

_MASK64 = (1 << 64) - 1


def _to_u64(value: int) -> int:
    """Two's complement 64-bit encoding of a Python int."""
    if not -(1 << 63) <= value < (1 << 63):
        raise IsaError(f"immediate {value} does not fit in 64 bits")
    return value & _MASK64


def _from_u64(value: int) -> int:
    """Inverse of :func:`_to_u64`."""
    return value - (1 << 64) if value >= (1 << 63) else value


def encode_instruction(instr: Instruction) -> Tuple[int, int]:
    """Encode one instruction to its (high, low) 64-bit word pair."""
    if isinstance(instr.target, str):
        raise IsaError(f"cannot encode unresolved target {instr.target!r}")
    high = (
        (instr.op.number << 56)
        | ((instr.rd or 0) << 50)
        | ((instr.rs or 0) << 44)
        | ((instr.rt or 0) << 38)
    )
    if instr.imm is not None:
        low = _to_u64(instr.imm)
    elif instr.target is not None:
        low = _to_u64(instr.target)
    else:
        low = 0
    return high, low


def decode_instruction(high: int, low: int) -> Instruction:
    """Decode a (high, low) word pair back into an :class:`Instruction`."""
    opnum = (high >> 56) & 0xFF
    if opnum not in OPCODES_BY_NUMBER:
        raise IsaError(f"unknown opcode number {opnum}")
    op = OPCODES_BY_NUMBER[opnum]
    rd = (high >> 50) & 0x3F
    rs = (high >> 44) & 0x3F
    rt = (high >> 38) & 0x3F
    value = _from_u64(low & _MASK64)
    fmt = op.format
    if fmt == Format.R3:
        return Instruction(op=op, rd=rd, rs=rs, rt=rt)
    if fmt == Format.I2:
        return Instruction(op=op, rd=rd, rs=rs, imm=value)
    if fmt == Format.LI:
        return Instruction(op=op, rd=rd, imm=value)
    if fmt == Format.MOV:
        return Instruction(op=op, rd=rd, rs=rs)
    if fmt == Format.LOAD:
        return Instruction(op=op, rd=rd, rs=rs, imm=value)
    if fmt == Format.STORE:
        return Instruction(op=op, rt=rt, rs=rs, imm=value)
    if fmt == Format.BR:
        return Instruction(op=op, rs=rs, rt=rt, target=value)
    if fmt == Format.J:
        return Instruction(op=op, target=value)
    if fmt == Format.JR:
        return Instruction(op=op, rs=rs)
    return Instruction(op=op)


def encode_program_words(code: Iterable[Instruction]) -> List[int]:
    """Encode a code sequence to a flat list of 64-bit words."""
    words: List[int] = []
    for instr in code:
        high, low = encode_instruction(instr)
        words.extend((high, low))
    return words


def decode_program_words(words: Iterable[int]) -> List[Instruction]:
    """Inverse of :func:`encode_program_words`."""
    words = list(words)
    if len(words) % 2:
        raise IsaError("encoded program has an odd number of words")
    return [
        decode_instruction(words[i], words[i + 1])
        for i in range(0, len(words), 2)
    ]


def code_size_bytes(code: Iterable[Instruction]) -> int:
    """Size of the encoded text section in bytes."""
    return sum(INSTRUCTION_BYTES for _ in code)
