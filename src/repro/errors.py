"""Exception hierarchy for the MSSP reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IsaError(ReproError):
    """Malformed instruction, operand, or encoding."""


class AssemblerError(ReproError):
    """Syntax or semantic error while assembling a program.

    Carries the 1-based source line number when it is known.
    """

    def __init__(self, message: str, line: int = 0):
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ExecutionError(ReproError):
    """Runtime fault in the sequential interpreter."""


class InvalidPcError(ExecutionError):
    """The program counter left the program's text section."""

    def __init__(self, pc: int, text_size: int):
        super().__init__(f"pc {pc} outside program text [0, {text_size})")
        self.pc = pc
        self.text_size = text_size


class StepLimitExceeded(ExecutionError):
    """A bounded run exhausted its instruction budget without halting."""

    def __init__(self, limit: int):
        super().__init__(f"execution exceeded the step limit of {limit} instructions")
        self.limit = limit


class AnalysisError(ReproError):
    """Control-flow or dataflow analysis could not be completed."""


class DistillError(ReproError):
    """The distiller could not produce a distilled program."""


class CheckFailure(ReproError):
    """A static soundness check reported errors.

    Raised by the distiller's ``verify_after_each_pass`` debug mode the
    moment a pass breaks an invariant.  Carries the offending pass name
    and the error findings (see :mod:`repro.analysis.checker`), each of
    which knows its check ID, block, and instruction provenance.
    """

    def __init__(self, message, pass_name=None, findings=()):
        self.pass_name = pass_name
        self.findings = tuple(findings)
        details = "; ".join(f.render() for f in self.findings[:3])
        if details:
            message = f"{message}: {details}"
        if len(self.findings) > 3:
            message += f" (+{len(self.findings) - 3} more)"
        super().__init__(message)


class MsspError(ReproError):
    """Violation of an internal invariant of the MSSP engine."""


class ProtectedAccessError(ReproError):
    """A speculative execution touched a protected (non-idempotent) region.

    Raised by the slave's memory view *before* the access is performed;
    the engine converts it into a task abort followed by non-speculative
    recovery, which performs the access exactly once.
    """

    def __init__(self, address: int, is_store: bool):
        kind = "store to" if is_store else "load from"
        super().__init__(f"speculative {kind} protected address {address}")
        self.address = address
        self.is_store = is_store


class TimingError(ReproError):
    """Inconsistent timing-model configuration or trace."""


class WorkloadError(ReproError):
    """Unknown workload or invalid workload parameters."""
