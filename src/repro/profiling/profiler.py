"""Execution profiler.

Runs a program under the sequential interpreter with an observer that
feeds a :class:`~repro.profiling.profile_data.Profile`.  This plays the
role of the paper's offline training run: the distiller consumes the
resulting profile to decide which branches to assert, which code is cold,
which loads are specializable, and where to place fork points.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.machine.interpreter import DEFAULT_STEP_LIMIT, run
from repro.machine.semantics import StepEffect
from repro.machine.state import ArchState
from repro.profiling.profile_data import (
    BranchProfile,
    LoadProfile,
    Profile,
    StoreProfile,
)


class Profiler:
    """Observer that accumulates a :class:`Profile` during a run."""

    def __init__(self, program: Program):
        self.profile = Profile(
            program_name=program.name, code_length=len(program.code)
        )

    def observe(
        self, pc: int, instr: Instruction, effect: StepEffect, state: ArchState
    ) -> None:
        profile = self.profile
        profile.total_instructions += 1
        profile.exec_counts[pc] += 1
        if instr.is_branch:
            branch = profile.branches.get(pc)
            if branch is None:
                branch = profile.branches.setdefault(pc, BranchProfile())
            if effect.taken:
                branch.taken += 1
            else:
                branch.not_taken += 1
        elif effect.mem_addr is not None:
            if effect.is_store:
                profile.stored_addresses.add(effect.mem_addr)
                store = profile.stores.get(pc)
                if store is None:
                    store = profile.stores.setdefault(pc, StoreProfile())
                store.observe(effect.mem_addr)
            else:
                profile.loaded_addresses.add(effect.mem_addr)
                load = profile.loads.get(pc)
                if load is None:
                    load = profile.loads.setdefault(pc, LoadProfile())
                load.observe(effect.mem_addr, effect.mem_value)


def profile_program(
    program: Program,
    state: Optional[ArchState] = None,
    max_steps: int = DEFAULT_STEP_LIMIT,
) -> Profile:
    """Run ``program`` to halt and return its execution profile."""
    profiler = Profiler(program)
    run(program, state=state, max_steps=max_steps, observer=profiler.observe)
    return profiler.profile


def profile_many(
    program: Program, states: Iterable[ArchState],
    max_steps: int = DEFAULT_STEP_LIMIT,
) -> Profile:
    """Profile the same program over several inputs and merge the results."""
    merged: Optional[Profile] = None
    for state in states:
        current = profile_program(program, state=state, max_steps=max_steps)
        merged = current if merged is None else merged.merge(current)
    if merged is None:
        raise ValueError("profile_many needs at least one input state")
    return merged
