"""Execution profiling: the distiller's training-run substrate."""

from repro.profiling.profile_data import (
    BranchProfile,
    LoadProfile,
    Profile,
    VALUE_HISTOGRAM_CAP,
)
from repro.profiling.profiler import Profiler, profile_many, profile_program

__all__ = [
    "BranchProfile",
    "LoadProfile",
    "Profile",
    "VALUE_HISTOGRAM_CAP",
    "Profiler",
    "profile_many",
    "profile_program",
]
