"""Profile data model: what one training run teaches the distiller.

A :class:`Profile` aggregates, per static instruction:

* execution counts (hot/cold classification, fork placement weights);
* branch taken/not-taken counts (branch bias, for assertion conversion);
* loaded-value histograms, capped at a small number of distinct values
  (value specialization candidates);
* the set of store-target addresses seen anywhere in the run (an address
  that was never stored is *read-only for this input*, the precondition
  for specializing loads from it).

Profiles are plain data: they can be merged (multiple training inputs)
and serialized to/from dicts for caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Distinct loaded values tracked per static load before a load is
#: declared polymorphic (and thus never specialized).
VALUE_HISTOGRAM_CAP = 4


@dataclass
class LoadProfile:
    """Observed behaviour of one static load instruction."""

    count: int = 0
    #: value -> occurrences, only while ``not polymorphic``.
    values: Dict[int, int] = field(default_factory=dict)
    #: addresses this load touched (capped alongside values).
    addresses: Set[int] = field(default_factory=set)
    polymorphic: bool = False

    def observe(self, address: int, value: int) -> None:
        self.count += 1
        if self.polymorphic:
            return
        self.values[value] = self.values.get(value, 0) + 1
        self.addresses.add(address)
        if len(self.values) > VALUE_HISTOGRAM_CAP:
            self.polymorphic = True
            self.values.clear()
            self.addresses.clear()

    def dominant_value(self) -> Optional[Tuple[int, float]]:
        """The most frequent value and its frequency share, if tracked."""
        if self.polymorphic or not self.values:
            return None
        value, count = max(self.values.items(), key=lambda item: item[1])
        return value, count / self.count


@dataclass
class StoreProfile:
    """Observed behaviour of one static store instruction."""

    count: int = 0
    #: addresses this store targeted (capped; see ``polymorphic``).
    addresses: Set[int] = field(default_factory=set)
    polymorphic: bool = False

    #: Distinct target addresses tracked before giving up.  Generous —
    #: store-elimination needs the *full* address set to be sound-for-
    #: performance (an unknown target might be loaded elsewhere).
    ADDRESS_CAP = 4096

    def observe(self, address: int) -> None:
        self.count += 1
        if self.polymorphic:
            return
        self.addresses.add(address)
        if len(self.addresses) > self.ADDRESS_CAP:
            self.polymorphic = True
            self.addresses.clear()


@dataclass
class BranchProfile:
    """Taken/not-taken counts of one static conditional branch."""

    taken: int = 0
    not_taken: int = 0

    @property
    def count(self) -> int:
        return self.taken + self.not_taken

    @property
    def bias(self) -> float:
        """Frequency of the *dominant* direction (0.5 .. 1.0)."""
        if not self.count:
            return 0.0
        return max(self.taken, self.not_taken) / self.count

    @property
    def dominant_taken(self) -> bool:
        """True when the dominant direction is 'taken'."""
        return self.taken >= self.not_taken


@dataclass
class Profile:
    """Aggregate execution profile of one program on one (or more) inputs."""

    program_name: str
    code_length: int
    total_instructions: int = 0
    exec_counts: List[int] = field(default_factory=list)
    branches: Dict[int, BranchProfile] = field(default_factory=dict)
    loads: Dict[int, LoadProfile] = field(default_factory=dict)
    stores: Dict[int, StoreProfile] = field(default_factory=dict)
    stored_addresses: Set[int] = field(default_factory=set)
    loaded_addresses: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.exec_counts:
            self.exec_counts = [0] * self.code_length

    # -- queries ---------------------------------------------------------------

    def exec_count(self, pc: int) -> int:
        return self.exec_counts[pc]

    def branch_bias(self, pc: int) -> Optional[BranchProfile]:
        return self.branches.get(pc)

    def block_count(self, start_pc: int) -> int:
        """Execution count of the block beginning at ``start_pc``."""
        return self.exec_counts[start_pc]

    def hotness(self, pc: int) -> float:
        """Fraction of all dynamic instructions spent at ``pc``."""
        if not self.total_instructions:
            return 0.0
        return self.exec_counts[pc] / self.total_instructions

    def is_cold(self, pc: int, threshold: float = 0.0) -> bool:
        """True when ``pc`` executed no more than ``threshold`` of the run."""
        return self.hotness(pc) <= threshold

    def stable_load_value(
        self, pc: int, min_count: int = 2, min_share: float = 1.0
    ) -> Optional[int]:
        """The provably-specializable value of the load at ``pc``, if any.

        Requires: the load executed at least ``min_count`` times, one value
        accounts for at least ``min_share`` of executions, and *every*
        address the load touched was never the target of any store in the
        profiled run.
        """
        load = self.loads.get(pc)
        if load is None or load.polymorphic or load.count < min_count:
            return None
        dominant = load.dominant_value()
        if dominant is None:
            return None
        value, share = dominant
        if share < min_share:
            return None
        if load.addresses & self.stored_addresses:
            return None
        return value

    def dead_store_addresses(self, pc: int, min_count: int = 1) -> Optional[Set[int]]:
        """Target addresses of the store at ``pc``, if provably unread.

        Returns the address set when the store executed at least
        ``min_count`` times, its full target set is known (not
        polymorphic), and none of its targets was ever loaded anywhere in
        the training runs — the precondition for eliminating the store
        from the *distilled* program (the original program always keeps
        its stores; architected state stays exact either way).
        """
        store = self.stores.get(pc)
        if store is None or store.polymorphic or store.count < min_count:
            return None
        if not store.addresses or store.addresses & self.loaded_addresses:
            return None
        return set(store.addresses)

    # -- merging and serialization ------------------------------------------------

    def merge(self, other: "Profile") -> "Profile":
        """Pointwise sum of two profiles of the *same* program."""
        if (other.program_name, other.code_length) != (
            self.program_name, self.code_length,
        ):
            raise ValueError("cannot merge profiles of different programs")
        merged = Profile(self.program_name, self.code_length)
        merged.total_instructions = (
            self.total_instructions + other.total_instructions
        )
        merged.exec_counts = [
            a + b for a, b in zip(self.exec_counts, other.exec_counts)
        ]
        for source in (self.branches, other.branches):
            for pc, branch in source.items():
                target = merged.branches.setdefault(pc, BranchProfile())
                target.taken += branch.taken
                target.not_taken += branch.not_taken
        for source in (self.loads, other.loads):
            for pc, load in source.items():
                target = merged.loads.setdefault(pc, LoadProfile())
                target.count += load.count
                if load.polymorphic:
                    target.polymorphic = True
                    target.values.clear()
                    target.addresses.clear()
                elif not target.polymorphic:
                    for value, count in load.values.items():
                        target.values[value] = target.values.get(value, 0) + count
                    target.addresses |= load.addresses
                    if len(target.values) > VALUE_HISTOGRAM_CAP:
                        target.polymorphic = True
                        target.values.clear()
                        target.addresses.clear()
        for source in (self.stores, other.stores):
            for pc, store in source.items():
                target = merged.stores.setdefault(pc, StoreProfile())
                target.count += store.count
                if store.polymorphic:
                    target.polymorphic = True
                    target.addresses.clear()
                elif not target.polymorphic:
                    target.addresses |= store.addresses
                    if len(target.addresses) > StoreProfile.ADDRESS_CAP:
                        target.polymorphic = True
                        target.addresses.clear()
        merged.stored_addresses = self.stored_addresses | other.stored_addresses
        merged.loaded_addresses = self.loaded_addresses | other.loaded_addresses
        return merged

    # -- serialization (JSON-compatible dicts, for profile caching) ------------

    def to_dict(self) -> Dict:
        """A JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "program_name": self.program_name,
            "code_length": self.code_length,
            "total_instructions": self.total_instructions,
            "exec_counts": list(self.exec_counts),
            "branches": {
                str(pc): {"taken": b.taken, "not_taken": b.not_taken}
                for pc, b in self.branches.items()
            },
            "loads": {
                str(pc): {
                    "count": l.count,
                    "values": {str(v): c for v, c in l.values.items()},
                    "addresses": sorted(l.addresses),
                    "polymorphic": l.polymorphic,
                }
                for pc, l in self.loads.items()
            },
            "stores": {
                str(pc): {
                    "count": s.count,
                    "addresses": sorted(s.addresses),
                    "polymorphic": s.polymorphic,
                }
                for pc, s in self.stores.items()
            },
            "stored_addresses": sorted(self.stored_addresses),
            "loaded_addresses": sorted(self.loaded_addresses),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Profile":
        """Rebuild a profile serialized with :meth:`to_dict`."""
        profile = cls(
            program_name=data["program_name"],
            code_length=data["code_length"],
            total_instructions=data["total_instructions"],
            exec_counts=list(data["exec_counts"]),
        )
        for pc, fields in data["branches"].items():
            profile.branches[int(pc)] = BranchProfile(
                taken=fields["taken"], not_taken=fields["not_taken"]
            )
        for pc, fields in data["loads"].items():
            profile.loads[int(pc)] = LoadProfile(
                count=fields["count"],
                values={int(v): c for v, c in fields["values"].items()},
                addresses=set(fields["addresses"]),
                polymorphic=fields["polymorphic"],
            )
        for pc, fields in data["stores"].items():
            profile.stores[int(pc)] = StoreProfile(
                count=fields["count"],
                addresses=set(fields["addresses"]),
                polymorphic=fields["polymorphic"],
            )
        profile.stored_addresses = set(data["stored_addresses"])
        profile.loaded_addresses = set(data["loaded_addresses"])
        return profile

    def summary(self) -> Dict[str, float]:
        """Headline statistics for reports."""
        biased = [
            b for b in self.branches.values() if b.count >= 2 and b.bias >= 0.99
        ]
        executed = sum(1 for c in self.exec_counts if c > 0)
        return {
            "total_instructions": float(self.total_instructions),
            "static_code": float(self.code_length),
            "static_executed": float(executed),
            "static_coverage": executed / self.code_length if self.code_length else 0.0,
            "branch_sites": float(len(self.branches)),
            "highly_biased_branches": float(len(biased)),
        }
