"""Control-flow graph construction for Z-ISA programs.

Blocks are maximal straight-line instruction runs; edges come from branch
targets, fall-through, jumps, calls (``jal``) and returns (``jr``).

Indirect-jump caveat: the Z-ISA's only indirect control transfer is
``jr``.  The CFG assumes the call/return discipline the workload suite
follows — ``jr`` is only used to return from a ``jal`` — and therefore
gives every ``jr`` block edges to all *return sites* (the instruction
after each ``jal``).  This is conservative for the distiller's purposes
(it never removes a block some ``jr`` might reach) but would be unsound
for arbitrary computed jumps; the profiler's dynamic edge counts are used
to cross-check it in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


@dataclass(frozen=True)
class BasicBlock:
    """A maximal single-entry straight-line run of instructions.

    ``start`` is the pc of the first instruction; ``end`` is one past the
    pc of the last.  The block's instructions are ``program.code[start:end]``.
    """

    index: int
    start: int
    end: int
    instructions: Tuple[Instruction, ...]

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def terminator(self) -> Instruction:
        """The last instruction (which may or may not be a real terminator)."""
        return self.instructions[-1]

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock(#{self.index} [{self.start}, {self.end}))"


@dataclass
class ControlFlowGraph:
    """Blocks plus successor/predecessor edge maps (by block index)."""

    program: Program
    blocks: List[BasicBlock]
    successors: Dict[int, List[int]] = field(default_factory=dict)
    predecessors: Dict[int, List[int]] = field(default_factory=dict)
    #: Block index containing each pc.
    block_of_pc: Dict[int, int] = field(default_factory=dict)

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[self.block_of_pc[self.program.entry]]

    def block_at(self, pc: int) -> BasicBlock:
        """The block containing ``pc``."""
        return self.blocks[self.block_of_pc[pc]]

    def block_starting_at(self, pc: int) -> Optional[BasicBlock]:
        """The block whose first instruction is at ``pc``, if any."""
        block = self.blocks[self.block_of_pc[pc]] if pc in self.block_of_pc else None
        return block if block is not None and block.start == pc else None

    def succ_blocks(self, block: BasicBlock) -> List[BasicBlock]:
        return [self.blocks[i] for i in self.successors[block.index]]

    def pred_blocks(self, block: BasicBlock) -> List[BasicBlock]:
        return [self.blocks[i] for i in self.predecessors[block.index]]

    def reachable_from_entry(self) -> FrozenSet[int]:
        """Indices of blocks reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry_block.index]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.successors[index])
        return frozenset(seen)

    def edge_list(self) -> List[Tuple[int, int]]:
        """All (source block, target block) edges, sorted."""
        return sorted(
            (src, dst)
            for src, dsts in self.successors.items()
            for dst in dsts
        )

    # -- stable public views -------------------------------------------------

    def succ_map(self) -> Dict[int, List[int]]:
        """Successor edges keyed by block *start pc* (a defensive copy)."""
        return {
            block.start: [self.blocks[i].start for i in self.successors[block.index]]
            for block in self.blocks
        }

    def pred_map(self) -> Dict[int, List[int]]:
        """Predecessor edges keyed by block *start pc* (a defensive copy)."""
        return {
            block.start: [self.blocks[i].start for i in self.predecessors[block.index]]
            for block in self.blocks
        }

    def reachable_from(self, block_indices) -> FrozenSet[int]:
        """Indices of blocks reachable from any of ``block_indices``."""
        seen: Set[int] = set()
        stack = [i for i in block_indices]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.successors[index])
        return frozenset(seen)


def _find_leaders(program: Program) -> Set[int]:
    leaders: Set[int] = {0, program.entry}
    for pc, instr in enumerate(program.code):
        if instr.op is Opcode.FORK:
            continue  # fork targets point into a *different* program
        if isinstance(instr.target, int):
            leaders.add(instr.target)
        if instr.is_terminator and pc + 1 < len(program.code):
            leaders.add(pc + 1)
        if instr.op is Opcode.JAL and pc + 1 < len(program.code):
            leaders.add(pc + 1)  # return site
    return leaders


def _return_sites(program: Program) -> List[int]:
    return [
        pc + 1
        for pc, instr in enumerate(program.code)
        if instr.op is Opcode.JAL and pc + 1 < len(program.code)
    ]


def build_cfg(program: Program, jr_targets=None) -> ControlFlowGraph:
    """Build the control-flow graph of ``program``.

    ``jr_targets`` optionally names additional pcs every ``jr`` may reach.
    Distilled programs have no ``jal`` (calls are lowered to ``li ra`` +
    ``j``), so without it their ``jr`` blocks would have no successors;
    passing the pc map's ``jr_table`` values restores the conservative
    return edges the original-program CFG gets from its call sites.
    """
    extra_jr = sorted(
        {int(t) for t in (jr_targets or ()) if 0 <= int(t) < len(program.code)}
    )
    leaders = sorted(_find_leaders(program) | set(extra_jr))
    size = len(program.code)
    blocks: List[BasicBlock] = []
    block_of_pc: Dict[int, int] = {}
    boundaries = leaders + [size]
    for index, start in enumerate(leaders):
        end = boundaries[index + 1]
        if end <= start:
            raise AnalysisError(f"empty block at pc {start}")
        block = BasicBlock(
            index=index, start=start, end=end,
            instructions=tuple(program.code[start:end]),
        )
        blocks.append(block)
        for pc in block.pcs:
            block_of_pc[pc] = index

    return_sites = _return_sites(program) + extra_jr
    successors: Dict[int, List[int]] = {}
    predecessors: Dict[int, List[int]] = {b.index: [] for b in blocks}
    for block in blocks:
        succ_pcs = _successor_pcs(block, size, return_sites)
        indices: List[int] = []
        for pc in succ_pcs:
            if pc not in block_of_pc:
                raise AnalysisError(
                    f"block #{block.index} targets pc {pc} outside program"
                )
            target_index = block_of_pc[pc]
            if target_index not in indices:
                indices.append(target_index)
        successors[block.index] = indices
        for target_index in indices:
            predecessors[target_index].append(block.index)
    return ControlFlowGraph(
        program=program, blocks=blocks, successors=successors,
        predecessors=predecessors, block_of_pc=block_of_pc,
    )


def _successor_pcs(
    block: BasicBlock, program_size: int, return_sites: List[int]
) -> List[int]:
    last = block.terminator
    last_pc = block.end - 1
    if last.op is Opcode.HALT:
        return []
    if last.is_branch:
        fall = [last_pc + 1] if last_pc + 1 < program_size else []
        return fall + [int(last.target)]
    if last.op is Opcode.J:
        return [int(last.target)]
    if last.op is Opcode.JAL:
        return [int(last.target)]
    if last.op is Opcode.JR:
        return list(return_sites)
    # Fall-through into the next leader.
    return [last_pc + 1] if last_pc + 1 < program_size else []
