"""Generic abstract-interpretation dataflow over Z-ISA control-flow graphs.

The solver is the textbook worklist algorithm over a join-semilattice,
parameterized by an :class:`AbstractDomain`:

* *forward* problems propagate block out-states to successors, *backward*
  problems propagate block in-states to predecessors;
* states join at merge points (``join`` must be the domain's least upper
  bound modulo conservatism: over-approximating is sound, under- is not);
* *widening* guarantees termination on domains with infinite ascending
  chains (intervals): after a block has been visited ``widen_after``
  times, ``widen(old, new)`` replaces the join, and domains jump growing
  bounds to their extremes.

Domain transfer functions read each instruction through the decode
layer's per-pc metadata (:attr:`repro.machine.decoded.DecodedProgram.meta`)
rather than re-dispatching on raw :class:`Instruction` objects, so the
facts the analysis reasons over are exactly the facts the executing
closures were compiled from — any decoder drift is caught by ``DEC002``
before it can skew an analysis.

Three concrete domains ship with the engine:

* :class:`ConstantDomain` — classic constant propagation.  Abstract
  values are exact 64-bit constants or ``UNKNOWN``; arithmetic reuses
  the interpreter's own op tables (:mod:`repro.machine.semantics`), so
  the abstract evaluation of a constant-operand instruction is *the*
  concrete semantics, wrap and all.
* :class:`IntervalDomain` — value ranges ``[lo, hi]`` over the signed
  64-bit integers, with widening to the register's representable range.
  Any operation whose exact result range could leave the representable
  range goes to ``TOP`` (wraparound makes the true range a union of up
  to two intervals; one conservative interval would be [MIN, MAX] anyway).
* :class:`TaintDomain` — a may-taint bit per register plus one for
  memory, seeded with the registers the distilled program writes (the
  "written-by-distillation" taint the speculation-safety prover builds
  on): any value data-dependent on a seeded register or on tainted
  memory is tainted.

All three satisfy the soundness property the hypothesis suite checks:
for any program state reachable at a pc, the concrete register values
are contained in the abstract in-state of the block at that pc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generic, List, Optional, TypeVar

from repro.analysis.cfg import BasicBlock, ControlFlowGraph
from repro.isa.instructions import Opcode
from repro.isa.registers import NUM_REGS, RA, ZERO
from repro.machine.decoded import decode
from repro.machine.semantics import _BRANCH_OPS, _I2_OPS, _R3_OPS
from repro.machine.state import wrap64

State = TypeVar("State")

#: Signed 64-bit representable range (the machine wraps into it).
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


class AbstractDomain(Generic[State]):
    """A join-semilattice of abstract states with a transfer function.

    Subclasses define the state type, the lattice operations, and
    per-instruction transfer.  States must be treated as immutable by
    the solver's clients; ``transfer`` returns a fresh state (or the
    input unchanged).
    """

    #: ``"forward"`` or ``"backward"``.
    direction: str = "forward"

    def initial(self) -> State:
        """The boundary state (at entry for forward problems)."""
        raise NotImplementedError

    def join(self, a: State, b: State) -> State:
        """Least upper bound (or a sound over-approximation of it)."""
        raise NotImplementedError

    def widen(self, old: State, new: State) -> State:
        """Accelerate convergence; default: plain join (finite domains)."""
        return self.join(old, new)

    def transfer(self, state: State, pc: int, meta: tuple) -> State:
        """Abstractly execute the instruction at ``pc``.

        ``meta`` is the decode layer's fact tuple for the instruction:
        ``(op name, rd, rs, rt, imm, target, pc + 1, zero-sink)``.
        """
        raise NotImplementedError


@dataclass
class DataflowSolution(Generic[State]):
    """Fixpoint states per block (both ends, whatever the direction)."""

    cfg: ControlFlowGraph
    domain: AbstractDomain[State]
    #: Abstract state at block entry (forward: joined over predecessors).
    block_in: Dict[int, State]
    #: Abstract state at block exit.
    block_out: Dict[int, State]
    #: Worklist iterations the solver spent reaching the fixpoint.
    iterations: int = 0

    def state_before(self, pc: int) -> State:
        """The abstract state immediately before ``pc`` (forward only)."""
        block = self.cfg.block_at(pc)
        state = self.block_in[block.index]
        meta = decode(self.cfg.program).meta
        for cursor in range(block.start, pc):
            state = self.domain.transfer(state, cursor, meta[cursor])
        return state


def solve(
    cfg: ControlFlowGraph,
    domain: AbstractDomain[State],
    widen_after: int = 3,
) -> DataflowSolution[State]:
    """Run ``domain`` to a fixpoint over ``cfg`` with the worklist solver.

    ``widen_after`` bounds how many times a block may be re-joined before
    widening kicks in; 0 widens at every join (coarsest, fastest).
    """
    meta = decode(cfg.program).meta
    forward = domain.direction == "forward"
    if forward:
        edges_in = cfg.predecessors
        edges_out = cfg.successors
    else:
        edges_in = cfg.successors
        edges_out = cfg.predecessors

    def apply_block(block: BasicBlock, state: State) -> State:
        pcs = block.pcs if forward else reversed(block.pcs)
        for pc in pcs:
            state = domain.transfer(state, pc, meta[pc])
        return state

    #: Blocks with no in-edges in the traversal direction carry the
    #: boundary state; forward problems also seed the entry block (it
    #: can have in-edges — loop headers — yet still starts the program).
    boundary: Dict[int, bool] = {
        b.index: not edges_in[b.index] for b in cfg.blocks
    }
    if forward:
        boundary[cfg.entry_block.index] = True

    state_in: Dict[int, Optional[State]] = {b.index: None for b in cfg.blocks}
    state_out: Dict[int, Optional[State]] = {b.index: None for b in cfg.blocks}
    visits: Dict[int, int] = {b.index: 0 for b in cfg.blocks}
    worklist: List[int] = [b.index for b in cfg.blocks]
    if not forward:
        worklist.reverse()
    queued = set(worklist)
    iterations = 0
    while worklist:
        index = worklist.pop(0)
        queued.discard(index)
        iterations += 1
        joined: Optional[State] = domain.initial() if boundary[index] else None
        for pred in edges_in[index]:
            pred_out = state_out[pred]
            if pred_out is None:
                continue
            joined = pred_out if joined is None else domain.join(
                joined, pred_out
            )
        if joined is None:
            continue  # unreachable in this direction so far
        old_in = state_in[index]
        if old_in is not None:
            visits[index] += 1
            if visits[index] > widen_after:
                joined = domain.widen(old_in, joined)
            else:
                joined = domain.join(old_in, joined)
            if joined == old_in:
                continue
        state_in[index] = joined
        state_out[index] = apply_block(cfg.blocks[index], joined)
        for succ in edges_out[index]:
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)

    initial = domain.initial()
    block_in = {
        i: (s if s is not None else initial) for i, s in state_in.items()
    }
    block_out = {
        i: (s if s is not None else initial) for i, s in state_out.items()
    }
    return DataflowSolution(
        cfg=cfg, domain=domain, block_in=block_in, block_out=block_out,
        iterations=iterations,
    )


def is_fixpoint(solution: DataflowSolution) -> bool:
    """Re-apply every transfer once: a true fixpoint must not move.

    The ``DF001`` lint check calls this on a (possibly deserialized or
    mutated) solution; the solver's own output always passes.
    """
    cfg, domain = solution.cfg, solution.domain
    meta = decode(cfg.program).meta
    forward = domain.direction == "forward"
    edges_in = cfg.predecessors if forward else cfg.successors
    for block in cfg.blocks:
        state = solution.block_in[block.index]
        for pred in edges_in[block.index]:
            # In-states must still cover every in-edge contribution.
            contribution = solution.block_out[pred]
            if domain.join(state, contribution) != state:
                return False
        pcs = block.pcs if forward else reversed(block.pcs)
        for pc in pcs:
            state = domain.transfer(state, pc, meta[pc])
        if domain.join(solution.block_out[block.index], state) != (
            solution.block_out[block.index]
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------

#: Per-register abstract value: an exact int, or UNKNOWN (top).  States
#: are tuples of length NUM_REGS for cheap hashing/equality.
UNKNOWN = None

ConstState = tuple


class ConstantDomain(AbstractDomain[ConstState]):
    """Forward constant propagation over the register file.

    Memory is not modeled: every load is ``UNKNOWN``.  ``r0`` is the
    architectural constant 0 in every state.
    """

    direction = "forward"

    def initial(self) -> ConstState:
        # The machine zero-initializes the register file.
        return tuple(0 for _ in range(NUM_REGS))

    def join(self, a: ConstState, b: ConstState) -> ConstState:
        if a == b:
            return a
        return tuple(
            x if x == y else UNKNOWN for x, y in zip(a, b)
        )

    def transfer(self, state: ConstState, pc: int, meta: tuple) -> ConstState:
        op_name, rd, rs, rt, imm, _target, _nxt, _sink = meta
        op = Opcode[op_name]
        if op in _R3_OPS:
            a, b = state[rs], state[rt]
            value = (
                wrap64(_R3_OPS[op](a, b))
                if a is not UNKNOWN and b is not UNKNOWN else UNKNOWN
            )
            return self._set(state, rd, value)
        if op in _I2_OPS:
            a = state[rs]
            value = (
                wrap64(_I2_OPS[op](a, imm)) if a is not UNKNOWN else UNKNOWN
            )
            return self._set(state, rd, value)
        if op is Opcode.LI:
            return self._set(state, rd, wrap64(imm))
        if op is Opcode.MOV:
            return self._set(state, rd, state[rs])
        if op is Opcode.LW:
            return self._set(state, rd, UNKNOWN)
        if op is Opcode.JAL:
            return self._set(state, RA, pc + 1)
        return state  # stores, branches, jumps, halt, nop, fork

    @staticmethod
    def _set(state: ConstState, rd: int, value) -> ConstState:
        if rd == ZERO:
            return state
        out = list(state)
        out[rd] = value
        return tuple(out)


# ---------------------------------------------------------------------------
# Value ranges (intervals)
# ---------------------------------------------------------------------------

#: One register's range: an inclusive (lo, hi) pair within the signed
#: 64-bit integers.  TOP_RANGE is the whole representable range.
TOP_RANGE = (INT64_MIN, INT64_MAX)

IntervalState = tuple


def _range_exact(lo: int, hi: int) -> tuple:
    """An exact candidate range, conservatively widened on wraparound."""
    if lo < INT64_MIN or hi > INT64_MAX:
        return TOP_RANGE
    return (lo, hi)


class IntervalDomain(AbstractDomain[IntervalState]):
    """Forward value-range analysis over the register file.

    Transfer computes exact end-point ranges for the monotone-friendly
    operations (add/sub/mul by constant sign analysis is overkill here:
    products take all four corner combinations) and falls back to
    ``TOP_RANGE`` whenever 64-bit wraparound could split the true range.
    Widening jumps a growing bound straight to the representable extreme.
    """

    direction = "forward"

    def initial(self) -> IntervalState:
        return tuple((0, 0) for _ in range(NUM_REGS))

    def join(self, a: IntervalState, b: IntervalState) -> IntervalState:
        if a == b:
            return a
        return tuple(
            (min(x[0], y[0]), max(x[1], y[1])) for x, y in zip(a, b)
        )

    def widen(self, old: IntervalState, new: IntervalState) -> IntervalState:
        out = []
        for (olo, ohi), (nlo, nhi) in zip(old, new):
            lo = olo if nlo >= olo else INT64_MIN
            hi = ohi if nhi <= ohi else INT64_MAX
            out.append((lo, hi))
        return tuple(out)

    def transfer(
        self, state: IntervalState, pc: int, meta: tuple
    ) -> IntervalState:
        op_name, rd, rs, rt, imm, _target, _nxt, _sink = meta
        op = Opcode[op_name]
        if op in _R3_OPS:
            return self._set(state, rd, self._binary(op, state[rs], state[rt]))
        if op in _I2_OPS:
            r3 = _I2_TO_R3[op]
            return self._set(state, rd, self._binary(r3, state[rs], (imm, imm)))
        if op is Opcode.LI:
            value = wrap64(imm)
            return self._set(state, rd, (value, value))
        if op is Opcode.MOV:
            return self._set(state, rd, state[rs])
        if op is Opcode.LW:
            return self._set(state, rd, TOP_RANGE)
        if op is Opcode.JAL:
            return self._set(state, RA, (pc + 1, pc + 1))
        return state

    @staticmethod
    def _set(state: IntervalState, rd: int, value: tuple) -> IntervalState:
        if rd == ZERO:
            return state
        out = list(state)
        out[rd] = value
        return tuple(out)

    @staticmethod
    def _binary(op: Opcode, a: tuple, b: tuple) -> tuple:
        alo, ahi = a
        blo, bhi = b
        if op is Opcode.ADD:
            return _range_exact(alo + blo, ahi + bhi)
        if op is Opcode.SUB:
            return _range_exact(alo - bhi, ahi - blo)
        if op is Opcode.MUL:
            corners = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
            return _range_exact(min(corners), max(corners))
        if op in (Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE):
            fn = _R3_OPS[op]
            if alo == ahi and blo == bhi:
                value = fn(alo, blo)
                return (value, value)
            # Comparison results are always 0/1; decide when the ranges
            # force the answer.
            if op is Opcode.SLT and ahi < blo:
                return (1, 1)
            if op is Opcode.SLT and alo >= bhi:
                return (0, 0)
            if op is Opcode.SLE and ahi <= blo:
                return (1, 1)
            if op is Opcode.SLE and alo > bhi:
                return (0, 0)
            return (0, 1)
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.DIV, Opcode.MOD,
                  Opcode.SLL, Opcode.SRL, Opcode.SRA):
            if alo == ahi and blo == bhi:
                value = wrap64(_R3_OPS[op](alo, blo))
                return (value, value)
            if op is Opcode.AND and blo == bhi and bhi >= 0:
                return (0, bhi)  # masking with a non-negative constant
            if op is Opcode.MOD and blo == bhi and bhi > 0 and alo >= 0:
                return (0, bhi - 1)
            return TOP_RANGE
        return TOP_RANGE


#: I2 opcodes expressed through their R3 sibling for range transfer.
_I2_TO_R3 = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.MULI: Opcode.MUL,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}


# ---------------------------------------------------------------------------
# Written-by-distillation taint
# ---------------------------------------------------------------------------

#: Taint state: (frozenset of tainted registers, memory-tainted bit).
TaintState = tuple


class TaintDomain(AbstractDomain[TaintState]):
    """May-taint propagation from a seed register set.

    Seeded with the registers the distilled program writes, the fixpoint
    answers "which original-program values could be data-dependent on
    master-written state?" — the coarse, purely data-flow ancestor of the
    speculation-safety prover's divergence analysis (which additionally
    models control and per-pc faithfulness).  A store of a tainted value
    (or through a tainted address) taints memory as a whole; loads from
    tainted memory taint their destination.
    """

    direction = "forward"

    def __init__(self, seed_regs: FrozenSet[int], seed_mem: bool = False):
        self.seed_regs = frozenset(r for r in seed_regs if r != ZERO)
        self.seed_mem = seed_mem

    def initial(self) -> TaintState:
        return (self.seed_regs, self.seed_mem)

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        return (a[0] | b[0], a[1] or b[1])

    def transfer(self, state: TaintState, pc: int, meta: tuple) -> TaintState:
        op_name, rd, rs, rt, imm, _target, _nxt, _sink = meta
        op = Opcode[op_name]
        tainted, mem = state
        if op in _R3_OPS:
            return self._set(state, rd, rs in tainted or rt in tainted)
        if op in _I2_OPS:
            return self._set(state, rd, rs in tainted)
        if op is Opcode.LI:
            return self._set(state, rd, False)
        if op is Opcode.MOV:
            return self._set(state, rd, rs in tainted)
        if op is Opcode.LW:
            return self._set(state, rd, mem or rs in tainted)
        if op is Opcode.SW:
            if rs in tainted or rt in tainted:
                return (tainted, True)
            return state
        if op is Opcode.JAL:
            return self._set(state, RA, False)
        return state

    @staticmethod
    def _set(state: TaintState, rd: int, dirty: bool) -> TaintState:
        tainted, mem = state
        if rd == ZERO:
            return state
        if dirty:
            if rd in tainted:
                return state
            return (tainted | {rd}, mem)
        if rd not in tainted:
            return state
        return (tainted - {rd}, mem)


def distill_write_taint(
    cfg: ControlFlowGraph, distilled_program
) -> DataflowSolution[TaintState]:
    """Solve :class:`TaintDomain` seeded with the distilled write set."""
    seeds = frozenset(
        reg
        for instr in distilled_program.code
        for reg in instr.defs()
        if reg != ZERO
    )
    return solve(cfg, TaintDomain(seeds))


__all__ = [
    "AbstractDomain",
    "ConstantDomain",
    "DataflowSolution",
    "INT64_MAX",
    "INT64_MIN",
    "IntervalDomain",
    "TOP_RANGE",
    "TaintDomain",
    "UNKNOWN",
    "distill_write_taint",
    "is_fixpoint",
    "solve",
]
