"""Speculation-safety prover: which distilled live-ins are *provably* right?

MSSP verifies every task live-in dynamically.  This module closes the loop
statically: it aligns the distilled program with the original through the
pc map's per-instruction provenance, runs a divergence dataflow analysis
along the original program's CFG, and classifies every register that can be
a task live-in at each fork anchor:

* ``PROVEN`` — on every path into the anchor, the master's value for the
  register provably equals the architected (sequential) value.  Verify may
  skip comparing these cells; a squash on one is an analysis soundness bug
  (the engine turns it into a hard :class:`~repro.errors.CheckFailure`).
* ``STABLE`` — not proven equal, but the register is provably never
  written by the original program anywhere reachable from a fork anchor,
  so its checkpointed value cannot go stale *between* fork points.
* ``UNPROVEN`` — everything else; these are exactly the cells dynamic
  verification exists for (and the distiller's re-targeting candidates).

Soundness model
---------------

The abstract state flows along *original* CFG edges and tracks, per
register, whether the master's view provably equals the sequential view at
the corresponding point ("EQ"), plus one bit each for control alignment
and memory agreement.  The alignment between the two programs is rebuilt
instruction by instruction and never trusted:

* every distilled instruction must be *accounted for* — carrying
  provenance, or a recognizably synthesized artifact (fork prologue
  countdown on scratch registers, re-materialized jumps, trap block);
* every mapped instruction must be *faithful* — byte-identical modulo
  retargeted branch labels — or its definitions are poisoned on both
  sides;
* every control transfer's continuation is checked by resolving where the
  master actually goes next (:meth:`_Prover._resolve`) against where the
  original program says it should (:meth:`_Prover._normalize`).

Anything unexpected — corrupted masters from fault injection, hand-built
pc maps without provenance, garbage masters — makes the prover *bail*:
the report marks every cell UNPROVEN, which is always sound (the runtime
simply verifies everything, as it did before this module existed).

Distilled-side speculation (value specialization, store elimination,
asserted branches) is modelled as divergence: an asserted branch keeps the
agreeing edge control-exact and poisons the disagreeing edge with every
register the master could still write from its position (a reachable-defs
sweep over the *distilled* CFG).  Memory cells are never statically
skipped — ``CellVersions`` already covers them dynamically — but the
memory-agreement bit is tracked because faithful loads depend on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, RA, ZERO, register_name

__all__ = [
    "CellClass",
    "RegionSafety",
    "SafetyReport",
    "prove_safety",
]


class CellClass(enum.Enum):
    """Static verdict for one live-in register at one fork anchor."""

    PROVEN = "proven"
    STABLE = "stable"
    UNPROVEN = "unproven"


@dataclass(frozen=True)
class RegionSafety:
    """Safety classification of one distilled region (one fork anchor)."""

    #: Original pc the region's tasks begin at.
    anchor: int
    #: live-in register -> classification.
    cells: Mapping[int, CellClass] = field(default_factory=dict)
    #: True if the master's memory view provably matches at the anchor.
    mem_proven: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", dict(self.cells))

    @property
    def proven_regs(self) -> FrozenSet[int]:
        return frozenset(
            r for r, cls in self.cells.items() if cls is CellClass.PROVEN
        )

    def counts(self) -> Dict[str, int]:
        out = {cls.value: 0 for cls in CellClass}
        for cls in self.cells.values():
            out[cls.value] += 1
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "anchor": self.anchor,
            "mem_proven": self.mem_proven,
            "cells": {
                register_name(reg): cls.value
                for reg, cls in sorted(self.cells.items())
            },
            "counts": self.counts(),
        }


@dataclass(frozen=True)
class SafetyReport:
    """Per-region safety classification for one distillation artifact."""

    #: anchor pc -> region classification.
    regions: Mapping[int, RegionSafety] = field(default_factory=dict)
    #: True if the prover could not align the programs; every cell is
    #: UNPROVEN and ``bail_reason`` says why.  Always sound.
    bailed: bool = False
    bail_reason: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", dict(self.regions))

    def proven_for(self, anchor: int) -> FrozenSet[int]:
        """Registers verify may skip for tasks starting at ``anchor``."""
        region = self.regions.get(anchor)
        return region.proven_regs if region is not None else frozenset()

    def counts(self) -> Dict[str, int]:
        out = {cls.value: 0 for cls in CellClass}
        for region in self.regions.values():
            for key, value in region.counts().items():
                out[key] += value
        return out

    @property
    def total_proven(self) -> int:
        return self.counts()[CellClass.PROVEN.value]

    def to_json(self) -> Dict[str, object]:
        return {
            "bailed": self.bailed,
            "bail_reason": self.bail_reason,
            "counts": self.counts(),
            "regions": [
                self.regions[anchor].to_json()
                for anchor in sorted(self.regions)
            ],
        }


class _Bail(Exception):
    """Internal: alignment failed; the report degrades to all-UNPROVEN."""


#: Sentinel original-pc meaning "control provably reaches a halt/trap".
_HALT = -1

#: Abstract state: (divergent registers, control diverged, memory diverged).
_State = Tuple[FrozenSet[int], bool, bool]

_CLEAN: _State = (frozenset(), False, False)


def _join(a: _State, b: _State) -> _State:
    return (a[0] | b[0], a[1] or b[1], a[2] or b[2])


@dataclass
class _Facts:
    """Per-original-pc alignment facts, computed once before the fixpoint."""

    kind: str  # faithful | removed | unfaithful | wild | branch | assert
    #          # | jump | jal | jr | halt
    #: Definitions to poison (removed/unfaithful/wild kinds).
    poison_defs: FrozenSet[int] = frozenset()
    #: True if the instruction's memory effect diverges (removed/mutated sw).
    mem_break: bool = False
    #: Registers the master may still write after a control break here.
    break_poison: FrozenSet[int] = frozenset()
    #: For ``assert``: which original edge the master unconditionally takes.
    agree: Optional[str] = None  # "taken" | "fall"
    #: Faithful-branch directions whose distilled realization is the trap.
    pruned_taken: bool = False
    pruned_fall: bool = False
    #: Master provably halts at/after this instruction (trap retarget).
    master_halts: bool = False


class _Prover:
    def __init__(self, original: Program, distilled: Program, pc_map) -> None:
        self.original = original
        self.distilled = distilled
        self.pc_map = pc_map
        self.ocode = original.code
        self.dcode = distilled.code
        self.provenance: Dict[int, int] = dict(
            getattr(pc_map, "provenance", None) or {}
        )
        self.image: Dict[int, List[int]] = {}
        for dpc in sorted(self.provenance):
            self.image.setdefault(self.provenance[dpc], []).append(dpc)
        self._resolve_memo: Dict[int, object] = {}
        self._visiting = object()

    # -- top level ----------------------------------------------------------

    def prove(self) -> SafetyReport:
        self.ocfg = build_cfg(self.original)
        self.oliveness = compute_liveness(self.ocfg)
        self.anchors = sorted(self.pc_map.anchors)
        try:
            return self._prove_aligned()
        except _Bail as bail:
            return self._bail_report(str(bail))

    def _bail_report(self, reason: str) -> SafetyReport:
        regions = {}
        for anchor in self.anchors:
            block = self.ocfg.block_starting_at(anchor)
            live: FrozenSet[int] = frozenset()
            if block is not None:
                live = self.oliveness.block_live_in(block.index) - {ZERO}
            regions[anchor] = RegionSafety(
                anchor=anchor,
                cells={r: CellClass.UNPROVEN for r in live},
                mem_proven=False,
            )
        return SafetyReport(regions=regions, bailed=True, bail_reason=reason)

    def _prove_aligned(self) -> SafetyReport:
        if not self.provenance:
            raise _Bail("pc map carries no instruction provenance")
        for dpc, opc in self.provenance.items():
            if not 0 <= dpc < len(self.dcode) or not 0 <= opc < len(self.ocode):
                raise _Bail(f"provenance entry {dpc}->{opc} out of range")
        anchor_blocks = []
        for anchor in self.anchors:
            block = self.ocfg.block_starting_at(anchor)
            if block is None:
                raise _Bail(f"anchor {anchor} is not an original block leader")
            anchor_blocks.append(block.index)
        self.scratch = self._scratch_registers()
        self.dcfg = build_cfg(
            self.distilled, jr_targets=self.pc_map.jr_table.values()
        )
        self.reach_defs = self._reachable_defs()
        self._check_synthesized()
        seed_blocks = set(anchor_blocks)
        seed_blocks.add(self.ocfg.entry_block.index)
        reachable = self.ocfg.reachable_from(seed_blocks)
        self.facts: Dict[int, _Facts] = {}
        for index in reachable:
            for pc in self.ocfg.blocks[index].pcs:
                self.facts[pc] = self._classify(pc)
        in_states = self._fixpoint(seed_blocks)
        writable = self._writable_from(anchor_blocks)
        regions = {}
        for anchor, index in zip(self.anchors, anchor_blocks):
            state = in_states.get(index)
            live = sorted(self.oliveness.block_live_in(index) - {ZERO})
            cells: Dict[int, CellClass] = {}
            for reg in live:
                if state is None or reg not in state[0]:
                    cells[reg] = CellClass.PROVEN
                elif reg not in writable:
                    cells[reg] = CellClass.STABLE
                else:
                    cells[reg] = CellClass.UNPROVEN
            regions[anchor] = RegionSafety(
                anchor=anchor,
                cells=cells,
                mem_proven=state is None or not state[2],
            )
        return SafetyReport(regions=regions)

    # -- structural helpers -------------------------------------------------

    def _scratch_registers(self) -> FrozenSet[int]:
        """Registers the original program neither reads nor writes.

        The distiller's fork prologues compute stride countdowns in these;
        they can never appear in a task's live-in set, so distilled writes
        to them are invisible to verification.
        """
        touched: Set[int] = {ZERO}
        for instr in self.ocode:
            touched |= instr.uses() | instr.defs()
        return frozenset(range(NUM_REGS)) - frozenset(touched)

    def _reachable_defs(self) -> Dict[int, FrozenSet[int]]:
        """Per distilled block: registers writable from it (transitively)."""
        own: Dict[int, Set[int]] = {}
        for block in self.dcfg.blocks:
            defs: Set[int] = set()
            for instr in block.instructions:
                defs |= instr.defs()
            own[block.index] = (defs - {ZERO}) - self.scratch
        reach = {index: frozenset(defs) for index, defs in own.items()}
        changed = True
        while changed:
            changed = False
            for block in reversed(self.dcfg.blocks):
                index = block.index
                acc: Set[int] = set(own[index])
                for succ in self.dcfg.successors[index]:
                    acc |= reach[succ]
                frozen = frozenset(acc)
                if frozen != reach[index]:
                    reach[index] = frozen
                    changed = True
        return reach

    def _break_poison_at(self, dpcs) -> FrozenSet[int]:
        """Registers the master can still write from distilled pcs ``dpcs``.

        Used when the master's position at a control break is known to be
        one of ``dpcs``: the master proceeds from there along distilled CFG
        edges (jr edges via the jr table; a table miss traps, writing
        nothing).
        """
        poison: Set[int] = set()
        for dpc in dpcs:
            block = self.dcfg.block_at(dpc)
            for instr in block.instructions[dpc - block.start:]:
                poison |= instr.defs()
            for succ in self.dcfg.successors[block.index]:
                poison |= self.reach_defs[succ]
        return (frozenset(poison) - {ZERO}) - self.scratch

    def _resolve(self, dpc: int):
        """Original pc the distilled text at ``dpc`` next corresponds to.

        Walks through synthesized instructions (fork prologues, threading
        jumps) until it hits a provenance-carrying instruction, a provable
        halt (returns :data:`_HALT`), or something it cannot account for
        (returns ``None``).
        """
        if not 0 <= dpc < len(self.dcode):
            return None
        memo = self._resolve_memo
        if dpc in memo:
            cached = memo[dpc]
            return None if cached is self._visiting else cached
        memo[dpc] = self._visiting
        instr = self.dcode[dpc]
        result = None
        if dpc in self.provenance:
            # Landing anywhere but the *first* instruction of an original
            # pc's image (e.g. a corrupted jump into the middle of a jal
            # lowering pair, skipping its ``li ra``) is unaccountable.
            opc = self.provenance[dpc]
            result = opc if self.image[opc][0] == dpc else None
        elif instr.op is Opcode.HALT:
            result = _HALT
        elif instr.op in (Opcode.FORK, Opcode.NOP):
            result = self._resolve(dpc + 1)
        elif instr.op is Opcode.J:
            result = self._resolve(int(instr.target))
        elif instr.is_branch:
            allowed = self.scratch | {ZERO}
            if instr.rs in allowed and instr.rt in allowed:
                taken = self._resolve(int(instr.target))
                fall = self._resolve(dpc + 1)
                if taken is not None and taken == fall:
                    result = taken
        elif (
            not instr.is_terminator
            and not instr.is_load
            and not instr.is_store
        ):
            defs = instr.defs() - {ZERO}
            if defs and defs <= self.scratch:
                result = self._resolve(dpc + 1)
        memo[dpc] = result
        return result

    def _normalize(self, opc: int):
        """Original pc the master's text next has a counterpart for.

        Skips original instructions without distilled counterparts the way
        the master does: removed straight-line instructions fall through,
        elided jumps are followed, asserted-away branches fall through.
        """
        seen: Set[int] = set()
        pc = opc
        while True:
            if pc == _HALT:
                return _HALT
            if not 0 <= pc < len(self.ocode) or pc in seen:
                return None
            seen.add(pc)
            if self.image.get(pc):
                return pc
            instr = self.ocode[pc]
            if instr.op is Opcode.HALT:
                return _HALT
            if instr.op is Opcode.J:
                pc = int(instr.target)
            elif instr.is_branch:
                pc = pc + 1
            elif instr.op in (Opcode.JAL, Opcode.JR):
                return None
            else:
                pc = pc + 1

    def _check_synthesized(self) -> None:
        """Every provenance-less distilled instruction must be benign."""
        # Every fork in the text — wherever it sits — must be the fork
        # site the layout recorded for its anchor (resume[anchor] points
        # just past it).  A fork whose target disagrees ships a
        # checkpoint from an unrelated master position into another
        # anchor's task, so no per-anchor claim would cover it.
        for dpc, instr in enumerate(self.dcode):
            if instr.op is Opcode.FORK:
                if self.pc_map.resume.get(int(instr.target)) != dpc + 1:
                    raise _Bail(
                        f"fork at distilled pc {dpc} targets anchor "
                        f"{int(instr.target)} without a matching resume "
                        "entry"
                    )
        allowed_branch = self.scratch | {ZERO}
        for dpc, instr in enumerate(self.dcode):
            if dpc in self.provenance:
                continue
            op = instr.op
            if op in (Opcode.FORK, Opcode.NOP, Opcode.HALT):
                continue
            if op is Opcode.J:
                if self._resolve(int(instr.target)) is None:
                    raise _Bail(
                        f"synthesized jump at distilled pc {dpc} has an "
                        "unresolvable target"
                    )
                continue
            if instr.is_branch:
                if (
                    instr.rs in allowed_branch
                    and instr.rt in allowed_branch
                    and self._resolve(dpc) is not None
                ):
                    continue
                raise _Bail(
                    f"synthesized branch at distilled pc {dpc} is not a "
                    "scratch-register countdown"
                )
            if (
                not instr.is_terminator
                and not instr.is_load
                and not instr.is_store
            ):
                defs = instr.defs() - {ZERO}
                if defs and defs <= self.scratch:
                    continue
            raise _Bail(
                f"unaccounted synthesized instruction at distilled pc "
                f"{dpc}: {instr}"
            )

    def _continuation(self, next_dpc: int, next_opc: int) -> bool:
        """Check master/original agreement on what executes next.

        Returns True if the master provably halts instead (the caller
        prunes the flow); raises :class:`_Bail` on any mismatch.
        """
        got = self._resolve(next_dpc)
        if got == _HALT:
            return True
        expected = self._normalize(next_opc)
        if got is None or expected is None or got != expected:
            raise _Bail(
                f"control continuation mismatch: distilled pc {next_dpc} "
                f"resolves to {got}, original expects {expected}"
            )
        return False

    # -- per-pc classification ---------------------------------------------

    def _classify(self, opc: int) -> _Facts:
        instr = self.ocode[opc]
        op = instr.op
        mapped = self.image.get(opc, [])
        minstrs = [self.dcode[d] for d in mapped]
        if op is Opcode.HALT:
            if not mapped or (
                len(mapped) == 1 and minstrs[0].op is Opcode.HALT
            ):
                return _Facts("halt")
            raise _Bail(f"halt at original pc {opc} mapped to non-halt")
        if op is Opcode.J:
            return self._classify_jump(opc, instr, mapped, minstrs)
        if instr.is_branch:
            return self._classify_branch(opc, instr, mapped, minstrs)
        if op is Opcode.JAL:
            return self._classify_call(opc, instr, mapped, minstrs)
        if op is Opcode.JR:
            return self._classify_return(opc, instr, mapped, minstrs)
        return self._classify_straightline(opc, instr, mapped, minstrs)

    def _classify_straightline(self, opc, instr, mapped, minstrs) -> _Facts:
        if not mapped:
            return _Facts(
                "removed",
                poison_defs=instr.defs() - {ZERO},
                mem_break=instr.is_store,
            )
        if any(mi.is_terminator or mi.op is Opcode.FORK for mi in minstrs):
            raise _Bail(
                f"straight-line original pc {opc} mapped to a control "
                "transfer"
            )
        master_halts = self._continuation(mapped[-1] + 1, opc + 1)
        if len(mapped) == 1 and minstrs[0] == instr:
            return _Facts("faithful", master_halts=master_halts)
        poison: Set[int] = set(instr.defs())
        for mi in minstrs:
            poison |= mi.defs()
        return _Facts(
            "unfaithful",
            poison_defs=frozenset(poison) - {ZERO},
            mem_break=instr.is_store or any(mi.is_store for mi in minstrs),
            master_halts=master_halts,
        )

    def _classify_jump(self, opc, instr, mapped, minstrs) -> _Facts:
        if not mapped:
            # Elided by jump threading: the master falls through into the
            # target's (physically next) block; predecessors' continuation
            # checks already walked through this pc on both sides.
            return _Facts("jump")
        if len(mapped) == 1 and minstrs[0].op is Opcode.J:
            got = self._resolve(int(minstrs[0].target))
            if got == _HALT:
                return _Facts("jump", master_halts=True)
            expected = self._normalize(int(instr.target))
            if got is not None and got == expected:
                return _Facts("jump")
        raise _Bail(f"jump at original pc {opc} has no faithful counterpart")

    def _classify_branch(self, opc, instr, mapped, minstrs) -> _Facts:
        expected_taken = self._normalize(int(instr.target))
        expected_fall = self._normalize(opc + 1)
        if not mapped:
            # Asserted-not-taken: branch_removal popped it; the master
            # unconditionally falls through.
            if expected_fall == _HALT:
                return _Facts("assert", agree="fall", master_halts=True)
            if expected_fall is None:
                raise _Bail(
                    f"removed branch at original pc {opc} falls into "
                    "unmappable code"
                )
            landing = self.image.get(expected_fall, [])
            return _Facts(
                "assert",
                agree="fall",
                break_poison=self._break_poison_at(landing),
            )
        if len(mapped) != 1:
            raise _Bail(f"branch at original pc {opc} maps to {len(mapped)} "
                        "instructions")
        mi = minstrs[0]
        if mi.op is Opcode.J:
            # Asserted-taken (or retargeted to the trap by cold-code
            # removal): the master jumps unconditionally.
            got = self._resolve(int(mi.target))
            if got == _HALT:
                return _Facts("assert", master_halts=True)
            poison = self._break_poison_at(mapped)
            if got is not None and got == expected_taken:
                return _Facts("assert", agree="taken", break_poison=poison)
            if got is not None and got == expected_fall:
                return _Facts("assert", agree="fall", break_poison=poison)
            raise _Bail(
                f"asserted branch at original pc {opc} jumps to an "
                "unrelated location"
            )
        if mi.op is instr.op and mi.rs == instr.rs and mi.rt == instr.rt:
            pruned_taken = self._continuation(
                int(mi.target), int(instr.target)
            )
            pruned_fall = self._continuation(mapped[0] + 1, opc + 1)
            return _Facts(
                "branch",
                break_poison=self._break_poison_at(mapped),
                pruned_taken=pruned_taken,
                pruned_fall=pruned_fall,
            )
        raise _Bail(f"branch at original pc {opc} has no faithful "
                    "counterpart")

    def _classify_call(self, opc, instr, mapped, minstrs) -> _Facts:
        if not mapped:
            # Whole-block cold removal; master-aligned flow never gets
            # here (edges into the block resolve to the trap) — if it
            # does, the fixpoint bails.
            return _Facts("wild", poison_defs=frozenset({RA}))
        expected = self._normalize(int(instr.target))
        if len(mapped) == 2:
            li_i, j_i = minstrs
            if (
                li_i.op is Opcode.LI
                and li_i.rd == RA
                and li_i.imm == opc + 1
                and j_i.op is Opcode.J
            ):
                got = self._resolve(int(j_i.target))
                if got == _HALT:
                    return _Facts("jal", master_halts=True)
                if got is not None and got == expected:
                    return _Facts("jal")
        if len(mapped) == 1 and minstrs[0].op is Opcode.JAL:
            got = self._resolve(int(minstrs[0].target))
            if got == _HALT:
                return _Facts("jal", master_halts=True)
            if got is not None and got == expected:
                return _Facts("jal")
        raise _Bail(f"call at original pc {opc} has no faithful lowering")

    def _classify_return(self, opc, instr, mapped, minstrs) -> _Facts:
        if not mapped:
            return _Facts("wild")
        if (
            len(mapped) == 1
            and minstrs[0].op is Opcode.JR
            and minstrs[0].rs == instr.rs
        ):
            # The runtime translates the master's jr through the jr table
            # (an original return address on both sides); with an EQ link
            # register both programs return to corresponding pcs, and a
            # table miss is a master trap (forks nothing).
            return _Facts("jr", break_poison=self._break_poison_at(mapped))
        raise _Bail(f"return at original pc {opc} has no faithful "
                    "counterpart")

    # -- the divergence fixpoint -------------------------------------------

    def _fixpoint(self, seed_blocks) -> Dict[int, _State]:
        in_states: Dict[int, _State] = {}
        worklist = sorted(seed_blocks)
        for index in worklist:
            in_states[index] = _CLEAN
        while worklist:
            index = worklist.pop()
            edges = self._transfer_block(
                self.ocfg.blocks[index], in_states[index]
            )
            for succ, state in edges.items():
                old = in_states.get(succ)
                new = state if old is None else _join(old, state)
                if succ in seed_blocks:
                    new = _join(new, _CLEAN)
                if new != old:
                    in_states[succ] = new
                    if succ not in worklist:
                        worklist.append(succ)
        return in_states

    def _transfer_block(self, block, state: _State) -> Dict[int, _State]:
        div: Set[int] = set(state[0])
        cdiv, mdiv = state[1], state[2]
        last_pc = block.end - 1
        for pc in block.pcs:
            facts = self.facts[pc]
            instr = self.ocode[pc]
            kind = facts.kind
            if kind == "faithful":
                if instr.is_store:
                    if cdiv or instr.rs in div or instr.rt in div:
                        mdiv = True
                elif instr.is_load:
                    self._set(div, instr.rd,
                              cdiv or mdiv or instr.rs in div)
                elif instr.defs():
                    bad = cdiv or any(u in div for u in instr.uses())
                    self._set(div, instr.rd, bad)
            elif kind in ("removed", "unfaithful"):
                div |= facts.poison_defs
                if facts.mem_break:
                    mdiv = True
            elif kind == "wild":
                if not cdiv:
                    raise _Bail(
                        f"master-aligned flow reached a removed call/"
                        f"return at original pc {pc}"
                    )
                div |= facts.poison_defs
            elif kind == "jal":
                if cdiv:
                    div.add(RA)
                else:
                    div.discard(RA)
            if pc != last_pc and facts.master_halts and not cdiv:
                return {}
        current: _State = (frozenset(div), cdiv, mdiv)
        return self._edges_from(block, current)

    @staticmethod
    def _set(div: Set[int], reg: int, diverged: bool) -> None:
        if reg == ZERO:
            return
        if diverged:
            div.add(reg)
        else:
            div.discard(reg)

    def _edges_from(self, block, state: _State) -> Dict[int, _State]:
        last_pc = block.end - 1
        facts = self.facts[last_pc]
        instr = self.ocode[last_pc]
        div, cdiv, mdiv = state
        kind = facts.kind
        succs = self.ocfg.successors[block.index]
        if kind == "halt":
            return {}
        if facts.master_halts and not cdiv:
            return {}
        if kind in ("branch", "assert"):
            taken_block = self.ocfg.block_of_pc.get(int(instr.target))
            fall_block = self.ocfg.block_of_pc.get(last_pc + 1)
            broken: _State = (div | facts.break_poison, True, True)
            edges: Dict[int, _State] = {}
            if kind == "branch":
                if cdiv or instr.rs in div or instr.rt in div:
                    self._add_edge(edges, taken_block, broken)
                    self._add_edge(edges, fall_block, broken)
                else:
                    if not facts.pruned_taken:
                        self._add_edge(edges, taken_block, state)
                    if not facts.pruned_fall:
                        self._add_edge(edges, fall_block, state)
            else:  # assert
                if cdiv:
                    self._add_edge(edges, taken_block, state)
                    self._add_edge(edges, fall_block, state)
                elif facts.agree == "taken":
                    self._add_edge(edges, taken_block, state)
                    self._add_edge(edges, fall_block, broken)
                else:
                    self._add_edge(edges, fall_block, state)
                    self._add_edge(edges, taken_block, broken)
            return edges
        if kind == "jr":
            if cdiv or instr.rs in div:
                broken = (div | facts.break_poison, True, True)
                return {succ: broken for succ in succs}
            return {succ: state for succ in succs}
        # jump, jal, wild terminator, or plain fall-through.
        return {succ: state for succ in succs}

    @staticmethod
    def _add_edge(edges: Dict[int, _State], block_index, state: _State):
        if block_index is None:
            return
        if block_index in edges:
            edges[block_index] = _join(edges[block_index], state)
        else:
            edges[block_index] = state

    def _writable_from(self, anchor_blocks) -> FrozenSet[int]:
        """Registers the original may write anywhere reachable from a fork."""
        writable: Set[int] = set()
        for index in self.ocfg.reachable_from(anchor_blocks):
            for instr in self.ocfg.blocks[index].instructions:
                writable |= instr.defs()
        return frozenset(writable) - {ZERO}


def prove_safety(original: Program, distilled: Program, pc_map) -> SafetyReport:
    """Classify every fork anchor's live-in registers. Never raises.

    Any structural surprise — missing provenance, corrupted or synthetic
    masters, anchors that are not block leaders — degrades to a *bailed*
    report with every cell UNPROVEN, which the runtime treats exactly like
    the pre-analysis world: verify everything dynamically.
    """
    try:
        return _Prover(original, distilled, pc_map).prove()
    except _Bail as bail:  # pragma: no cover - _Prover.prove catches these
        return SafetyReport(bailed=True, bail_reason=str(bail))
    except Exception as exc:  # noqa: BLE001 - deliberate catch-all
        return SafetyReport(
            bailed=True,
            bail_reason=f"prover error: {type(exc).__name__}: {exc}",
        )
