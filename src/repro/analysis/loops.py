"""Natural-loop detection.

A back edge is a CFG edge ``u -> h`` whose target ``h`` dominates its
source ``u``; the natural loop of that edge is ``h`` plus every block that
can reach ``u`` without passing through ``h``.  Loops sharing a header are
merged.  Nesting depth is derived by containment.

The distiller uses loop headers as fork-point candidates (task boundaries
at loop iterations are what make MSSP tasks regular), so this analysis is
on the distillation critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dominators import DominatorTree


@dataclass(frozen=True)
class Loop:
    """One natural loop: its header block and full body (header included)."""

    header: int
    body: FrozenSet[int]
    back_edges: Tuple[Tuple[int, int], ...]
    depth: int = 1

    def __contains__(self, block_index: int) -> bool:
        return block_index in self.body

    def __len__(self) -> int:
        return len(self.body)


@dataclass
class LoopForest:
    """All natural loops of a CFG, with nesting depths."""

    loops: List[Loop] = field(default_factory=list)

    @property
    def headers(self) -> List[int]:
        return [loop.header for loop in self.loops]

    def loop_with_header(self, header: int) -> Loop:
        for loop in self.loops:
            if loop.header == header:
                return loop
        raise KeyError(header)

    def depth_of_block(self, block_index: int) -> int:
        """Nesting depth of a block (0 = not in any loop)."""
        return max(
            (loop.depth for loop in self.loops if block_index in loop),
            default=0,
        )

    def innermost_loop_of(self, block_index: int) -> Loop:
        candidates = [loop for loop in self.loops if block_index in loop]
        if not candidates:
            raise KeyError(block_index)
        return max(candidates, key=lambda loop: loop.depth)


def find_loops(cfg: ControlFlowGraph, domtree: DominatorTree) -> LoopForest:
    """Compute the natural-loop forest of ``cfg``."""
    reachable = set(domtree.reachable)
    back_edges: List[Tuple[int, int]] = []
    for src in reachable:
        for dst in cfg.successors[src]:
            if dst in reachable and domtree.dominates(dst, src):
                back_edges.append((src, dst))

    bodies: Dict[int, Set[int]] = {}
    edges_by_header: Dict[int, List[Tuple[int, int]]] = {}
    for src, header in back_edges:
        body = bodies.setdefault(header, {header})
        edges_by_header.setdefault(header, []).append((src, header))
        _grow_loop_body(cfg, header, src, body)

    loops: List[Loop] = []
    for header, body in bodies.items():
        depth = sum(
            1
            for other_header, other_body in bodies.items()
            if header in other_body
        )
        loops.append(
            Loop(
                header=header,
                body=frozenset(body),
                back_edges=tuple(sorted(edges_by_header[header])),
                depth=depth,
            )
        )
    loops.sort(key=lambda loop: (loop.depth, loop.header))
    return LoopForest(loops=loops)


def _grow_loop_body(
    cfg: ControlFlowGraph, header: int, latch: int, body: Set[int]
) -> None:
    """Add every block reaching ``latch`` without passing ``header``."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in body:
            continue
        body.add(block)
        stack.extend(cfg.predecessors[block])


def analyze_loops(cfg: ControlFlowGraph) -> LoopForest:
    """Build dominators and loops in one call."""
    return find_loops(cfg, DominatorTree(cfg))
