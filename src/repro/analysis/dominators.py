"""Dominator computation on the control-flow graph.

Implements the Cooper–Harvey–Kennedy iterative algorithm over a reverse
post-order traversal: simple, worst-case quadratic, and comfortably fast
at the CFG sizes this package sees (hundreds of blocks).

Blocks unreachable from the entry have no dominator information; queries
about them raise :class:`~repro.errors.AnalysisError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import ControlFlowGraph
from repro.errors import AnalysisError


class DominatorTree:
    """Immediate-dominator tree plus dominance queries."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self._rpo = _reverse_postorder(cfg)
        self._rpo_index = {b: i for i, b in enumerate(self._rpo)}
        self._idom = _compute_idoms(cfg, self._rpo, self._rpo_index)

    @property
    def reachable(self) -> List[int]:
        """Reachable block indices in reverse post-order."""
        return list(self._rpo)

    def idom(self, block_index: int) -> Optional[int]:
        """Immediate dominator of ``block_index`` (None for the entry)."""
        self._check(block_index)
        if block_index == self.cfg.entry_block.index:
            return None
        return self._idom[block_index]

    def dominates(self, a: int, b: int) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        self._check(a)
        self._check(b)
        entry = self.cfg.entry_block.index
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = None if node == entry else self._idom[node]
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, block_index: int) -> Set[int]:
        """All blocks dominating ``block_index`` (including itself)."""
        self._check(block_index)
        entry = self.cfg.entry_block.index
        out: Set[int] = set()
        node: Optional[int] = block_index
        while node is not None:
            out.add(node)
            node = None if node == entry else self._idom[node]
        return out

    def _check(self, block_index: int) -> None:
        if block_index not in self._idom and (
            block_index != self.cfg.entry_block.index
        ):
            raise AnalysisError(
                f"block #{block_index} unreachable from entry; "
                "no dominator information"
            )


def _reverse_postorder(cfg: ControlFlowGraph) -> List[int]:
    seen: Set[int] = set()
    order: List[int] = []

    def visit(index: int) -> None:
        stack = [(index, iter(cfg.successors[index]))]
        seen.add(index)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(cfg.successors[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(cfg.entry_block.index)
    order.reverse()
    return order


def _compute_idoms(
    cfg: ControlFlowGraph, rpo: List[int], rpo_index: Dict[int, int]
) -> Dict[int, int]:
    entry = cfg.entry_block.index
    idom: Dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == entry:
                continue
            preds = [
                p for p in cfg.predecessors[block]
                if p in idom  # processed & reachable
            ]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    idom.pop(entry)
    idom[entry] = entry  # conventional self-idom, hidden by DominatorTree.idom
    return idom


def build_dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Convenience constructor."""
    return DominatorTree(cfg)
