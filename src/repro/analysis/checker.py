"""Static soundness checker for Z-ISA programs, distiller IR, and pc maps.

MSSP's runtime correctness story never depends on the distiller (every
task is verified before commit), but an *unsound* distiller pass is still
a bug — it shows up as a mysterious squash storm instead of a diagnostic.
This module is the LLVM-verifier analogue for this codebase: a set of
cheap static checks, each with a stable ID, that pin every structural
invariant the distiller and the pc map are supposed to maintain.  See
``docs/static-checks.md`` for the catalogue and the paper/DESIGN.md
obligation each check discharges.

Four check layers, mirroring the artifacts:

* :func:`check_program` / :func:`check_code` — any flat Z-ISA
  instruction sequence: target ranges, ``jal`` link-register adjacency,
  may-reach-undef register dataflow, unreachable code, fall-off-the-end;
* :func:`check_ir` — the distiller's block IR between passes: name and
  successor integrity, ``TRAP_BLOCK`` edge discipline, fork use-set
  consistency against original-program liveness, ``orig_pc`` provenance;
* :func:`check_distillation` — the final distilled program against its
  :class:`~repro.distill.pc_map.PcMap`: resume/arrival placement, the
  return-pc (``jr``) table's layout round-trip, fork/anchor coverage;
* :func:`check_decoded` — a program's pre-decoded execution engine
  (:mod:`repro.machine.decoded`): cache identity discipline, decode
  metadata round-trip against the source instructions, superstep chain
  structure.

Checks *report*; they never raise.  The distiller's
``verify_after_each_pass`` debug mode and the ``repro lint`` CLI
subcommand turn error findings into :class:`~repro.errors.CheckFailure`
and a nonzero exit status respectively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, RA, ZERO

#: Check catalogue: stable ID -> one-line invariant.  ``docs/static-checks.md``
#: documents each entry; a test asserts the two stay in sync.
CHECKS: Dict[str, str] = {
    # -- flat program checks -------------------------------------------------
    "PROG001": "every branch/jump target lies inside the text section",
    "PROG002": "no unresolved symbolic (label) targets survive assembly",
    "PROG003": "no reachable path falls off the end of the text",
    "PROG004": "no reachable use of a register that may still be undefined",
    "PROG005": "all instructions are reachable from the entry point",
    "PROG006": "every jal has a return site (jal never ends the text)",
    "PROG007": "a halt instruction is reachable from the entry point",
    "PROG008": "jr only appears where return sites are known",
    # -- distiller IR checks -------------------------------------------------
    "IR001": "IR block names are unique",
    "IR002": "the IR entry block exists",
    "IR003": "every symbolic successor (target/fallthrough) names a block",
    "IR004": "the trap block is a lone halt with no successors",
    "IR005": "instruction provenance (orig_pc) points into the original text",
    "IR006": "each fork's use set covers original-program liveness at its anchor",
    "IR007": "required-adjacent fallthroughs (jal return sites) exist",
    "IR008": "all IR blocks are reachable from the entry block",
    "IR009": "no two forks share an anchor",
    "IR010": "every fork anchor is an original-program block leader",
    # -- pc-map / distilled-artifact checks ---------------------------------
    "MAP001": "every resume pc lies inside the distilled text",
    "MAP002": "each anchor resumes immediately after its own fork",
    "MAP003": "each arrival pc is the start of its anchor's distilled block",
    "MAP004": "the jr table round-trips return pcs through layout",
    "MAP005": "every fork instruction's target is a mapped anchor",
    "MAP006": "the pc map covers the original program's entry point",
    "MAP007": "every anchor is a valid original-program pc",
    # -- decoded execution-engine checks -------------------------------------
    "DEC001": "decoding is cached per program object and per mode",
    "DEC002": "every decoded closure's bound facts round-trip to its source "
              "instruction",
    "DEC003": "superstep chains stop exactly at block terminators, with "
              "correct halt flags",
    # -- superblock JIT checks ------------------------------------------------
    "JIT001": "jit compilation is cached per program object and per codegen "
              "mode, and regions start only at block leaders",
    "JIT002": "every compiled region's trace, source, and length round-trip "
              "from the program",
    "JIT003": "compiled regions reproduce per-step decoded execution on "
              "fuzzed machine states",
    "JIT004": "every promoted superblock link re-derives: link targets are "
              "compiled leaders inside the fused trace, and followed "
              "branches continue at their taken target",
    # -- memory-backend checks ------------------------------------------------
    "MEM001": "the flat paged memory backend and the dict backend observe "
              "identical ISA-visible state on a bounded differential run",
    # -- runtime event-stream checks ------------------------------------------
    "RT001": "tasks are judged strictly in fork order and committed tids "
             "strictly increase",
    "RT002": "a squash discards every in-flight successor: none is judged "
             "again before being re-forked",
    "RT003": "every 'redistilled' event is preceded by at least its "
             "embedded threshold of live-in squashes attributed to the "
             "re-distilled region",
    "RT004": "every accepted episode reaches exactly one terminal event "
             "(completed or shed) and no server worker ever exceeds its "
             "declared episode capacity",
    # -- dataflow / speculation-safety checks ---------------------------------
    "DF001": "every dataflow solution is a true fixpoint (one more transfer "
             "round does not move it)",
    "DF002": "abstract dataflow states contain every concretely reachable "
             "register state (bounded oracle run)",
    "DF003": "safety-report regions and pc-map fork anchors coincide",
    "DF004": "every statically classified safety cell is live-in at its "
             "anchor in the original program",
    "DF005": "no statically PROVEN live-in register mismatches at runtime "
             "(differential check-mode run)",
    # -- clock / simulation checks --------------------------------------------
    "SIM001": "every emitted runtime event carries a clock stamp and, per "
              "emitting actor, stamps never decrease across the stream",
    "SIM002": "the simulated ('sim') runtime's functional result is "
              "bit-identical to the eager engine's on the same episode",
    "SIM003": "the discrete-event cluster replay of a captured trace "
              "agrees with the analytic timing model at matching "
              "parameters (within float tolerance)",
}


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are soundness violations (the artifact breaks an
    invariant the engine or the distiller relies on); ``WARNING``
    findings are suspicious-but-legal (dead code, may-undefined reads —
    the machine zero-initializes registers, so these cannot fault).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class CheckFinding:
    """One diagnostic: a check ID, a severity, and a location."""

    check_id: str
    severity: Severity
    message: str
    #: Location in the checked artifact's own pc space (flat programs
    #: and distilled artifacts), when known.
    pc: Optional[int] = None
    #: IR block name, for IR-layer findings.
    block: Optional[str] = None
    #: Original-program provenance, when known.
    orig_pc: Optional[int] = None

    def location(self) -> str:
        parts: List[str] = []
        if self.block is not None:
            parts.append(f"block {self.block}")
        if self.pc is not None:
            parts.append(f"pc {self.pc}")
        if self.orig_pc is not None:
            parts.append(f"orig pc {self.orig_pc}")
        return ", ".join(parts) if parts else "program"

    def render(self) -> str:
        return (
            f"{self.severity.value}[{self.check_id}] "
            f"{self.location()}: {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        """The finding as the shared machine-readable schema.

        ``repro lint --format json`` and ``repro analyze --format json``
        both emit findings in exactly this shape.
        """
        return {
            "check_id": self.check_id,
            "severity": self.severity.value,
            "message": self.message,
            "pc": self.pc,
            "block": self.block,
            "orig_pc": self.orig_pc,
        }


@dataclass
class CheckReport:
    """All findings from one checker run over one artifact."""

    subject: str
    findings: List[CheckFinding] = field(default_factory=list)

    @property
    def errors(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error* findings exist (warnings are allowed)."""
        return not self.errors

    def extend(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)

    def render(self, show_warnings: bool = True) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{self.subject}: {status} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)"
        ]
        for finding in self.findings:
            if finding.severity is Severity.WARNING and not show_warnings:
                continue
            lines.append("  " + finding.render())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """The report as the shared machine-readable schema."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_json() for finding in self.findings],
        }


def _finding(
    report: CheckReport,
    check_id: str,
    severity: Severity,
    message: str,
    pc: Optional[int] = None,
    block: Optional[str] = None,
    orig_pc: Optional[int] = None,
) -> None:
    assert check_id in CHECKS, f"unregistered check id {check_id!r}"
    report.findings.append(
        CheckFinding(
            check_id=check_id, severity=severity, message=message,
            pc=pc, block=block, orig_pc=orig_pc,
        )
    )


# ---------------------------------------------------------------------------
# Layer 1: flat Z-ISA instruction sequences
# ---------------------------------------------------------------------------


def check_program(
    program: Program, subject: Optional[str] = None
) -> CheckReport:
    """Statically check an assembled :class:`Program`."""
    return check_code(
        program.code, program.entry, subject=subject or program.name
    )


def check_code(
    code: Sequence[Instruction],
    entry: int = 0,
    subject: str = "code",
    jr_targets: Iterable[int] = (),
) -> CheckReport:
    """Statically check a raw instruction sequence.

    Unlike the :class:`Program` constructor this never raises — it
    reports, which is what lets tests feed it deliberately corrupted
    code.  ``jr_targets`` supplies extra known indirect-jump landing
    sites (a distilled program's ``jr`` goes through the pc map's jr
    table; passing its values here lets reachability flow through
    returns).
    """
    report = CheckReport(subject=subject)
    size = len(code)
    if size == 0:
        _finding(report, "PROG003", Severity.ERROR, "program has no code")
        return report
    if not 0 <= entry < size:
        _finding(
            report, "PROG001", Severity.ERROR,
            f"entry point {entry} outside text [0, {size})",
        )
        return report

    # Structural per-instruction checks (targets, jal adjacency).
    return_sites = sorted(
        {pc + 1 for pc, i in enumerate(code) if i.op is Opcode.JAL}
        | {t for t in jr_targets if 0 <= t < size}
    )
    for pc, instr in enumerate(code):
        target = instr.target
        if isinstance(target, str):
            _finding(
                report, "PROG002", Severity.ERROR,
                f"unresolved symbolic target {target!r}", pc=pc,
            )
            continue
        if instr.op is Opcode.FORK:
            if not isinstance(target, int) or target < 0:
                _finding(
                    report, "PROG001", Severity.ERROR,
                    f"fork target {target!r} is not a valid original pc",
                    pc=pc,
                )
            continue
        if target is not None and not 0 <= target < size:
            _finding(
                report, "PROG001", Severity.ERROR,
                f"{instr.op.mnemonic} target {target} outside text "
                f"[0, {size})", pc=pc,
            )
        if instr.op is Opcode.JAL and pc + 1 >= size:
            _finding(
                report, "PROG006", Severity.ERROR,
                "jal at the last pc: its link register would point past "
                "the end of the text", pc=pc,
            )

    if report.errors:
        # Successor computation below assumes in-range targets.
        return report

    successors = _instruction_successors(code, return_sites)
    reachable = _reachable_pcs(successors, entry, size)

    # PROG003: fall-off-the-end, PROG007: reachable halt, PROG008: blind jr.
    halt_reachable = False
    for pc in sorted(reachable):
        instr = code[pc]
        if instr.op is Opcode.HALT:
            halt_reachable = True
        if instr.op is Opcode.JR and not return_sites:
            _finding(
                report, "PROG008", Severity.WARNING,
                "jr with no statically known return sites (no jal in this "
                "text and no jr table supplied)", pc=pc,
            )
        if size in successors[pc]:
            _finding(
                report, "PROG003", Severity.ERROR,
                "control can run past the end of the text "
                f"({instr.op.mnemonic} falls through to pc {size})", pc=pc,
            )
    if not halt_reachable:
        _finding(
            report, "PROG007", Severity.WARNING,
            "no halt instruction is reachable from the entry point",
        )

    # PROG005: unreachable code, reported as contiguous ranges.
    for start, end in _unreachable_ranges(reachable, size):
        span = f"pc {start}" if end == start + 1 else f"pcs {start}-{end - 1}"
        _finding(
            report, "PROG005", Severity.WARNING,
            f"unreachable code ({span}, {end - start} instructions)",
            pc=start,
        )

    _check_may_undef(report, code, successors, reachable, entry)
    return report


def _instruction_successors(
    code: Sequence[Instruction], return_sites: List[int]
) -> List[List[int]]:
    """Per-pc successor pcs; ``len(code)`` encodes falling off the end."""
    size = len(code)
    successors: List[List[int]] = []
    for pc, instr in enumerate(code):
        if instr.op is Opcode.HALT:
            successors.append([])
        elif instr.is_branch:
            successors.append([pc + 1, int(instr.target)])
        elif instr.op in (Opcode.J, Opcode.JAL):
            successors.append([int(instr.target)])
        elif instr.op is Opcode.JR:
            successors.append(list(return_sites))
        else:  # straight-line (fork included: sequentially it is a nop)
            successors.append([pc + 1])
    return successors


def _reachable_pcs(
    successors: List[List[int]], entry: int, size: int
) -> Set[int]:
    seen: Set[int] = set()
    stack = [entry]
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= size:
            continue
        seen.add(pc)
        stack.extend(successors[pc])
    return seen


def _unreachable_ranges(
    reachable: Set[int], size: int
) -> List[Tuple[int, int]]:
    """Maximal [start, end) runs of unreachable pcs."""
    ranges: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for pc in range(size + 1):
        dead = pc < size and pc not in reachable
        if dead and start is None:
            start = pc
        elif not dead and start is not None:
            ranges.append((start, pc))
            start = None
    return ranges


#: Bitmask with every register marked defined.
_ALL_DEFINED = (1 << NUM_REGS) - 1


def _check_may_undef(
    report: CheckReport,
    code: Sequence[Instruction],
    successors: List[List[int]],
    reachable: Set[int],
    entry: int,
) -> None:
    """PROG004: forward must-be-defined dataflow (bitmask lattice).

    A register is *may-undefined* at a pc if some path from the entry
    reaches that pc without writing it.  Reading one is legal (the
    machine zero-initializes the register file) but is either dead code
    or an unintended dependency on the boot value, so it is a warning.
    Registers are defined at entry only for ``r0`` (architecturally
    constant); ``jal`` defines ``ra``.
    """
    size = len(code)
    # defined_in[pc]: bitmask of registers defined on *every* path to pc.
    defined_in: Dict[int, int] = {pc: _ALL_DEFINED for pc in reachable}
    defined_in[entry] = 1 << ZERO
    worklist = [entry]
    while worklist:
        pc = worklist.pop()
        mask = defined_in[pc]
        instr = code[pc]
        for reg in instr.defs():
            mask |= 1 << reg
        if instr.op is Opcode.JAL:
            mask |= 1 << RA
        for succ in successors[pc]:
            if succ >= size or succ not in reachable:
                continue
            merged = defined_in[succ] & mask
            if merged != defined_in[succ]:
                defined_in[succ] = merged
                worklist.append(succ)
    seen: Set[Tuple[int, int]] = set()
    for pc in sorted(reachable):
        mask = defined_in[pc]
        for reg in sorted(code[pc].uses()):
            if reg == ZERO or mask & (1 << reg):
                continue
            if (pc, reg) in seen:
                continue
            seen.add((pc, reg))
            _finding(
                report, "PROG004", Severity.WARNING,
                f"r{reg} may be read before any definition "
                f"(defaults to the boot value 0)", pc=pc,
            )


# ---------------------------------------------------------------------------
# Layer 2: the distiller IR
# ---------------------------------------------------------------------------


def check_ir(
    ir,
    pass_name: Optional[str] = None,
    cfg=None,
    liveness=None,
) -> CheckReport:
    """Statically check a :class:`~repro.distill.ir.DistillIR` snapshot.

    ``pass_name`` labels the report after the pass that just ran (used
    by the distiller's ``verify_after_each_pass`` mode).  ``cfg`` and
    ``liveness`` are the original program's
    :class:`~repro.analysis.cfg.ControlFlowGraph` and
    :class:`~repro.analysis.liveness.LivenessInfo`; callers that already
    hold them (the distiller computes both once up front) pass them in
    so the per-pass fork checks stop recomputing them.
    """
    from repro.distill.ir import TRAP_BLOCK

    label = f"ir after {pass_name}" if pass_name else "ir"
    report = CheckReport(subject=f"{ir.program.name}: {label}")
    orig_size = len(ir.program.code)

    names: List[str] = [block.name for block in ir.blocks]
    name_set: Set[str] = set()
    for name in names:
        if name in name_set:
            _finding(
                report, "IR001", Severity.ERROR,
                "duplicate IR block name", block=name,
            )
        name_set.add(name)
    if ir.entry_name not in name_set:
        _finding(
            report, "IR002", Severity.ERROR,
            f"entry block {ir.entry_name!r} does not exist",
        )

    fork_sites: List[Tuple[str, object]] = []  # (block name, DInstr)
    for block in ir.blocks:
        last = block.last
        if last is not None and isinstance(last.instr.target, str):
            if last.instr.target not in name_set:
                _finding(
                    report, "IR003", Severity.ERROR,
                    f"terminator targets missing block "
                    f"{last.instr.target!r}",
                    block=block.name, orig_pc=last.orig_pc,
                )
        if block.fallthrough is not None and block.fallthrough not in name_set:
            _finding(
                report, "IR003", Severity.ERROR,
                f"fallthrough names missing block {block.fallthrough!r}",
                block=block.name,
            )
        if block.requires_adjacent_fallthrough and block.fallthrough is None:
            _finding(
                report, "IR007", Severity.ERROR,
                "block requires an adjacent fallthrough but has none "
                "(its jal return site was deleted)", block=block.name,
            )
        if block.name == TRAP_BLOCK:
            shape_ok = (
                len(block.instrs) == 1
                and block.instrs[0].instr.op is Opcode.HALT
                and block.fallthrough is None
            )
            if not shape_ok:
                _finding(
                    report, "IR004", Severity.ERROR,
                    "trap block must be a lone halt with no successors",
                    block=block.name,
                )
        for dinstr in block.instrs:
            if dinstr.orig_pc is not None and not (
                0 <= dinstr.orig_pc < orig_size
            ):
                _finding(
                    report, "IR005", Severity.ERROR,
                    f"provenance orig_pc {dinstr.orig_pc} outside the "
                    f"original text [0, {orig_size})", block=block.name,
                )
            if dinstr.instr.op is Opcode.FORK:
                fork_sites.append((block.name, dinstr))

    _check_ir_forks(report, ir, fork_sites, orig_size, cfg, liveness)

    if ir.entry_name in name_set:
        reachable = ir.reachable_names()
        for block in ir.blocks:
            if block.name not in reachable:
                _finding(
                    report, "IR008", Severity.WARNING,
                    "IR block unreachable from the entry block "
                    "(awaiting pruning)", block=block.name,
                )
    return report


def _check_ir_forks(
    report: CheckReport,
    ir,
    fork_sites: List[Tuple[str, object]],
    orig_size: int,
    cfg=None,
    liveness=None,
) -> None:
    """IR006/IR009/IR010: fork anchors and their liveness use sets."""
    if not fork_sites:
        return
    if cfg is None:
        from repro.analysis.cfg import build_cfg

        cfg = build_cfg(ir.program)
    if liveness is None:
        from repro.analysis.liveness import compute_liveness

        liveness = compute_liveness(cfg)
    anchors_seen: Set[int] = set()
    for block_name, dinstr in fork_sites:
        target = dinstr.instr.target
        if not isinstance(target, int) or not 0 <= target < orig_size:
            _finding(
                report, "IR006", Severity.ERROR,
                f"fork target {target!r} is not an original-program pc",
                block=block_name,
            )
            continue
        if target in anchors_seen:
            _finding(
                report, "IR009", Severity.ERROR,
                f"duplicate fork anchor for original pc {target}",
                block=block_name, orig_pc=target,
            )
        anchors_seen.add(target)
        anchor_block = cfg.block_at(target)
        if anchor_block.start != target:
            _finding(
                report, "IR010", Severity.ERROR,
                f"fork anchor {target} is not a block leader in the "
                "original program", block=block_name, orig_pc=target,
            )
            continue
        if dinstr.uses_override is None:
            _finding(
                report, "IR006", Severity.ERROR,
                "fork carries no liveness use set (uses_override is None); "
                "DCE could delete the anchor's live-in producers",
                block=block_name, orig_pc=target,
            )
            continue
        required = {
            reg
            for reg in liveness.live_in[anchor_block.index]
            if reg != ZERO
        }
        missing = sorted(required - set(dinstr.uses_override))
        if missing:
            regs = ", ".join(f"r{reg}" for reg in missing)
            _finding(
                report, "IR006", Severity.ERROR,
                f"fork use set drops anchor-live registers {regs} "
                "(live at the anchor in the original program)",
                block=block_name, orig_pc=target,
            )


# ---------------------------------------------------------------------------
# Layer 3: the distilled artifact against its pc map
# ---------------------------------------------------------------------------


def check_distillation(
    original: Program,
    distilled: Program,
    pc_map,
    subject: Optional[str] = None,
) -> CheckReport:
    """Check the distilled program plus its :class:`PcMap` as one artifact."""
    report = check_code(
        distilled.code,
        distilled.entry,
        subject=subject or distilled.name,
        jr_targets=pc_map.jr_table.values(),
    )
    size_o = len(original.code)
    size_d = len(distilled.code)

    # Fork sites in the distilled text, keyed by original anchor pc.
    fork_by_anchor: Dict[int, int] = {}
    for pc, instr in enumerate(distilled.code):
        if instr.op is not Opcode.FORK:
            continue
        anchor = instr.target
        if not isinstance(anchor, int):
            continue  # PROG001 already reported
        if anchor in fork_by_anchor:
            _finding(
                report, "MAP002", Severity.ERROR,
                f"second fork for anchor {anchor} "
                f"(first at pc {fork_by_anchor[anchor]})",
                pc=pc, orig_pc=anchor,
            )
            continue
        fork_by_anchor[anchor] = pc
        if anchor not in pc_map.resume:
            _finding(
                report, "MAP005", Severity.ERROR,
                f"fork target {anchor} has no resume entry in the pc map "
                "(the engine could never restart the master after this "
                "task)", pc=pc, orig_pc=anchor,
            )

    if pc_map.entry_orig != original.entry:
        _finding(
            report, "MAP006", Severity.ERROR,
            f"pc map entry_orig {pc_map.entry_orig} differs from the "
            f"original entry {original.entry}",
        )

    block_starts = sorted(set(distilled.symbols.values()))
    for orig in sorted(pc_map.arrival):
        if orig not in pc_map.resume:
            _finding(
                report, "MAP003", Severity.ERROR,
                f"arrival entry for {orig}, which is not an anchor",
                orig_pc=orig,
            )
    for anchor in sorted(pc_map.resume):
        resume = pc_map.resume[anchor]
        if not 0 <= anchor < size_o:
            _finding(
                report, "MAP007", Severity.ERROR,
                f"anchor {anchor} outside the original text [0, {size_o})",
                orig_pc=anchor,
            )
            continue
        if not 0 <= resume < size_d:
            _finding(
                report, "MAP001", Severity.ERROR,
                f"resume pc {resume} outside the distilled text "
                f"[0, {size_d})", orig_pc=anchor,
            )
            continue
        fork_pc = fork_by_anchor.get(anchor)
        if fork_pc is not None:
            if resume != fork_pc + 1:
                _finding(
                    report, "MAP002", Severity.ERROR,
                    f"anchor resumes at {resume} but its fork sits at "
                    f"{fork_pc} (resume must be the pc immediately after "
                    "the fork, or a restarted master re-forks its open "
                    "task)", pc=resume, orig_pc=anchor,
                )
            _check_arrival(
                report, pc_map, anchor, fork_pc, block_starts, size_d
            )
        elif not (
            anchor == pc_map.entry_orig and resume == distilled.entry
        ):
            _finding(
                report, "MAP002", Severity.ERROR,
                f"anchor {anchor} has no fork in the distilled text and "
                "is not the entry fallback", pc=resume, orig_pc=anchor,
            )

    for ret_pc, dist_pc in sorted(pc_map.jr_table.items()):
        if not 0 <= ret_pc < size_o:
            _finding(
                report, "MAP004", Severity.ERROR,
                f"jr table key {ret_pc} outside the original text "
                f"[0, {size_o})", orig_pc=ret_pc,
            )
            continue
        if not 0 <= dist_pc < size_d:
            _finding(
                report, "MAP004", Severity.ERROR,
                f"jr table maps return pc {ret_pc} outside the distilled "
                f"text (to {dist_pc})", orig_pc=ret_pc,
            )
            continue
        laid_out = distilled.symbols.get(f"B{ret_pc}")
        if laid_out is None:
            _finding(
                report, "MAP004", Severity.ERROR,
                f"jr table return pc {ret_pc} has no distilled block "
                f"B{ret_pc} (its return site did not survive layout)",
                pc=dist_pc, orig_pc=ret_pc,
            )
        elif laid_out != dist_pc:
            _finding(
                report, "MAP004", Severity.ERROR,
                f"jr table maps return pc {ret_pc} to {dist_pc} but "
                f"layout placed block B{ret_pc} at {laid_out}",
                pc=dist_pc, orig_pc=ret_pc,
            )
    return report


def _check_arrival(
    report: CheckReport,
    pc_map,
    anchor: int,
    fork_pc: int,
    block_starts: List[int],
    size_d: int,
) -> None:
    """MAP003: the anchor's arrival pc is its fork block's first pc."""
    arrival = pc_map.arrival.get(anchor)
    if arrival is None:
        _finding(
            report, "MAP003", Severity.ERROR,
            f"fork anchor {anchor} has no arrival entry (the master "
            "could not count arrivals for strided tasks)",
            pc=fork_pc, orig_pc=anchor,
        )
        return
    if not 0 <= arrival < size_d:
        _finding(
            report, "MAP003", Severity.ERROR,
            f"arrival pc {arrival} outside the distilled text "
            f"[0, {size_d})", orig_pc=anchor,
        )
        return
    # The block holding the fork, per layout's own symbol table.
    containing = None
    for start in block_starts:
        if start <= fork_pc:
            containing = start
        else:
            break
    if arrival not in block_starts or arrival != containing:
        _finding(
            report, "MAP003", Severity.ERROR,
            f"arrival pc {arrival} is not the start of the block holding "
            f"the anchor's fork (expected {containing})",
            pc=arrival, orig_pc=anchor,
        )


# ---------------------------------------------------------------------------
# Layer 4: the pre-decoded execution engine
# ---------------------------------------------------------------------------


def check_decoded(
    program: Program, subject: Optional[str] = None
) -> CheckReport:
    """Check a program's decoding (:mod:`repro.machine.decoded`).

    The decoded engine bakes each instruction's operands, immediates,
    targets, and fall-through pc into a closure at decode time; a decoder
    bug would misexecute silently at full speed.  This layer re-derives
    the baked-in facts from the source :class:`Instruction` and compares
    them against the decoding actually served by the cache — so ``repro
    lint`` catches decoder/ISA drift (or a corrupted cache attachment)
    statically, before the differential tests have to.
    """
    from repro.machine.decoded import _decode_meta, decode

    report = CheckReport(subject=subject or f"{program.name}: decoded")
    decoded = decode(program)

    # DEC001: the cache returns one decoding per (program object, mode).
    if decode(program) is not decoded:
        _finding(
            report, "DEC001", Severity.ERROR,
            "repeated decode() calls returned distinct decodings for the "
            "same program object (cache attachment broken)",
        )
    if decode(program, oracle=True) is decoded:
        _finding(
            report, "DEC001", Severity.ERROR,
            "oracle-mode decode() returned the fast-mode decoding "
            "(modes must cache separately)",
        )

    # DEC002: per-pc decode metadata round-trips to the source text.
    size = len(program.code)
    if decoded.size != size or len(decoded.steppers) != size or (
        len(decoded.meta) != size
    ):
        _finding(
            report, "DEC002", Severity.ERROR,
            f"decoding covers {decoded.size} pcs "
            f"({len(decoded.steppers)} steppers, {len(decoded.meta)} "
            f"meta records) but the text has {size}",
        )
        return report
    for pc, instr in enumerate(program.code):
        expected = _decode_meta(pc, instr)
        if decoded.meta[pc] != expected:
            _finding(
                report, "DEC002", Severity.ERROR,
                f"decoded facts {decoded.meta[pc]!r} do not match the "
                f"source instruction's {expected!r}", pc=pc,
            )

    # DEC003: superstep chains mirror the text's terminator structure.
    if len(decoded.chains) != size or len(decoded.chain_halts) != size:
        _finding(
            report, "DEC003", Severity.ERROR,
            f"chain tables cover {len(decoded.chains)} pcs but the text "
            f"has {size}",
        )
        return report
    end = size
    halts = False
    expected_spans = [0] * size
    expected_halts = [False] * size
    for pc in range(size - 1, -1, -1):
        instr = program.code[pc]
        if instr.is_terminator:
            end = pc + 1
            halts = instr.op is Opcode.HALT
        expected_spans[pc] = end - pc
        expected_halts[pc] = halts
    for pc in range(size):
        if len(decoded.chains[pc]) != expected_spans[pc]:
            _finding(
                report, "DEC003", Severity.ERROR,
                f"chain spans {len(decoded.chains[pc])} instruction(s) "
                f"but the block suffix from here holds "
                f"{expected_spans[pc]}", pc=pc,
            )
        if decoded.chain_halts[pc] != expected_halts[pc]:
            _finding(
                report, "DEC003", Severity.ERROR,
                f"chain halt flag is {decoded.chain_halts[pc]} but the "
                f"terminator {'is' if expected_halts[pc] else 'is not'} "
                "a halt", pc=pc,
            )
    return report


# ---------------------------------------------------------------------------
# Layer 5: the superblock JIT
# ---------------------------------------------------------------------------


def _fuzz_states(program: Program, entry: int, variant: int,
                 backend: str = "dict"):
    """Deterministic machine states for the JIT003 differential.

    Three register-file shapes per region entry: boot-like zeros, small
    in-range values (so memory ops hit the seeded data image), and a
    splitmix-style pseudo-random 64-bit fill.  No global RNG — lint
    output must be reproducible run to run.
    """
    from repro.machine.state import ArchState, wrap64

    state = ArchState(pc=entry, mem=dict(program.memory), backend=backend)
    if variant == 1:
        for reg in range(1, NUM_REGS):
            state.write_reg(reg, (reg * 3 + entry) % 64)
    elif variant == 2:
        x = (entry + 1) * 0x9E3779B97F4A7C15
        for reg in range(1, NUM_REGS):
            x = wrap64(x * 6364136223846793005 + 1442695040888963407)
            state.write_reg(reg, x)
    return state


def check_jit(program: Program, subject: Optional[str] = None) -> CheckReport:
    """Check a program's superblock JIT (:mod:`repro.machine.jit`).

    The JIT *generates Python source* per hot region — the riskiest
    compilation step in the codebase, since a codegen bug executes at
    full speed with no per-step oracle watching.  Four checks: cache
    identity discipline (JIT001, mirroring DEC001), region metadata
    re-derivation (JIT002 — the stored trace, followed-branch set, and
    per-variant sources must equal what :meth:`JitProgram.trace`/
    :meth:`JitProgram.generate_sources` produce today, which also guards
    the persistent code cache against schema drift), a state-level
    differential (JIT003 — every region, in both its dict and flat
    memory flavors, executed on fuzzed register files, must leave
    exactly the machine state the decoded per-step engine reaches after
    the same number of steps), and superblock-link validation (JIT004 —
    promotion is forced along every compiled-region-to-compiled-region
    exit edge and the fused traces must re-derive, keep their link
    targets at traced leaders, and pass the same differential).
    """
    from repro.machine.decoded import decode
    from repro.machine.jit import (
        EXIT_HALT,
        JitProgram,
        block_leaders,
        jit_for,
    )

    report = CheckReport(subject=subject or f"{program.name}: jit")

    # JIT001: one cached JitProgram per (program object, codegen mode).
    jp_cached = jit_for(program)
    if jit_for(program) is not jp_cached:
        _finding(
            report, "JIT001", Severity.ERROR,
            "repeated jit_for() calls returned distinct JitPrograms for "
            "the same program object (cache attachment broken)",
        )
    if jit_for(program, "view") is jp_cached:
        _finding(
            report, "JIT001", Severity.ERROR,
            "view-mode jit_for() returned the arch-mode JitProgram "
            "(modes must cache separately)",
        )

    # Compile every leader eagerly in a private instance (no disk I/O,
    # no hotness warmup) so JIT002/JIT003 see the full region set.
    jp = JitProgram(program, mode="arch", threshold=1, persist=False)
    leaders = block_leaders(program)
    if jp.leaders != leaders:
        _finding(
            report, "JIT001", Severity.ERROR,
            "JitProgram's leader set differs from block_leaders() "
            "(arrival/stop checks would be emitted at the wrong pcs)",
        )
    regions = []
    for entry in sorted(leaders):
        region = jp.region_for(entry)
        if region is not None:
            regions.append(region)

    # JIT002: stored region metadata re-derives from the program.
    for region in regions:
        if region.entry not in leaders:
            _finding(
                report, "JIT002", Severity.ERROR,
                "compiled region starts at a non-leader pc",
                pc=region.entry,
            )
        expected_pcs, expected_taken = jp.trace(region.entry)
        if region.pcs != expected_pcs or region.taken != expected_taken:
            _finding(
                report, "JIT002", Severity.ERROR,
                f"region trace {region.pcs} (taken {sorted(region.taken)}) "
                f"does not re-derive ({expected_pcs} / "
                f"{sorted(expected_taken)} expected)", pc=region.entry,
            )
            continue
        if region.linear_len != len(region.pcs):
            _finding(
                report, "JIT002", Severity.ERROR,
                f"linear_len {region.linear_len} != trace length "
                f"{len(region.pcs)} (budget guards would be wrong)",
                pc=region.entry,
            )
        if region.sources != jp.generate_sources(region.entry):
            _finding(
                report, "JIT002", Severity.ERROR,
                "stored generated sources differ from regeneration "
                "(codegen is not deterministic, or the region is stale)",
                pc=region.entry,
            )

    # JIT003: region execution == decoded per-step execution, state for
    # state, on fuzzed register files — for both the dict and the flat
    # memory flavor of every region's full-protocol function.
    decoded = decode(program)
    steppers = decoded.steppers

    def differential(region, fn, backend: str, label: str) -> None:
        budget = 3 * region.linear_len + 2
        for variant in range(3):
            fuzzed = _fuzz_states(program, region.entry, variant, backend)
            reference = _fuzz_states(program, region.entry, variant)
            try:
                steps, _loads, _arrivals, status = fn(
                    fuzzed, 0, 0, budget, None, 0, None, 0
                )
            except Exception as exc:  # noqa: BLE001 - report, never raise
                _finding(
                    report, "JIT003", Severity.ERROR,
                    f"{label} region raised {type(exc).__name__}: {exc} "
                    f"(fuzz variant {variant})", pc=region.entry,
                )
                continue
            for _ in range(steps):
                steppers[reference.pc](reference)
            if status == EXIT_HALT and (
                program.code[reference.pc].op is not Opcode.HALT
            ):
                _finding(
                    report, "JIT003", Severity.ERROR,
                    f"{label} region reported halt but the decoded engine "
                    f"sits at a {program.code[reference.pc].op.mnemonic} "
                    f"after {steps} steps (fuzz variant {variant})",
                    pc=region.entry,
                )
            if fuzzed.regs != reference.regs or fuzzed.pc != reference.pc \
                    or dict(fuzzed.mem.items()) != dict(reference.mem.items()):
                _finding(
                    report, "JIT003", Severity.ERROR,
                    f"{label} state diverges from the decoded engine after "
                    f"{steps} steps (fuzz variant {variant}): "
                    f"{reference.diff(fuzzed)[:3]}", pc=region.entry,
                )
                break

    for region in regions:
        differential(region, region.full, "dict", "dict-flavor")
        differential(region, region.full_flat, "flat", "flat-flavor")

    # JIT004: promoted superblock links re-derive.  Force promotion on a
    # private instance (link threshold 1) along every static exit edge
    # that lands on another compiled region, then validate the fused
    # traces — and run the JIT003 differential over them, since fused
    # regions contain inverted branch guards no plain trace exercises.
    jp_linked = JitProgram(
        program, mode="arch", threshold=1, persist=False, link_threshold=1
    )
    for entry in sorted(leaders):
        jp_linked.region_for(entry)
    for entry, region in sorted(jp_linked.compiled.items()):
        for target in sorted(region.exit_targets):
            if target in jp_linked.compiled:
                jp_linked.region_for(entry)
                jp_linked.region_for(target)  # transit: promotes at 1
    for entry, region in sorted(jp_linked.compiled.items()):
        if not region.links:
            continue
        expected_pcs, expected_taken = jp_linked.trace(
            entry, frozenset(region.links)
        )
        if region.pcs != expected_pcs or region.taken != expected_taken:
            _finding(
                report, "JIT004", Severity.ERROR,
                f"fused trace {region.pcs} does not re-derive from links "
                f"{sorted(region.links)} ({expected_pcs} expected)",
                pc=entry,
            )
            continue
        traced = set(region.pcs)
        for target in region.links:
            if target not in leaders or target not in traced:
                _finding(
                    report, "JIT004", Severity.ERROR,
                    f"link target {target} is not a block leader inside "
                    "the fused trace", pc=entry,
                )
        index_of = {pc: i for i, pc in enumerate(region.pcs)}
        for branch_pc in region.taken:
            instr = program.code[branch_pc]
            position = index_of.get(branch_pc)
            if (
                not instr.is_branch
                or position is None
                or position + 1 >= len(region.pcs)
                or region.pcs[position + 1] != instr.target
            ):
                _finding(
                    report, "JIT004", Severity.ERROR,
                    f"followed branch at pc {branch_pc} does not continue "
                    f"at its taken target {instr.target}", pc=entry,
                )
        differential(region, region.full, "dict", "fused dict-flavor")
        differential(region, region.full_flat, "flat", "fused flat-flavor")
    return report


def check_memory(
    program: Program,
    subject: Optional[str] = None,
    max_steps: int = 50_000,
) -> CheckReport:
    """MEM001: flat/dict memory-backend image equivalence.

    Runs ``program`` through the decoded engine once per backend —
    canonical sparse dict, flat paged, and the lock-step ``check``
    wrapper — and requires identical run outcomes and ISA-visible final
    state.  This is the static-check twin of ``REPRO_MEM=check``: the
    lock-step wrapper catches per-operation divergence at the access
    site, while this check gates whole-image equivalence into ``repro
    lint``.
    """
    from repro.errors import StepLimitExceeded
    from repro.machine.decoded import decode
    from repro.machine.flatmem import MemoryCheckError, as_dict
    from repro.machine.state import ArchState

    report = CheckReport(subject=subject or f"{program.name}: memory")
    decoded = decode(program)
    outcomes = {}
    states = {}
    for backend in ("dict", "flat"):
        state = ArchState.initial(program, backend=backend)
        try:
            outcomes[backend] = decoded.run(state, max_steps)
        except StepLimitExceeded:
            outcomes[backend] = ("step-limit", max_steps)
        states[backend] = state
    if outcomes["dict"] != outcomes["flat"]:
        _finding(
            report, "MEM001", Severity.ERROR,
            f"run outcome diverges across backends: dict={outcomes['dict']} "
            f"flat={outcomes['flat']}",
        )
    elif states["dict"] != states["flat"]:
        _finding(
            report, "MEM001", Severity.ERROR,
            "final state diverges across backends: "
            f"{states['dict'].diff(states['flat'])[:3]}",
        )
    elif as_dict(states["flat"].mem) != as_dict(states["dict"].mem):
        _finding(
            report, "MEM001", Severity.ERROR,
            "flat image does not round-trip to the canonical sparse dict",
        )
    check_state = ArchState.initial(program, backend="check")
    try:
        decoded.run(check_state, max_steps)
    except StepLimitExceeded:
        pass
    except MemoryCheckError as error:
        _finding(
            report, "MEM001", Severity.ERROR,
            f"lock-step backend diverged mid-run: {error}",
        )
    try:
        check_state.mem.verify_image()
    except MemoryCheckError as error:
        _finding(
            report, "MEM001", Severity.ERROR,
            f"lock-step backend image divergence after the run: {error}",
        )
    return report


# ---------------------------------------------------------------------------
# Layer 5: runtime event streams (the pipeline's in-order protocol)
# ---------------------------------------------------------------------------


def _check_stamps(report: CheckReport, events) -> None:
    """SIM001: clock stamps present and nondecreasing per actor.

    The :class:`~repro.mssp.runtime.events.EventBus` stamps every event
    it publishes with ``clock.now()`` under a lock, so within one
    emitting actor the stream's stamps must never run backwards —
    whether the clock is wall time or the sim runtime's virtual clock.
    Hand-built (never-emitted) events all read t=0 and pass trivially.
    """
    last_at: Dict[str, float] = {}
    for index, event in enumerate(events):
        at = getattr(event, "at", None)
        if not isinstance(at, (int, float)):
            _finding(
                report, "SIM001", Severity.ERROR,
                f"event {index} ({getattr(event, 'kind', '?')}) carries "
                f"no clock stamp",
            )
            continue
        actor = getattr(event, "actor", "")
        previous = last_at.get(actor)
        if previous is not None and at < previous:
            _finding(
                report, "SIM001", Severity.ERROR,
                f"event {index} ({getattr(event, 'kind', '?')}) from "
                f"actor {actor!r} is stamped {at!r}, before its "
                f"predecessor's {previous!r} — the stream's clock ran "
                f"backwards",
            )
        last_at[actor] = at


def check_runtime_events(events, subject: str = "runtime") -> CheckReport:
    """Check a recorded runtime-event stream against the MSSP protocol.

    ``events`` is a sequence of
    :class:`~repro.mssp.runtime.events.RuntimeEvent`\\ s in emission
    order (an :class:`~repro.mssp.runtime.events.EventLog` qualifies).
    Two invariants are enforced, both independent of the executor
    backend:

    * **RT001** — in-order judgement: every ``task_committed`` /
      ``task_squashed`` names the *oldest* forked-but-unjudged tid (no
      task is judged before its predecessor), and committed tids
      strictly increase across the whole run;
    * **RT002** — squash discard: a squash (or master failure) kills
      every forked-but-unjudged successor; a killed tid may only be
      judged again after a fresh ``task_forked`` re-opens it;
    * **RT003** — re-distillation audit: a ``redistilled`` event must be
      preceded by at least its embedded ``threshold`` of live-in
      misprediction squashes attributed (via ``origin_pc``) to the
      re-distilled region since the previous ``redistilled`` event — the
      adaptive loop may only hot-swap the master on accumulated squash
      evidence, never spontaneously;
    * **SIM001** — clock stamps: every event carries a stamp and, per
      emitting actor, stamps never decrease (see :func:`_check_stamps`).
    """
    from repro.mssp.redistill import LIVE_IN_REASONS

    report = CheckReport(subject=subject)
    _check_stamps(report, events)
    #: Forked, not yet judged — episode order; the head judges first.
    outstanding: List[int] = []
    #: Killed by a squash/failure, awaiting re-fork before re-judgement.
    discarded: Set[int] = set()
    last_committed: Optional[int] = None
    #: Live-in squashes per origin region since the last redistillation
    #: (the evidence trail RT003 audits).
    live_in_misses: Dict[int, int] = {}
    for event in events:
        kind = getattr(event, "kind", "")
        if kind == "redistilled":
            seen = live_in_misses.get(event.region, 0)
            if seen < event.threshold:
                _finding(
                    report, "RT003", Severity.ERROR,
                    f"region {event.region} re-distilled after only "
                    f"{seen} live-in squash(es); its threshold is "
                    f"{event.threshold}",
                )
            # The runtime starts a clean evidence slate after a swap.
            live_in_misses.clear()
            continue
        if kind == "task_forked":
            discarded.discard(event.tid)
            outstanding.append(event.tid)
        elif kind in ("task_committed", "task_squashed"):
            tid = event.tid
            if kind == "task_squashed" and event.reason in LIVE_IN_REASONS:
                origin = getattr(event.record, "origin_pc", None)
                if origin is not None:
                    live_in_misses[origin] = (
                        live_in_misses.get(origin, 0) + 1
                    )
            if tid in discarded:
                discarded.discard(tid)
                _finding(
                    report, "RT002", Severity.ERROR,
                    f"tid {tid} was discarded by an earlier squash but "
                    f"judged again without an intervening fork",
                )
            if not outstanding:
                _finding(
                    report, "RT001", Severity.ERROR,
                    f"tid {tid} judged with no task outstanding",
                )
            elif outstanding[0] != tid:
                _finding(
                    report, "RT001", Severity.ERROR,
                    f"tid {tid} judged before its predecessor "
                    f"(oldest outstanding is {outstanding[0]})",
                )
                if tid in outstanding:
                    outstanding.remove(tid)
            else:
                outstanding.pop(0)
            if kind == "task_committed":
                if last_committed is not None and tid <= last_committed:
                    _finding(
                        report, "RT001", Severity.ERROR,
                        f"committed tid {tid} does not exceed the "
                        f"previously committed tid {last_committed}",
                    )
                last_committed = tid
            else:
                discarded.update(outstanding)
                outstanding.clear()
        elif kind == "master_failure":
            discarded.update(outstanding)
            outstanding.clear()
    return report


def check_runtime_execution(
    program, distillation, subject: str = "runtime", profile=None
) -> CheckReport:
    """Run MSSP under a pipelined backend and lint its event stream.

    Uses the thread backend (real in-flight windows, no worker
    processes to spawn) with a small chunk size so episodes actually
    cross chunk boundaries, records every event through an
    :class:`~repro.mssp.runtime.events.EventLog`, and hands the stream
    to :func:`check_runtime_events`.

    With a training ``profile``, the run also enables the adaptive
    prediction loop (live-in value predictors + squash-driven online
    re-distillation), so squashing workloads emit ``redistilled``
    events for **RT003** to audit.
    """
    from repro.config import MsspConfig
    from repro.mssp.engine import create_engine
    from repro.mssp.runtime.events import EventLog

    config = MsspConfig(
        runtime="thread", num_slaves=2, parallel_chunk_tasks=4,
        max_inflight_tasks=16,
    )
    if profile is not None:
        config = config.with_adaptation()
    log = EventLog()
    with create_engine(program, distillation, config) as engine:
        if profile is not None:
            engine.enable_adaptation(profile)
        engine.events.subscribe(log)
        engine.run()
    return check_runtime_events(log.events, subject=subject)


def check_server_events(events, subject: str = "server") -> CheckReport:
    """Check an episode-server event stream against the serving protocol.

    ``events`` is an emission-ordered sequence of runtime events; only
    the ``episode_*`` kinds are inspected, so a mixed stream (engine
    events interleaved with server events) lints cleanly.  One
    invariant family is enforced:

    * **RT004** — admission accounting: every ``episode_accepted``
      reaches *exactly one* terminal event (``episode_completed`` or
      ``episode_shed``) — no lost requests, no double answers; every
      ``episode_dispatched`` names an accepted, still-open request; and
      no worker ever holds more dispatched-but-unfinished episodes than
      the capacity its dispatch events declare.  A request re-dispatched
      to another worker (fault recovery re-queue) releases its previous
      worker's slot.

    The stream's clock stamps are also audited (**SIM001**, see
    :func:`_check_stamps`).
    """
    report = CheckReport(subject=subject)
    _check_stamps(report, events)
    ever: Set[int] = set()
    open_requests: Set[int] = set()
    assigned: Dict[int, int] = {}       # request -> current worker
    loads: Dict[int, Set[int]] = {}     # worker -> open requests held
    for event in events:
        kind = getattr(event, "kind", "")
        if kind == "episode_accepted":
            rid = event.request_id
            if rid in ever:
                _finding(
                    report, "RT004", Severity.ERROR,
                    f"request {rid} accepted more than once",
                )
            ever.add(rid)
            open_requests.add(rid)
        elif kind == "episode_dispatched":
            rid = event.request_id
            if rid not in open_requests:
                _finding(
                    report, "RT004", Severity.ERROR,
                    f"request {rid} dispatched to worker {event.worker} "
                    f"without being accepted and open",
                )
                continue
            previous = assigned.pop(rid, None)
            if previous is not None:
                loads.setdefault(previous, set()).discard(rid)
            assigned[rid] = event.worker
            held = loads.setdefault(event.worker, set())
            held.add(rid)
            if len(held) > event.capacity:
                _finding(
                    report, "RT004", Severity.ERROR,
                    f"worker {event.worker} holds {len(held)} episodes, "
                    f"exceeding its declared capacity {event.capacity}",
                )
        elif kind in ("episode_completed", "episode_shed"):
            rid = event.request_id
            if rid not in open_requests:
                _finding(
                    report, "RT004", Severity.ERROR,
                    f"terminal '{kind}' for request {rid} without a "
                    f"matching open 'episode_accepted' (lost or "
                    f"double-terminated request)",
                )
                continue
            open_requests.discard(rid)
            worker = assigned.pop(rid, None)
            if worker is not None:
                loads.setdefault(worker, set()).discard(rid)
    for rid in sorted(open_requests):
        _finding(
            report, "RT004", Severity.ERROR,
            f"request {rid} was accepted but never reached a terminal "
            f"event (completed or shed)",
        )
    return report


def check_server_execution(
    workload: str,
    program,
    distillation,
    subject: str = "server",
    profile=None,
    size: int = 0,
) -> CheckReport:
    """Serve a burst through an in-process episode server; lint RT004.

    The server is preloaded with the lint-computed distillation (no
    re-distilling) and driven with digest-addressed requests over a
    deliberately tight fleet — two workers of capacity one with a
    two-deep queue — so the burst exercises direct dispatch, queueing,
    and (when the burst outruns the fleet) the shed path; the recorded
    episode event stream then goes to :func:`check_server_events`.
    """
    from repro.config import MsspConfig, ServeConfig
    from repro.experiments import cache as artifact_cache
    from repro.mssp.runtime.events import EventLog
    from repro.serve import EpisodeRequest, EpisodeServer, ServedProgram

    content = artifact_cache.program_digest(program)
    entry = ServedProgram(
        name=workload, size=size,
        key=artifact_cache.digest(workload, size, content, None),
        digest=content, program=program, distillation=distillation,
        profile=profile,
    )
    config = MsspConfig(runtime="thread", num_slaves=2)
    log = EventLog()
    server = EpisodeServer(ServeConfig(
        workers=2, worker_capacity=1, max_queue_depth=2,
    ))
    server.events.subscribe(log)
    server.preload(entry)
    with server:
        handles = [
            server.submit(EpisodeRequest(
                digest=content, config=config, tenant=f"lint-{i}",
            ))
            for i in range(5)
        ]
        for handle in handles:
            handle.result()
    return check_server_events(log.events, subject=subject)


def check_sim_execution(
    program, distillation, subject: str = "sim"
) -> CheckReport:
    """Run the episode on the ``sim`` runtime; lint SIM001–SIM003.

    Three checks, end to end through the one clock seam:

    * the eager reference run and the virtual-clock ``sim`` run must
      produce bit-identical functional results (**SIM002**) — simulated
      time may never perturb architected state;
    * both runs' event streams must carry nondecreasing per-actor clock
      stamps (**SIM001**) — wall stamps on the eager stream, virtual
      stamps on the sim stream;
    * replaying the captured trace through the discrete-event cluster
      model must agree with the analytic timing simulator at matching
      parameters (**SIM003**) — the two implement the same recurrence,
      so any disagreement beyond float tolerance is a model bug.
    """
    from repro.config import MsspConfig, TimingConfig
    from repro.mssp.engine import create_engine
    from repro.mssp.runtime.events import EventLog
    from repro.sim.bench import AGREEMENT_TOLERANCE
    from repro.sim.cluster import ClusterConfig, ClusterSim
    from repro.timing.simulator import (
        MsspTimingSimulator,
        records_from_events,
    )

    report = CheckReport(subject=subject)
    eager_log = EventLog()
    with create_engine(
        program, distillation, MsspConfig(runtime="eager")
    ) as engine:
        engine.events.subscribe(eager_log)
        eager = engine.run()
    sim_log = EventLog()
    with create_engine(
        program, distillation, MsspConfig(runtime="sim")
    ) as engine:
        engine.events.subscribe(sim_log)
        sim = engine.run()

    _check_stamps(report, eager_log.events)
    _check_stamps(report, sim_log.events)

    if sim.counters != eager.counters or sim.records != eager.records:
        _finding(
            report, "SIM002", Severity.ERROR,
            "the sim runtime's counters or trace records diverge from "
            "the eager engine's",
        )
    if (
        sim.halted != eager.halted
        or sim.final_state.pc != eager.final_state.pc
        or sim.final_state.diff(eager.final_state) != []
    ):
        _finding(
            report, "SIM002", Severity.ERROR,
            "the sim runtime's final architected state diverges from "
            "the eager engine's",
        )

    records = records_from_events(eager_log.events)
    timing = TimingConfig(n_slaves=4)
    analytic = MsspTimingSimulator(timing).simulate_records(records)
    replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(records)
    scale = max(
        abs(replayed.total_cycles), abs(analytic.total_cycles), 1.0
    )
    gap = abs(replayed.total_cycles - analytic.total_cycles) / scale
    if gap > AGREEMENT_TOLERANCE:
        _finding(
            report, "SIM003", Severity.ERROR,
            f"cluster replay ({replayed.total_cycles:.1f} cycles) "
            f"disagrees with the analytic model "
            f"({analytic.total_cycles:.1f} cycles) by a relative gap "
            f"of {gap:.2e} (tolerance {AGREEMENT_TOLERANCE:.0e})",
        )
    return report


# ---------------------------------------------------------------------------
# Layer 6: dataflow analyses and the speculation-safety prover
# ---------------------------------------------------------------------------


def check_dataflow(
    program: Program,
    subject: Optional[str] = None,
    max_steps: int = 5_000,
) -> CheckReport:
    """DF001/DF002: the shipped abstract domains against ``program``.

    Solves constant propagation and intervals over the program's CFG,
    re-checks each solution really is a fixpoint (``DF001``), then runs
    the concrete machine for up to ``max_steps`` instructions and checks
    that at every basic-block entry the concrete register file is
    contained in the abstract in-state (``DF002`` — the soundness
    obligation the hypothesis suite fuzzes on random programs).
    """
    from repro.analysis.cfg import build_cfg
    from repro.analysis.dataflow import (
        ConstantDomain,
        IntervalDomain,
        UNKNOWN,
        is_fixpoint,
        solve,
    )
    from repro.machine import ArchState
    from repro.machine.interpreter import step

    report = CheckReport(subject=f"{subject or program.name}: dataflow")
    cfg = build_cfg(program)
    solutions = {}
    for name, domain in (
        ("const", ConstantDomain()), ("interval", IntervalDomain())
    ):
        solution = solve(cfg, domain)
        solutions[name] = solution
        if not is_fixpoint(solution):
            _finding(
                report, "DF001", Severity.ERROR,
                f"the {name} solution is not a fixpoint: one more "
                "transfer round still moves it",
            )

    leaders = {block.start: block.index for block in cfg.blocks}
    state = ArchState.initial(program)
    const_ok = interval_ok = True
    for _ in range(max_steps):
        index = leaders.get(state.pc)
        if index is not None and (const_ok or interval_ok):
            regs = [state.read_reg(r) for r in range(NUM_REGS)]
            if const_ok:
                abstract = solutions["const"].block_in[index]
                for reg in range(NUM_REGS):
                    value = abstract[reg]
                    if value is not UNKNOWN and value != regs[reg]:
                        const_ok = False
                        _finding(
                            report, "DF002", Severity.ERROR,
                            f"constant analysis claims r{reg} == {value} "
                            f"at block entry, but the concrete run "
                            f"arrived with {regs[reg]}", pc=state.pc,
                        )
                        break
            if interval_ok:
                abstract = solutions["interval"].block_in[index]
                for reg in range(NUM_REGS):
                    lo, hi = abstract[reg]
                    if not lo <= regs[reg] <= hi:
                        interval_ok = False
                        _finding(
                            report, "DF002", Severity.ERROR,
                            f"interval analysis claims r{reg} in "
                            f"[{lo}, {hi}] at block entry, but the "
                            f"concrete run arrived with {regs[reg]}",
                            pc=state.pc,
                        )
                        break
        if step(program, state).halted:
            break
    return report


def check_safety_report(
    original: Program,
    pc_map,
    safety,
    subject: Optional[str] = None,
) -> CheckReport:
    """DF003/DF004: a :class:`SafetyReport`'s shape against its artifact.

    ``safety`` is the :class:`repro.analysis.specsafe.SafetyReport` for
    ``(original, distilled, pc_map)``.  Regions must coincide with the
    pc map's fork anchors, and every classified cell must actually be
    live-in at its anchor (a cell outside the live-in set can never be
    compared by verify, so classifying it is meaningless at best and a
    prover bug at worst).
    """
    from repro.analysis.cfg import build_cfg
    from repro.analysis.liveness import compute_liveness

    report = CheckReport(
        subject=f"{subject or original.name}: safety report"
    )
    anchors = set(pc_map.anchors)
    regions = set(safety.regions)
    for anchor in sorted(regions - anchors):
        _finding(
            report, "DF003", Severity.ERROR,
            f"safety report covers pc {anchor}, which is not a pc-map "
            "fork anchor", orig_pc=anchor,
        )
    for anchor in sorted(anchors - regions):
        _finding(
            report, "DF003", Severity.ERROR,
            f"fork anchor {anchor} has no safety-report region",
            orig_pc=anchor,
        )
    cfg = build_cfg(original)
    liveness = compute_liveness(cfg)
    for anchor in sorted(regions & anchors):
        block = cfg.block_starting_at(anchor)
        if block is None:
            continue  # MAP003/IR010 report non-leader anchors
        live = liveness.block_live_in(block.index) - {ZERO}
        extra = sorted(set(safety.regions[anchor].cells) - live)
        if extra:
            regs = ", ".join(f"r{reg}" for reg in extra)
            _finding(
                report, "DF004", Severity.ERROR,
                f"safety report classifies {regs}, not live-in at "
                f"anchor {anchor}", orig_pc=anchor,
            )
    return report


def check_safety_runtime(
    program: Program, distillation, subject: str = "safety runtime"
) -> CheckReport:
    """DF005: differential check-mode run — PROVEN cells must never squash.

    Runs the full MSSP engine with ``static_safety="check"``: every
    live-in is still compared dynamically, and a mismatch on a cell the
    prover marked PROVEN raises :class:`~repro.errors.CheckFailure`
    inside the engine.  That failure — an analysis soundness bug, never
    a legal misspeculation — is what ``DF005`` reports.
    """
    from repro.config import MsspConfig
    from repro.errors import CheckFailure
    from repro.mssp.engine import MsspEngine

    report = CheckReport(subject=subject)
    config = MsspConfig(static_safety="check")
    try:
        MsspEngine(program, distillation, config=config).run_and_check()
    except CheckFailure as failure:
        _finding(report, "DF005", Severity.ERROR, str(failure))
    return report


# ---------------------------------------------------------------------------
# Static squash prediction (the engine's opt-in cross-check)
# ---------------------------------------------------------------------------

#: Squash reasons possible even under a perfectly sound (semantics-
#: preserving) distillation: budget bounds and protected-region policy
#: are engine configuration, not distiller soundness.
SOUND_SQUASH_REASONS: FrozenSet[str] = frozenset(
    {"overrun", "master-timeout", "protected-access"}
)

#: Squash reasons an *approximating* pass can additionally cause: once
#: the master's state may diverge from the original program's, any
#: live-in, control, or termination deviation follows.
APPROXIMATION_SQUASH_REASONS: FrozenSet[str] = SOUND_SQUASH_REASONS | frozenset(
    {"wrong-start-pc", "register-live-in", "memory-live-in", "fault"}
)


def predicted_squash_reasons(distillation) -> FrozenSet[str]:
    """Squash reasons this distillation can legitimately produce.

    Reads the :class:`~repro.distill.distiller.DistillReport` pass
    statistics: a distillation in which no approximating transformation
    fired (no specialized load, eliminated store, asserted branch, or
    deleted cold block) predicts the original program exactly, so any
    data-driven squash indicates a distiller or engine bug.  The MSSP
    engine's ``assert_static_soundness`` mode enforces exactly this.
    """
    stats = distillation.report.pass_stats

    def count(pass_name: str, attr: str) -> int:
        pass_stats = stats.get(pass_name)
        return getattr(pass_stats, attr, 0) if pass_stats is not None else 0

    approximated = (
        count("value_spec", "specialized")
        or count("store_elim", "eliminated")
        or count("branch_removal", "asserted_taken")
        or count("branch_removal", "asserted_not_taken")
        or count("cold_code", "blocks_removed")
    )
    if approximated:
        return APPROXIMATION_SQUASH_REASONS
    return SOUND_SQUASH_REASONS
