"""Static analyses over Z-ISA programs: CFG, dominators, loops, liveness,
and the soundness checker (:mod:`repro.analysis.checker`)."""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.checker import (
    CHECKS,
    CheckFinding,
    CheckReport,
    Severity,
    check_code,
    check_decoded,
    check_distillation,
    check_ir,
    check_jit,
    check_memory,
    check_program,
    predicted_squash_reasons,
)
from repro.analysis.dominators import DominatorTree, build_dominator_tree
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import Loop, LoopForest, analyze_loops, find_loops

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "CHECKS",
    "CheckFinding",
    "CheckReport",
    "Severity",
    "check_code",
    "check_decoded",
    "check_distillation",
    "check_ir",
    "check_jit",
    "check_memory",
    "check_program",
    "predicted_squash_reasons",
    "DominatorTree",
    "build_dominator_tree",
    "LivenessInfo",
    "compute_liveness",
    "Loop",
    "LoopForest",
    "analyze_loops",
    "find_loops",
]
