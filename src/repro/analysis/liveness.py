"""Backward register-liveness analysis.

Computes live-in/live-out register sets per basic block by the standard
iterative backward dataflow, then lets the distiller query per-instruction
liveness while sweeping a block bottom-up (dead-code elimination removes a
pure instruction whose destination is dead at that point).

Conservatism notes:

* ``jr`` blocks inherit the CFG's return-site edges, so liveness across
  returns is conservative in the same way the CFG is.
* ``r0`` is never live (it is architecturally constant).
* The analysis is intraprocedural over the whole-program CFG; the halt
  block's live-out is empty — the ISA has no post-halt observer of
  registers (final register values *are* compared in tests, so the
  distiller never applies register-DCE to the original program, only to
  the distilled one, whose register file is merely a prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.analysis.cfg import BasicBlock, ControlFlowGraph
from repro.isa.registers import ZERO


@dataclass
class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    live_in: Dict[int, FrozenSet[int]]
    live_out: Dict[int, FrozenSet[int]]

    def block_live_in(self, block_index: int) -> FrozenSet[int]:
        """Registers live on entry to block ``block_index`` (stable API)."""
        return self.live_in[block_index]

    def block_live_out(self, block_index: int) -> FrozenSet[int]:
        """Registers live on exit from block ``block_index`` (stable API)."""
        return self.live_out[block_index]

    def live_after_each(
        self, block: BasicBlock
    ) -> List[FrozenSet[int]]:
        """Live register set *after* each instruction in ``block``.

        Element ``i`` is the set of registers live immediately after
        ``block.instructions[i]``; the last element equals the block's
        live-out.
        """
        result: List[FrozenSet[int]] = [frozenset()] * len(block.instructions)
        live: Set[int] = set(self.live_out[block.index])
        for offset in range(len(block.instructions) - 1, -1, -1):
            result[offset] = frozenset(live)
            instr = block.instructions[offset]
            live -= instr.defs()
            live |= {r for r in instr.uses() if r != ZERO}
        return result


def compute_liveness(
    cfg: ControlFlowGraph, exit_live: FrozenSet[int] = frozenset()
) -> LivenessInfo:
    """Iterate backward dataflow to a fixed point.

    ``exit_live`` is the register set considered live at program exit
    (empty by default; callers that care about final register values pass
    the registers they will inspect).
    """
    gen: Dict[int, Set[int]] = {}
    kill: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        used: Set[int] = set()
        defined: Set[int] = set()
        for instr in block.instructions:
            used |= {r for r in instr.uses() if r != ZERO and r not in defined}
            defined |= instr.defs()
        gen[block.index] = used
        kill[block.index] = defined

    live_in: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
    live_out: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            index = block.index
            out: Set[int] = set()
            successors = cfg.successors[index]
            if successors:
                for succ in successors:
                    out |= live_in[succ]
            else:
                out |= exit_live
            new_in = gen[index] | (out - kill[index])
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return LivenessInfo(
        live_in={i: frozenset(s) for i, s in live_in.items()},
        live_out={i: frozenset(s) for i, s in live_out.items()},
    )
