"""The distiller: original program + profile → distilled program + pc map.

Pass pipeline (order matters and is fixed):

1. **value specialization** — needs original ``orig_pc`` provenance intact;
2. **store elimination** — deletes stores whose targets are never read
   (write-only output buffers);
3. **branch assertion** — turns biased branches unconditional, creating
   dead condition code and unreachable cold paths;
4. **cold-code elimination** — deletes never/rarely executed blocks,
   retargeting stray edges at the trap;
5. **fork placement** — chooses anchors among the *surviving* blocks and
   inserts fork instructions carrying original-liveness use sets;
6. **dead-code elimination** — removes everything the previous passes
   orphaned, while keeping anchor-live registers alive;
7. **layout** — re-materializes a flat program, threads jumps, and emits
   the :class:`~repro.distill.pc_map.PcMap`.

The distilled program is an ordinary runnable Z-ISA program (``fork``
executes as a no-op sequentially), which is how the distillation-ratio
experiment measures its dynamic path length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.config import DistillConfig
from repro.distill.ir import lift_to_ir
from repro.distill.layout import layout_ir
from repro.distill.passes.branch_removal import run_branch_removal
from repro.distill.passes.cold_code import run_cold_code
from repro.distill.passes.dce import run_dce
from repro.distill.passes.fork_placement import run_fork_placement
from repro.distill.passes.store_elim import run_store_elim
from repro.distill.passes.value_spec import run_value_spec
from repro.distill.pc_map import PcMap
from repro.isa.program import Program
from repro.profiling.profile_data import Profile


@dataclass
class DistillReport:
    """Static accounting of one distillation."""

    original_static: int
    distilled_static: int
    anchors: List[int] = field(default_factory=list)
    expected_task_size: float = 0.0
    pass_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def static_ratio(self) -> float:
        """Distilled static size as a fraction of the original."""
        return self.distilled_static / self.original_static

    def describe(self) -> str:
        lines = [
            f"static: {self.original_static} -> {self.distilled_static} "
            f"({self.static_ratio:.2f}x)",
            f"anchors: {len(self.anchors)} "
            f"(expected task size {self.expected_task_size:.0f})",
        ]
        for name, stats in self.pass_stats.items():
            lines.append(f"{name}: {stats}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DistillationResult:
    """Everything the MSSP engine needs from the distiller."""

    original: Program
    distilled: Program
    pc_map: PcMap
    report: DistillReport


class Distiller:
    """Profile-guided program distiller."""

    def __init__(self, config: Optional[DistillConfig] = None):
        self.config = config or DistillConfig()

    def distill(self, program: Program, profile: Profile) -> DistillationResult:
        """Distill ``program`` using the training ``profile``."""
        config = self.config
        cfg = build_cfg(program)
        domtree = DominatorTree(cfg)
        loops = find_loops(cfg, domtree)
        liveness = compute_liveness(cfg)
        ir = lift_to_ir(program, cfg)
        original_static = len(program.code)
        pass_stats: Dict[str, object] = {}

        if config.enable_value_spec:
            pass_stats["value_spec"] = run_value_spec(ir, profile, config)
        if config.enable_store_elim:
            pass_stats["store_elim"] = run_store_elim(ir, profile, config)
        if config.enable_branch_removal:
            pass_stats["branch_removal"] = run_branch_removal(
                ir, profile, cfg, domtree, loops, config
            )
        if config.enable_cold_code:
            pass_stats["cold_code"] = run_cold_code(ir, profile, config)
        fork_stats = run_fork_placement(
            ir, profile, cfg, loops, liveness, config
        )
        pass_stats["fork_placement"] = fork_stats
        if config.enable_dce:
            pass_stats["dce"] = run_dce(ir, config)

        distilled, pc_map = layout_ir(
            ir, jump_threading=config.enable_jump_threading
        )
        report = DistillReport(
            original_static=original_static,
            distilled_static=len(distilled.code),
            anchors=list(fork_stats.anchors),
            expected_task_size=fork_stats.expected_task_size,
            pass_stats=pass_stats,
        )
        return DistillationResult(
            original=program, distilled=distilled, pc_map=pc_map,
            report=report,
        )


def distill_with_default_profile(
    program: Program, config: Optional[DistillConfig] = None
) -> DistillationResult:
    """Profile on the program's own data image, then distill."""
    from repro.profiling.profiler import profile_program

    profile = profile_program(program)
    return Distiller(config).distill(program, profile)
