"""The distiller: original program + profile → distilled program + pc map.

Pass pipeline (order matters and is fixed):

1. **value specialization** — needs original ``orig_pc`` provenance intact;
2. **store elimination** — deletes stores whose targets are never read
   (write-only output buffers);
3. **branch assertion** — turns biased branches unconditional, creating
   dead condition code and unreachable cold paths;
4. **cold-code elimination** — deletes never/rarely executed blocks,
   retargeting stray edges at the trap;
5. **fork placement** — chooses anchors among the *surviving* blocks and
   inserts fork instructions carrying original-liveness use sets;
6. **dead-code elimination** — removes everything the previous passes
   orphaned, while keeping anchor-live registers alive;
7. **layout** — re-materializes a flat program, threads jumps, and emits
   the :class:`~repro.distill.pc_map.PcMap`.

The distilled program is an ordinary runnable Z-ISA program (``fork``
executes as a no-op sequentially), which is how the distillation-ratio
experiment measures its dynamic path length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.checker import check_distillation, check_ir
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.config import DistillConfig
from repro.distill.ir import DistillIR, lift_to_ir
from repro.distill.layout import (
    PASS_INVARIANTS as _layout_invariants,
    layout_ir,
)
from repro.distill.passes.branch_removal import run_branch_removal
from repro.distill.passes.cold_code import run_cold_code
from repro.distill.passes.dce import run_dce
from repro.distill.passes.fork_placement import run_fork_placement
from repro.distill.passes.store_elim import run_store_elim
from repro.distill.passes.value_spec import run_value_spec
from repro.distill.pc_map import PcMap
from repro.distill.passes import (
    branch_removal as _branch_removal_module,
    cold_code as _cold_code_module,
    dce as _dce_module,
    fork_placement as _fork_placement_module,
    store_elim as _store_elim_module,
    value_spec as _value_spec_module,
)
from repro.errors import CheckFailure
from repro.isa.program import Program
from repro.profiling.profile_data import Profile

#: Invariant declarations per pipeline stage: what each pass promises the
#: IR (or the final artifact) still satisfies when it returns.  Used to
#: annotate :class:`~repro.errors.CheckFailure` diagnostics; the check
#: IDs are catalogued in docs/static-checks.md.
PASS_INVARIANTS: Dict[str, tuple] = {
    "value_spec": _value_spec_module.PASS_INVARIANTS,
    "store_elim": _store_elim_module.PASS_INVARIANTS,
    "branch_removal": _branch_removal_module.PASS_INVARIANTS,
    "cold_code": _cold_code_module.PASS_INVARIANTS,
    "fork_placement": _fork_placement_module.PASS_INVARIANTS,
    "dce": _dce_module.PASS_INVARIANTS,
    "layout": _layout_invariants,
}


@dataclass
class DistillReport:
    """Static accounting of one distillation."""

    original_static: int
    distilled_static: int
    anchors: List[int] = field(default_factory=list)
    expected_task_size: float = 0.0
    pass_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def static_ratio(self) -> float:
        """Distilled static size as a fraction of the original."""
        return self.distilled_static / self.original_static

    def describe(self) -> str:
        lines = [
            f"static: {self.original_static} -> {self.distilled_static} "
            f"({self.static_ratio:.2f}x)",
            f"anchors: {len(self.anchors)} "
            f"(expected task size {self.expected_task_size:.0f})",
        ]
        for name, stats in self.pass_stats.items():
            lines.append(f"{name}: {stats}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DistillationResult:
    """Everything the MSSP engine needs from the distiller."""

    original: Program
    distilled: Program
    pc_map: PcMap
    report: DistillReport


class Distiller:
    """Profile-guided program distiller."""

    def __init__(self, config: Optional[DistillConfig] = None):
        self.config = config or DistillConfig()

    def distill(self, program: Program, profile: Profile) -> DistillationResult:
        """Distill ``program`` using the training ``profile``."""
        config = self.config
        cfg = build_cfg(program)
        domtree = DominatorTree(cfg)
        loops = find_loops(cfg, domtree)
        liveness = compute_liveness(cfg)
        ir = lift_to_ir(program, cfg)
        self._verify_ir(ir, "lift", cfg, liveness)
        original_static = len(program.code)
        pass_stats: Dict[str, object] = {}

        if config.enable_value_spec:
            pass_stats["value_spec"] = run_value_spec(ir, profile, config)
            self._verify_ir(ir, "value_spec", cfg, liveness)
        if config.enable_store_elim:
            pass_stats["store_elim"] = run_store_elim(ir, profile, config)
            self._verify_ir(ir, "store_elim", cfg, liveness)
        if config.enable_branch_removal:
            pass_stats["branch_removal"] = run_branch_removal(
                ir, profile, cfg, domtree, loops, config
            )
            self._verify_ir(ir, "branch_removal", cfg, liveness)
        if config.enable_cold_code:
            pass_stats["cold_code"] = run_cold_code(ir, profile, config)
            self._verify_ir(ir, "cold_code", cfg, liveness)
        fork_stats = run_fork_placement(
            ir, profile, cfg, loops, liveness, config
        )
        pass_stats["fork_placement"] = fork_stats
        self._verify_ir(ir, "fork_placement", cfg, liveness)
        if config.enable_dce:
            pass_stats["dce"] = run_dce(ir, config)
            self._verify_ir(ir, "dce", cfg, liveness)

        distilled, pc_map = layout_ir(
            ir, jump_threading=config.enable_jump_threading
        )
        self._verify_artifact(program, distilled, pc_map)
        report = DistillReport(
            original_static=original_static,
            distilled_static=len(distilled.code),
            anchors=list(fork_stats.anchors),
            expected_task_size=fork_stats.expected_task_size,
            pass_stats=pass_stats,
        )
        return DistillationResult(
            original=program, distilled=distilled, pc_map=pc_map,
            report=report,
        )

    # -- verify_after_each_pass debug mode -----------------------------------

    def _verify_ir(
        self, ir: DistillIR, pass_name: str, cfg=None, liveness=None
    ) -> None:
        """Raise :class:`CheckFailure` if ``pass_name`` broke an invariant.

        ``cfg``/``liveness`` are the original program's analyses,
        computed once by :meth:`distill` and threaded through so the
        per-pass checks do not recompute them.
        """
        if not self.config.verify_after_each_pass:
            return
        report = check_ir(ir, pass_name=pass_name, cfg=cfg, liveness=liveness)
        if report.ok:
            return
        declared = PASS_INVARIANTS.get(pass_name, ())
        broken = sorted(
            {f.check_id for f in report.errors} & set(declared)
        )
        note = f" (declared invariants broken: {', '.join(broken)})" if (
            broken
        ) else ""
        raise CheckFailure(
            f"distiller pass {pass_name!r} left the IR unsound{note}",
            pass_name=pass_name,
            findings=report.errors,
        )

    def _verify_artifact(
        self, original: Program, distilled: Program, pc_map: PcMap
    ) -> None:
        if not self.config.verify_after_each_pass:
            return
        report = check_distillation(original, distilled, pc_map)
        if not report.ok:
            raise CheckFailure(
                "layout produced an unsound distilled program / pc map",
                pass_name="layout",
                findings=report.errors,
            )


def distill_with_default_profile(
    program: Program, config: Optional[DistillConfig] = None
) -> DistillationResult:
    """Profile on the program's own data image, then distill."""
    from repro.profiling.profiler import profile_program

    profile = profile_program(program)
    return Distiller(config).distill(program, profile)
