"""Mutable intermediate representation used by the distiller.

The distiller cannot operate on :class:`~repro.isa.program.Program`
directly — deleting instructions there would invalidate every pc-relative
branch.  Instead the original program is lifted into a block-structured IR
with *symbolic* control flow:

* a :class:`DBlock` per original basic block, named ``B<orig start pc>``;
* branch/jump targets rewritten to block names;
* explicit ``fallthrough`` successor names, so blocks can be deleted or
  reordered and the final layout re-materializes any jumps it needs;
* per-instruction provenance (``orig_pc``), which the value-specialization
  pass uses to consult the profile and the pc map uses to relate distilled
  and original locations.

``jal`` blocks carry a *physical adjacency* requirement: the return site
must be laid out immediately after the call so the link-register
arithmetic (``ra = pc + 1``) stays valid; layout enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.cfg import ControlFlowGraph
from repro.errors import DistillError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Name of the synthesized trap block (a lone ``halt``) that absorbs
#: control transfers into deleted code.  Reaching it makes the master
#: halt early, which the MSSP engine treats as a misspeculation.
TRAP_BLOCK = "__trap__"


@dataclass
class DInstr:
    """One IR instruction: the instruction plus provenance and metadata."""

    instr: Instruction
    #: pc in the original program, or None for synthesized instructions.
    orig_pc: Optional[int] = None
    #: Register-use override (the FORK pseudo-use set for liveness).
    uses_override: Optional[FrozenSet[int]] = None

    def uses(self) -> FrozenSet[int]:
        if self.uses_override is not None:
            return self.uses_override
        return self.instr.uses()

    def defs(self) -> FrozenSet[int]:
        return self.instr.defs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        origin = f"@{self.orig_pc}" if self.orig_pc is not None else "@syn"
        return f"DInstr({self.instr}{origin})"


@dataclass
class DBlock:
    """One IR basic block with symbolic successors."""

    name: str
    orig_start_pc: Optional[int]
    instrs: List[DInstr] = field(default_factory=list)
    #: Block control falls into when the last instruction does not
    #: unconditionally transfer (None at halt / unconditional ends).
    fallthrough: Optional[str] = None
    #: Layout must place ``fallthrough`` physically next (jal return site).
    requires_adjacent_fallthrough: bool = False

    @property
    def last(self) -> Optional[DInstr]:
        return self.instrs[-1] if self.instrs else None

    def successor_names(self, return_sites: List[str]) -> List[str]:
        """Symbolic successors (for IR-level liveness/reachability)."""
        names: List[str] = []
        last = self.last
        if last is not None:
            op = last.instr.op
            if op in (Opcode.J, Opcode.JAL) or last.instr.is_branch:
                target = last.instr.target
                if isinstance(target, str):
                    names.append(target)
            if op is Opcode.JR:
                names.extend(return_sites)
        if self.fallthrough is not None and self.fallthrough not in names:
            names.append(self.fallthrough)
        return names


@dataclass
class DistillIR:
    """The distiller's working representation of a whole program."""

    program: Program
    blocks: List[DBlock]
    entry_name: str
    #: Original return pcs of rewritten calls (jal -> li ra, <orig>; j),
    #: used by layout to build the master's jr translation map.
    call_return_pcs: List[int] = field(default_factory=list)

    def block(self, name: str) -> DBlock:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise DistillError(f"no IR block named {name!r}")

    def block_names(self) -> Set[str]:
        return {blk.name for blk in self.blocks}

    def remove_blocks(self, names: Set[str]) -> None:
        """Delete blocks, retargeting dangling references to the trap.

        Deleting the entry block is refused; deleting a required-adjacent
        fallthrough (a ``jal`` return site whose call survives) is refused
        by the caller's protection sets, and double-checked here.
        """
        if self.entry_name in names:
            raise DistillError("cannot remove the entry block")
        survivors = [blk for blk in self.blocks if blk.name not in names]
        needs_trap = False
        for blk in survivors:
            if blk.fallthrough in names:
                if blk.requires_adjacent_fallthrough:
                    raise DistillError(
                        f"block {blk.name} requires deleted fallthrough "
                        f"{blk.fallthrough}"
                    )
                blk.fallthrough = TRAP_BLOCK
                needs_trap = True
            last = blk.last
            if last is not None and isinstance(last.instr.target, str):
                if last.instr.target in names:
                    last.instr = last.instr.with_target(TRAP_BLOCK)
                    needs_trap = True
        self.blocks = survivors
        if needs_trap and not any(b.name == TRAP_BLOCK for b in self.blocks):
            self.blocks.append(_make_trap_block())

    def return_site_names(self) -> List[str]:
        """Names of surviving return-site blocks (jr successors)."""
        existing = {blk.name for blk in self.blocks}
        return [
            block_name_for(pc)
            for pc in self.call_return_pcs
            if block_name_for(pc) in existing
        ]

    def reachable_names(self) -> Set[str]:
        """Block names reachable from the entry in the IR graph."""
        by_name = {blk.name: blk for blk in self.blocks}
        return_sites = self.return_site_names()
        seen: Set[str] = set()
        stack = [self.entry_name]
        while stack:
            name = stack.pop()
            if name in seen or name not in by_name:
                continue
            seen.add(name)
            stack.extend(by_name[name].successor_names(return_sites))
        return seen

    def instruction_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)


def _make_trap_block() -> DBlock:
    return DBlock(
        name=TRAP_BLOCK,
        orig_start_pc=None,
        instrs=[DInstr(Instruction(op=Opcode.HALT))],
        fallthrough=None,
    )


def block_name_for(pc: int) -> str:
    return f"B{pc}"


def lift_to_ir(program: Program, cfg: ControlFlowGraph) -> DistillIR:
    """Lift ``program`` into the distiller IR using its CFG partition.

    Calls are rewritten for the distilled pc space: ``jal fn`` becomes
    ``li ra, <original return pc>`` + ``j fn``, so the master's link
    register always holds *original-program* addresses (what slaves will
    verify against architected state).  The master translates ``jr``
    targets back to distilled pcs through the pc map's jr table, which
    layout builds from ``call_return_pcs``.
    """
    from repro.isa.registers import RA

    size = len(program.code)
    leader_pcs = {blk.start for blk in cfg.blocks}
    blocks: List[DBlock] = []
    call_return_pcs: List[int] = []
    for cblock in cfg.blocks:
        dblock = DBlock(
            name=block_name_for(cblock.start), orig_start_pc=cblock.start
        )
        for offset, instr in enumerate(cblock.instructions):
            pc = cblock.start + offset
            if isinstance(instr.target, int) and instr.op is not Opcode.FORK:
                if instr.target not in leader_pcs:
                    raise DistillError(
                        f"pc {pc}: branch target {instr.target} is not a "
                        "block leader"
                    )
                instr = instr.with_target(block_name_for(instr.target))
            if instr.op is Opcode.JAL:
                return_pc = pc + 1
                call_return_pcs.append(return_pc)
                dblock.instrs.append(
                    DInstr(
                        instr=Instruction(op=Opcode.LI, rd=RA, imm=return_pc),
                        orig_pc=pc,
                    )
                )
                dblock.instrs.append(
                    DInstr(
                        instr=Instruction(op=Opcode.J, target=instr.target),
                        orig_pc=pc,
                    )
                )
            else:
                dblock.instrs.append(DInstr(instr=instr, orig_pc=pc))
        last = cblock.terminator
        falls = (
            not last.is_terminator or last.is_branch
        ) and cblock.end < size
        if last.op is Opcode.JAL:
            # The rewritten call ends in an unconditional j; control
            # returns to the fall-through block only via jr translation.
            dblock.fallthrough = None
        elif falls:
            dblock.fallthrough = block_name_for(cblock.end)
        blocks.append(dblock)
    return DistillIR(
        program=program, blocks=blocks,
        entry_name=block_name_for(cfg.entry_block.start),
        call_return_pcs=call_return_pcs,
    )
