"""Profile-guided distillation: the construction of approximate programs.

This package implements the offline half of MSSP: turning the original
binary plus a training profile into the *distilled program* the master
executes, along with the pc map that relates the two at task boundaries.
"""

from repro.distill.distiller import (
    DistillationResult,
    Distiller,
    DistillReport,
    distill_with_default_profile,
)
from repro.distill.ir import TRAP_BLOCK, DBlock, DInstr, DistillIR, lift_to_ir
from repro.distill.layout import layout_ir
from repro.distill.pc_map import PcMap

__all__ = [
    "DistillationResult",
    "Distiller",
    "DistillReport",
    "distill_with_default_profile",
    "TRAP_BLOCK",
    "DBlock",
    "DInstr",
    "DistillIR",
    "lift_to_ir",
    "layout_ir",
    "PcMap",
]
