"""The original↔distilled pc correspondence.

MSSP needs exactly one mapping at run time: given an *anchor* — an
original-program pc at which tasks may begin — where should the master
(re)start executing the distilled program?  The distiller answers with a
:class:`PcMap`:

* every anchor carries a ``resume`` pc, the distilled location immediately
  *after* that anchor's ``fork`` instruction (so a restarted master does
  not immediately re-fork the task the engine has already opened);
* the anchor set also tells non-speculative recovery where it may stop
  and hand control back to speculative execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.errors import DistillError


@dataclass(frozen=True)
class PcMap:
    """Anchor pcs in the original program and their master resume pcs."""

    #: original anchor pc -> distilled pc the master resumes at.
    resume: Dict[int, int] = field(default_factory=dict)
    #: The original program's entry pc (always an anchor).
    entry_orig: int = 0
    #: original anchor pc -> distilled pc whose execution counts as one
    #: *arrival* at the anchor (the anchor block's first instruction).
    #: Strided forks make the master pass an anchor several times before
    #: forking; the master counts arrivals at these pcs so each fork can
    #: tell its slave how many end-pc arrivals the task spans.
    arrival: Dict[int, int] = field(default_factory=dict)
    #: original return pc -> distilled return pc.  Distilled calls load
    #: *original* return addresses (so checkpointed ``ra`` values verify
    #: against architected state); the master translates ``jr`` targets
    #: through this table.  A miss is a master trap (recovered from).
    jr_table: Dict[int, int] = field(default_factory=dict)
    #: distilled pc -> original pc the instruction descends from.  Layout
    #: records this for every emitted instruction that survived from the
    #: original program (synthesized instructions — fork prologues,
    #: re-materialized fall-through jumps, the trap block — are absent).
    #: The speculation-safety prover uses it to align the two programs;
    #: an empty map simply makes the prover bail to all-UNPROVEN.
    provenance: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "resume", dict(self.resume))
        object.__setattr__(self, "arrival", dict(self.arrival))
        object.__setattr__(self, "jr_table", dict(self.jr_table))
        object.__setattr__(self, "provenance", dict(self.provenance))
        if self.entry_orig not in self.resume:
            raise DistillError("pc map must cover the original entry pc")

    @property
    def anchors(self) -> FrozenSet[int]:
        """All original pcs at which tasks may begin."""
        return frozenset(self.resume)

    def is_anchor(self, orig_pc: int) -> bool:
        return orig_pc in self.resume

    def resume_pc(self, orig_pc: int) -> int:
        """Distilled pc for a master restart at original pc ``orig_pc``."""
        try:
            return self.resume[orig_pc]
        except KeyError:
            raise DistillError(
                f"original pc {orig_pc} is not an anchor; master cannot "
                "restart there"
            ) from None

    def __len__(self) -> int:
        return len(self.resume)

    def arrival_pcs(self) -> Dict[int, int]:
        """Map of distilled arrival-counting pc -> original anchor pc."""
        return {distilled: orig for orig, distilled in self.arrival.items()}
