"""Dead-store elimination pass.

A store whose profiled target addresses are never loaded — anywhere, by
any training run — does not feed the master's own computation and does
not need to appear in checkpoints: slaves that (unexpectedly) read such
an address fall through the checkpoint to architected state, which holds
the *committed* (exact) value, so correctness is untouched and even the
squash rate cannot rise.  What elimination buys is a shorter distilled
program and smaller checkpoints (the typical win is write-only output
buffers, e.g. a copy destination).

Conservatism: stores with unknown (polymorphic) target sets, or any
profiled overlap with loaded addresses, are kept — eliminating those
would starve the master's own later loads and turn into squash storms.

After elimination the store's address computation often dies; DCE (which
runs later) collects it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DistillConfig
from repro.distill.ir import DistillIR
from repro.isa.instructions import Opcode
from repro.profiling.profile_data import Profile

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: Deleting non-terminator stores cannot change control flow, so the
#: full block-structure group must survive unchanged.
PASS_INVARIANTS = ("IR001", "IR002", "IR003", "IR004", "IR005", "IR008")


@dataclass
class StoreElimStats:
    """What the pass did (for the distillation report)."""

    candidates: int = 0
    eliminated: int = 0


def run_store_elim(
    ir: DistillIR, profile: Profile, config: DistillConfig
) -> StoreElimStats:
    """Delete provably-unread stores from the distilled IR, in place."""
    stats = StoreElimStats()
    for block in ir.blocks:
        survivors = []
        for dinstr in block.instrs:
            if dinstr.instr.op is Opcode.SW and dinstr.orig_pc is not None:
                stats.candidates += 1
                dead = profile.dead_store_addresses(
                    dinstr.orig_pc, min_count=config.store_elim_min_count
                )
                if dead is not None:
                    stats.eliminated += 1
                    continue
            survivors.append(dinstr)
        block.instrs = survivors
    return stats
