"""Dead-code elimination over the distiller IR.

After branch assertion, the asserted branches' condition chains are
usually dead; after value specialization, address computations feeding
specialized loads may be too.  This pass runs backward register liveness
over the *IR* graph (symbolic successors, ``jr`` → surviving return
sites) and deletes pure instructions whose destinations are dead.

Two MSSP-specific points:

* ``fork`` instructions carry a use-set override — the registers live at
  their anchor in the **original** program — so values slaves will read
  from checkpoints are kept alive in the distilled program;
* nothing with a side effect (stores, control flow, forks, ``jal``) is
  ever deleted here.

The pass iterates to a fixed point: deleting one instruction can kill the
producers feeding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.config import DistillConfig
from repro.distill.ir import DBlock, DistillIR
from repro.isa.registers import ZERO

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: DCE deletes pure instructions only, so block edges survive; the
#: critical obligation is IR006 — fork use sets must keep anchor-live
#: registers' producers alive, which is exactly what this pass consults
#: them for.
PASS_INVARIANTS = (
    "IR001", "IR002", "IR003", "IR004", "IR005", "IR006", "IR009", "IR010",
)


@dataclass
class DceStats:
    """What the pass did (for the distillation report)."""

    instrs_removed: int = 0
    iterations: int = 0


def run_dce(ir: DistillIR, config: DistillConfig) -> DceStats:
    """Iteratively remove dead pure instructions, in place."""
    del config  # no knobs today; kept for signature symmetry with passes
    stats = DceStats()
    while True:
        stats.iterations += 1
        removed = _one_round(ir)
        stats.instrs_removed += removed
        if not removed:
            return stats


def _one_round(ir: DistillIR) -> int:
    live_out = _block_liveness(ir)
    removed = 0
    for block in ir.blocks:
        live: Set[int] = set(live_out[block.name])
        survivors = []
        for dinstr in reversed(block.instrs):
            defs = dinstr.defs()
            pure = not dinstr.instr.has_side_effect
            if pure and defs and not (defs & live):
                removed += 1
                continue
            if pure and not defs and dinstr.instr.op.mnemonic == "nop":
                removed += 1
                continue
            live -= defs
            live |= {r for r in dinstr.uses() if r != ZERO}
            survivors.append(dinstr)
        survivors.reverse()
        block.instrs = survivors
    return removed


def _block_liveness(ir: DistillIR) -> Dict[str, FrozenSet[int]]:
    """Backward liveness over IR blocks; returns live-out per block name."""
    return_sites = [name for name in ir.return_site_names() if name]
    existing = ir.block_names()
    successors: Dict[str, List[str]] = {
        block.name: [
            s for s in block.successor_names(return_sites) if s in existing
        ]
        for block in ir.blocks
    }
    gen: Dict[str, Set[int]] = {}
    kill: Dict[str, Set[int]] = {}
    for block in ir.blocks:
        used: Set[int] = set()
        defined: Set[int] = set()
        for dinstr in block.instrs:
            used |= {
                r for r in dinstr.uses() if r != ZERO and r not in defined
            }
            defined |= dinstr.defs()
        gen[block.name] = used
        kill[block.name] = defined

    live_in: Dict[str, Set[int]] = {b.name: set() for b in ir.blocks}
    live_out: Dict[str, Set[int]] = {b.name: set() for b in ir.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(ir.blocks):
            name = block.name
            out: Set[int] = set()
            for succ in successors[name]:
                out |= live_in[succ]
            new_in = gen[name] | (out - kill[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return {name: frozenset(s) for name, s in live_out.items()}
