"""Fork (task-boundary) placement pass.

Chooses the *anchors* — original-program pcs at which tasks begin — and
inserts task-spawning code at the top of each anchor's distilled block.
When the master reaches a fork it closes the task it is currently
predicting and ships a checkpoint for the next one.

Selection is region-aware, mirroring the paper's goals (boundaries at
loop iterations and call sites, sized near ``target_task_size``):

* every natural loop whose body accounts for at least
  ``MIN_REGION_SHARE`` of the training run gets an anchor at its header
  — this guarantees hot phases are covered (a hot region with no anchor
  would execute as one giant, budget-overflowing task);
* loop-free call-dominated programs fall back to function entries;
* each anchor gets a per-anchor **stride**: if one execution of the
  anchor corresponds to fewer than ``target_task_size`` dynamic
  instructions (a small loop body), the distilled program counts anchor
  arrivals in a scratch register and forks only every *k*-th arrival,
  so tasks span several iterations.

The stride counter lives in a register the original program never
touches (so no slave will ever read the master's counter as a live-in)
and is reset immediately **after** the fork — which is exactly where the
pc map's resume point lands, so a restarted master starts a fresh
countdown for free.  Anchors with no free scratch register degrade to
stride 1.

Each inserted fork carries a register *use set* for dead-code
elimination: the registers live at the anchor **in the original
program** (what a slave may read from the checkpoint), plus the scratch
register when strided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.liveness import LivenessInfo
from repro.analysis.loops import LoopForest
from repro.config import DistillConfig
from repro.distill.ir import DInstr, DistillIR, block_name_for
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import NUM_REGS, ZERO
from repro.profiling.profile_data import Profile

#: A loop must cover this share of the training run to earn an anchor.
MIN_REGION_SHARE = 0.02

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: Fork placement is the pass that *establishes* the fork discipline:
#: anchors at original block leaders (IR010), one fork per anchor
#: (IR009), and use sets covering original-program liveness at the
#: anchor (IR006) — plus block-structure integrity across the strided
#: block splits it performs.
PASS_INVARIANTS = (
    "IR001", "IR002", "IR003", "IR004", "IR005", "IR006", "IR009", "IR010",
)


@dataclass(frozen=True)
class AnchorPlan:
    """One selected anchor: where, how often, and with which scratch reg."""

    pc: int
    stride: int
    scratch_reg: Optional[int]
    #: Estimated dynamic instructions between consecutive anchor arrivals.
    spacing: float


@dataclass
class ForkPlacementStats:
    """What the pass did (for the distillation report)."""

    candidates: int = 0
    anchors: List[int] = field(default_factory=list)
    plans: List[AnchorPlan] = field(default_factory=list)
    expected_task_size: float = 0.0


def run_fork_placement(
    ir: DistillIR,
    profile: Profile,
    cfg: ControlFlowGraph,
    loops: LoopForest,
    liveness: LivenessInfo,
    config: DistillConfig,
) -> ForkPlacementStats:
    """Choose anchors and insert (possibly strided) forks, in place."""
    stats = ForkPlacementStats()
    surviving = {
        block.orig_start_pc for block in ir.blocks
        if block.orig_start_pc is not None
    }
    plans = _plan_anchors(profile, cfg, loops, config, surviving)
    stats.candidates = len(plans)
    scratch_pool = _untouched_registers(cfg)
    expected_forks = 0.0
    for plan_index, plan in enumerate(plans):
        scratch = (
            scratch_pool[plan_index % len(scratch_pool)]
            if scratch_pool and plan.stride > 1 else None
        )
        stride = plan.stride if scratch is not None else 1
        final = AnchorPlan(
            pc=plan.pc, stride=stride, scratch_reg=scratch,
            spacing=plan.spacing,
        )
        _insert_fork(ir, cfg, liveness, final)
        stats.plans.append(final)
        stats.anchors.append(plan.pc)
        expected_forks += profile.exec_count(plan.pc) / stride
    if expected_forks:
        stats.expected_task_size = (
            profile.total_instructions / expected_forks
        )
    return stats


# -- anchor selection -----------------------------------------------------------


def _plan_anchors(
    profile: Profile,
    cfg: ControlFlowGraph,
    loops: LoopForest,
    config: DistillConfig,
    surviving: Set[int],
) -> List[AnchorPlan]:
    total = profile.total_instructions
    if not total:
        return []
    candidates: List[AnchorPlan] = []
    seen: Set[int] = set()
    ranked = sorted(
        loops.loops,
        key=lambda loop: -_region_instrs(loop, cfg, profile),
    )
    for loop in ranked:
        header_pc = cfg.blocks[loop.header].start
        count = profile.exec_count(header_pc)
        region = _region_instrs(loop, cfg, profile)
        if (
            header_pc == cfg.program.entry
            or header_pc not in surviving
            or header_pc in seen
            or count == 0
            or region / total < MIN_REGION_SHARE
        ):
            continue
        spacing = region / count
        candidates.append(_make_plan(header_pc, spacing, config))
        seen.add(header_pc)
    if not candidates:
        candidates = _function_entry_plans(
            profile, cfg, config, surviving, total
        )
    return candidates[: config.max_anchors]


def _region_instrs(loop, cfg: ControlFlowGraph, profile: Profile) -> int:
    return sum(
        profile.exec_count(pc)
        for block_index in loop.body
        for pc in cfg.blocks[block_index].pcs
    )


def _function_entry_plans(
    profile: Profile,
    cfg: ControlFlowGraph,
    config: DistillConfig,
    surviving: Set[int],
    total: int,
) -> List[AnchorPlan]:
    plans: List[AnchorPlan] = []
    seen: Set[int] = set()
    entries = sorted(
        {
            int(instr.target)
            for instr in cfg.program.code
            if instr.op is Opcode.JAL
        },
        key=lambda pc: -profile.exec_count(pc),
    )
    for pc in entries:
        count = profile.exec_count(pc)
        if pc == cfg.program.entry or pc not in surviving or pc in seen:
            continue
        if count == 0:
            continue
        spacing = total / count
        plans.append(_make_plan(pc, spacing, config))
        seen.add(pc)
    return plans


def _make_plan(pc: int, spacing: float, config: DistillConfig) -> AnchorPlan:
    stride = max(1, round(config.target_task_size / max(spacing, 1.0)))
    return AnchorPlan(pc=pc, stride=stride, scratch_reg=None, spacing=spacing)


def _untouched_registers(cfg: ControlFlowGraph) -> List[int]:
    """Registers the original program neither reads nor writes.

    Safe as master-private scratch: no slave can ever record one as a
    live-in, and no committed live-out can ever overwrite one.
    """
    touched: Set[int] = {ZERO}
    for instr in cfg.program.code:
        touched |= instr.uses()
        touched |= instr.defs()
    return [reg for reg in range(1, NUM_REGS) if reg not in touched]


# -- fork emission ---------------------------------------------------------------


def _insert_fork(
    ir: DistillIR,
    cfg: ControlFlowGraph,
    liveness: LivenessInfo,
    plan: AnchorPlan,
) -> None:
    block = ir.block(block_name_for(plan.pc))
    live_regs = frozenset(liveness.live_in[cfg.block_of_pc[plan.pc]])
    fork_uses = live_regs | (
        {plan.scratch_reg} if plan.scratch_reg is not None else set()
    )
    fork = DInstr(
        Instruction(op=Opcode.FORK, target=plan.pc),
        orig_pc=None,
        uses_override=frozenset(fork_uses),
    )
    if plan.stride <= 1 or plan.scratch_reg is None:
        block.instrs.insert(0, fork)
        return
    # Strided fork: countdown in the scratch register.  The reset lands
    # immediately after the fork, i.e. exactly at the pc-map resume
    # point, so restarts begin a fresh countdown.
    scratch = plan.scratch_reg
    skip_label = f"{block.name}__strideskip"
    countdown = [
        DInstr(
            Instruction(op=Opcode.ADDI, rd=scratch, rs=scratch, imm=-1),
            uses_override=frozenset({scratch}),
        ),
        DInstr(
            Instruction(op=Opcode.BGE, rs=scratch, rt=ZERO, target=skip_label)
        ),
        fork,
        DInstr(Instruction(op=Opcode.LI, rd=scratch, imm=plan.stride - 1)),
    ]
    # Split the anchor block: countdown prologue falls through into the
    # original body, with the skip label bound to the body's start.
    body = ir.block(block_name_for(plan.pc))
    prologue = countdown
    rest = body.instrs
    body.instrs = prologue + rest
    # The branch target needs a real block: split at the body start.
    _split_block_after_prologue(ir, body, len(prologue), skip_label)


def _split_block_after_prologue(
    ir: DistillIR, block, prologue_len: int, skip_label: str
) -> None:
    """Split ``block`` so its post-prologue tail is addressable."""
    from repro.distill.ir import DBlock

    tail = DBlock(
        name=skip_label,
        # Shares the parent's origin so layout keeps the pair adjacent
        # (the parent sorts first: its name is a strict prefix).
        orig_start_pc=block.orig_start_pc,
        instrs=block.instrs[prologue_len:],
        fallthrough=block.fallthrough,
        requires_adjacent_fallthrough=block.requires_adjacent_fallthrough,
    )
    block.instrs = block.instrs[:prologue_len]
    block.fallthrough = skip_label
    block.requires_adjacent_fallthrough = False
    index = ir.blocks.index(block)
    ir.blocks.insert(index + 1, tail)
