"""Load-value specialization pass.

Loads whose profiled behaviour is provably stable — a single value, from
addresses never stored to anywhere in the training runs — are replaced by
``li rd, value``.  This is the distilled program trading generality for
speed: the master no longer touches memory for these reads.  If the
evaluation input violates the assumption, the master's predictions go
wrong and verification squashes the affected tasks; correctness is never
at risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.config import DistillConfig
from repro.distill.ir import DistillIR
from repro.isa.instructions import Instruction, Opcode
from repro.profiling.profile_data import Profile

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: Value specialization rewrites instructions in place — it must not
#: disturb block structure (IR001-IR004), provenance (IR005), or the
#: trap/reachability discipline (IR008).
PASS_INVARIANTS = ("IR001", "IR002", "IR003", "IR004", "IR005", "IR008")


@dataclass
class ValueSpecStats:
    """What the pass did (for the distillation report)."""

    candidates: int = 0
    specialized: int = 0
    #: ``(original pc, specialized value)`` per rewritten load — the
    #: Redistiller re-validates these against live architected memory
    #: when deciding what to de-specialize.
    specialized_sites: List[Tuple[int, int]] = field(default_factory=list)


def run_value_spec(
    ir: DistillIR, profile: Profile, config: DistillConfig
) -> ValueSpecStats:
    """Replace provably-stable loads with immediates, in place."""
    stats = ValueSpecStats()
    for block in ir.blocks:
        for dinstr in block.instrs:
            if dinstr.instr.op is not Opcode.LW or dinstr.orig_pc is None:
                continue
            stats.candidates += 1
            value = profile.stable_load_value(
                dinstr.orig_pc,
                min_count=config.value_spec_min_count,
                min_share=config.value_spec_min_share,
            )
            if value is None:
                continue
            dinstr.instr = Instruction(
                op=Opcode.LI, rd=dinstr.instr.rd, imm=value
            )
            stats.specialized += 1
            stats.specialized_sites.append((dinstr.orig_pc, value))
    return stats
