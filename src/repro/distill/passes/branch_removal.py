"""Biased-branch assertion pass.

A conditional branch whose profiled bias meets the threshold is *asserted*:
the distilled program simply assumes the dominant direction.

* dominant direction = not-taken  →  the branch is deleted (control falls
  through unconditionally);
* dominant direction = taken      →  the branch becomes an unconditional
  ``j`` to its target.

The condition computation usually dies with the branch and is cleaned up
by dead-code elimination afterwards.

Liveness-of-the-master constraints (the real distiller has the same):

* **back edges are never asserted** — asserting a loop's dominant
  continue direction would make the distilled loop infinite;
* **a loop's last exit is never asserted away** — if the branch's rare
  direction leaves an enclosing loop, it is removed only while that loop
  retains at least one other exit edge in the distilled program.

Violating either would not be *incorrect* (the MSSP engine bounds the
master and recovers), but it would turn every affected task into a
master timeout, which no sane distiller emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import LoopForest
from repro.config import DistillConfig
from repro.distill.ir import DistillIR
from repro.isa.instructions import Instruction, Opcode
from repro.profiling.profile_data import Profile

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: Branch assertion rewrites terminators and clears fallthroughs; every
#: surviving symbolic edge must still resolve (IR003) and stranded
#: rare-path blocks may only become *unreachable* (IR008 warning), never
#: dangle.
PASS_INVARIANTS = ("IR001", "IR002", "IR003", "IR004", "IR005")


@dataclass
class BranchRemovalStats:
    """What the pass did (for the distillation report)."""

    sites: int = 0
    asserted_taken: int = 0
    asserted_not_taken: int = 0
    skipped_back_edges: int = 0
    skipped_loop_exits: int = 0
    #: ``(original pc, dominant_taken)`` per asserted branch — the
    #: Redistiller walks each suppressed successor's write set against
    #: squash-observed mismatched registers to decide what to de-assert.
    asserted_sites: List[Tuple[int, bool]] = field(default_factory=list)


def run_branch_removal(
    ir: DistillIR,
    profile: Profile,
    cfg: ControlFlowGraph,
    domtree: DominatorTree,
    loops: LoopForest,
    config: DistillConfig,
) -> BranchRemovalStats:
    """Assert sufficiently biased, liveness-safe branches, in place."""
    stats = BranchRemovalStats()
    reachable = set(domtree.reachable)
    exit_budget = _initial_exit_counts(cfg, loops)
    for block in ir.blocks:
        last = block.last
        if last is None or not last.instr.is_branch or last.orig_pc is None:
            continue
        stats.sites += 1
        branch = profile.branch_bias(last.orig_pc)
        if (
            branch is None
            or branch.count < config.min_branch_count
            or branch.bias < config.branch_bias_threshold
        ):
            continue
        source = cfg.block_of_pc[last.orig_pc]
        if source not in reachable:
            continue
        taken_target = cfg.block_of_pc[int(cfg.program.code[last.orig_pc].target)]
        fall_pc = last.orig_pc + 1
        fall_target = cfg.block_of_pc.get(fall_pc)
        if branch.dominant_taken:
            keep, drop = taken_target, fall_target
        else:
            keep, drop = fall_target, taken_target
        if keep is None:
            continue
        if keep in reachable and domtree.dominates(keep, source):
            stats.skipped_back_edges += 1
            continue
        if drop is not None and not _may_drop_edge(
            loops, exit_budget, source, drop
        ):
            stats.skipped_loop_exits += 1
            continue
        if drop is not None:
            _consume_exit(loops, exit_budget, source, drop)
        if branch.dominant_taken:
            block.instrs[-1].instr = Instruction(
                op=Opcode.J, target=last.instr.target
            )
            block.fallthrough = None
            stats.asserted_taken += 1
            stats.asserted_sites.append((last.orig_pc, True))
        else:
            block.instrs.pop()
            stats.asserted_not_taken += 1
            stats.asserted_sites.append((last.orig_pc, False))
    return stats


def _initial_exit_counts(
    cfg: ControlFlowGraph, loops: LoopForest
) -> Dict[int, int]:
    """Exit-edge count per loop header, over all CFG edges."""
    counts: Dict[int, int] = {}
    for loop in loops.loops:
        exits = 0
        for src in loop.body:
            for dst in cfg.successors[src]:
                if dst not in loop.body:
                    exits += 1
        counts[loop.header] = exits
    return counts


def _exit_loops(
    loops: LoopForest, source: int, destination: int
) -> List[int]:
    """Headers of loops the edge source→destination exits."""
    return [
        loop.header
        for loop in loops.loops
        if source in loop.body and destination not in loop.body
    ]


def _may_drop_edge(
    loops: LoopForest, budget: Dict[int, int], source: int, destination: int
) -> bool:
    """True when removing the edge leaves every enclosing loop an exit."""
    return all(
        budget[header] >= 2
        for header in _exit_loops(loops, source, destination)
    )


def _consume_exit(
    loops: LoopForest, budget: Dict[int, int], source: int, destination: int
) -> None:
    for header in _exit_loops(loops, source, destination):
        budget[header] -= 1
