"""Cold-code elimination pass.

Blocks whose training-run execution share is at most ``cold_threshold``
(0.0 = never executed) are deleted from the distilled program.  Any
surviving control transfer into deleted code is retargeted at a
synthesized *trap* block — a lone ``halt`` — so a master that does reach
the supposedly-cold path stops immediately and the MSSP engine recovers
non-speculatively.  This is the mechanism by which "the master need not
be correct" becomes concrete: deleting reachable code is *allowed*.

Protected blocks (never deleted): the entry block, and ``jal`` return
sites whose call survives (layout requires them physically adjacent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.config import DistillConfig
from repro.distill.ir import DistillIR
from repro.profiling.profile_data import Profile

#: Checker invariants this pass must leave intact (docs/static-checks.md).
#: Block deletion is where dangling edges are easiest to create: every
#: edge into deleted code must be retargeted at the trap (IR003/IR004),
#: and protected jal return sites must survive (IR007).
PASS_INVARIANTS = ("IR001", "IR002", "IR003", "IR004", "IR005", "IR007")


@dataclass
class ColdCodeStats:
    """What the pass did (for the distillation report)."""

    blocks_removed: int = 0
    instrs_removed: int = 0
    unreachable_removed: int = 0


def run_cold_code(
    ir: DistillIR, profile: Profile, config: DistillConfig
) -> ColdCodeStats:
    """Delete cold blocks, in place."""
    stats = ColdCodeStats()
    protected: Set[str] = {ir.entry_name}
    protected.update(name for name in ir.return_site_names() if name)
    removable: Set[str] = set()
    for block in ir.blocks:
        if block.name in protected or block.orig_start_pc is None:
            continue
        if profile.is_cold(block.orig_start_pc, config.cold_threshold):
            removable.add(block.name)
            stats.blocks_removed += 1
            stats.instrs_removed += len(block.instrs)
    if removable:
        ir.remove_blocks(removable)
    stats.unreachable_removed = prune_unreachable(ir)
    return stats


def prune_unreachable(ir: DistillIR) -> int:
    """Delete blocks no longer reachable in the distilled control flow.

    Branch assertion routinely strands the rare-path blocks it bypassed;
    they carry no trap retargeting concerns (nothing reaches them), so
    they are simply dropped.  Protected return sites are kept — the IR
    reachability already includes every surviving ``jr``'s return-site
    edges, so anything this prunes is dead even under the conservative
    call/return approximation.
    """
    removed = 0
    while True:
        reachable = ir.reachable_names()
        protected = {name for name in ir.return_site_names() if name}
        stale = {
            block.name
            for block in ir.blocks
            if block.name not in reachable
            and block.name != ir.entry_name
            and block.name not in protected
        }
        if not stale:
            return removed
        removed += len(stale)
        ir.remove_blocks(stale)
