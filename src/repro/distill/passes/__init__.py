"""Individual distillation passes (one module per pass)."""

from repro.distill.passes.branch_removal import (
    BranchRemovalStats,
    run_branch_removal,
)
from repro.distill.passes.cold_code import ColdCodeStats, run_cold_code
from repro.distill.passes.dce import DceStats, run_dce
from repro.distill.passes.fork_placement import (
    ForkPlacementStats,
    run_fork_placement,
)
from repro.distill.passes.value_spec import ValueSpecStats, run_value_spec

__all__ = [
    "BranchRemovalStats",
    "run_branch_removal",
    "ColdCodeStats",
    "run_cold_code",
    "DceStats",
    "run_dce",
    "ForkPlacementStats",
    "run_fork_placement",
    "ValueSpecStats",
    "run_value_spec",
]
