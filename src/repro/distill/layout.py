"""Final code layout: IR blocks back to a flat, executable Program.

Blocks are placed in original-program order (synthesized blocks such as
the trap at the end), symbolic targets are patched to pcs, fall-through
edges whose successor is not physically next get an explicit ``j``
re-materialized, and jumps to the physically-next block are elided
(jump threading).  ``jal`` adjacency requirements are verified — a call's
return site must land at ``call pc + 1`` for the link-register arithmetic
to remain valid.

Layout also produces the :class:`~repro.distill.pc_map.PcMap` by locating
every ``fork`` instruction it placed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.distill.ir import DBlock, DInstr, DistillIR, TRAP_BLOCK
from repro.distill.pc_map import PcMap
from repro.errors import DistillError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Checker invariants the layout stage must establish on the final
#: artifact (docs/static-checks.md): in-range targets with no symbolic
#: leftovers, no fall-off-the-end, and a pc map whose resume/arrival/jr
#: tables agree with the code it just emitted.
PASS_INVARIANTS = (
    "PROG001", "PROG002", "PROG003", "PROG006",
    "MAP001", "MAP002", "MAP003", "MAP004", "MAP005", "MAP006", "MAP007",
)


def layout_ir(
    ir: DistillIR, name: Optional[str] = None, jump_threading: bool = True
) -> Tuple[Program, PcMap]:
    """Materialize ``ir`` into a distilled :class:`Program` plus its PcMap."""
    ordered = _order_blocks(ir)
    placed: List[Tuple[DBlock, List[DInstr]]] = []
    for position, block in enumerate(ordered):
        next_name = ordered[position + 1].name if position + 1 < len(ordered) else None
        instrs = list(block.instrs)
        if block.fallthrough is not None and block.fallthrough != next_name:
            if block.requires_adjacent_fallthrough:
                raise DistillError(
                    f"jal block {block.name}: return site "
                    f"{block.fallthrough} not physically adjacent"
                )
            instrs.append(
                DInstr(Instruction(op=Opcode.J, target=block.fallthrough))
            )
        elif (
            jump_threading
            and instrs
            and instrs[-1].instr.op is Opcode.J
            and instrs[-1].instr.target == next_name
        ):
            instrs = instrs[:-1]
        placed.append((block, instrs))

    # Assign pcs.
    starts: Dict[str, int] = {}
    pc = 0
    for block, instrs in placed:
        starts[block.name] = pc
        pc += len(instrs)
    total = pc

    # Patch symbolic targets and flatten.
    code: List[Instruction] = []
    # (distilled fork pc, orig anchor pc, distilled anchor-block start)
    fork_sites: List[Tuple[int, int, int]] = []
    provenance: Dict[int, int] = {}
    for block, instrs in placed:
        for dinstr in instrs:
            instr = dinstr.instr
            if isinstance(instr.target, str):
                target_name = instr.target
                if target_name not in starts:
                    raise DistillError(
                        f"{block.name}: unresolved target {target_name!r}"
                    )
                instr = instr.with_target(starts[target_name])
            if instr.op is Opcode.FORK:
                fork_sites.append(
                    (len(code), int(instr.target), starts[block.name])
                )
            if dinstr.orig_pc is not None:
                provenance[len(code)] = dinstr.orig_pc
            code.append(instr)

    if not code:
        raise DistillError("layout produced an empty program")
    if not any(instr.op is Opcode.HALT for instr in code):
        # A distilled program that runs off its end would fault the master;
        # terminate it explicitly instead (treated as a master trap).
        code.append(Instruction(op=Opcode.HALT))
        total += 1

    entry_pc = starts[ir.entry_name]
    symbols = {
        block.name: starts[block.name] for block, _ in placed
    }
    distilled = Program(
        code=tuple(code),
        memory=ir.program.memory,
        entry=entry_pc,
        symbols=symbols,
        name=name or f"{ir.program.name}.distilled",
    )

    resume: Dict[int, int] = {}
    arrival: Dict[int, int] = {}
    for distilled_pc, orig_pc, block_start in fork_sites:
        if orig_pc in resume:
            raise DistillError(f"duplicate fork anchor for original pc {orig_pc}")
        resume[orig_pc] = distilled_pc + 1
        arrival[orig_pc] = block_start
    orig_entry = ir.program.entry
    if orig_entry not in resume:
        resume[orig_entry] = entry_pc
    jr_table = {
        return_pc: starts[name]
        for return_pc in ir.call_return_pcs
        for name in (f"B{return_pc}",)
        if name in starts
    }
    pc_map = PcMap(
        resume=resume, entry_orig=orig_entry, arrival=arrival,
        jr_table=jr_table, provenance=provenance,
    )
    return distilled, pc_map


def _order_blocks(ir: DistillIR) -> List[DBlock]:
    """Original-pc order; synthesized blocks (trap) go last."""

    def key(block: DBlock) -> Tuple[int, int, str]:
        if block.name == TRAP_BLOCK:
            return (2, 0, block.name)
        if block.orig_start_pc is None:
            return (1, 0, block.name)
        return (0, block.orig_start_pc, block.name)

    return sorted(ir.blocks, key=key)
