"""Incremental re-distillation: fold runtime observations into a profile.

The offline distiller is profile-guided; when the evaluation input
drifts away from the training inputs, its speculative bets (``value_spec``
constants, asserted branches) start squashing tasks.  This module is the
distiller-side half of the online adaptation loop: given evidence
gathered by the runtime (:mod:`repro.mssp.redistill`), it synthesizes a
*delta profile* — counterexample observations weighted heavily enough to
flip the offending pass decisions — merges it into the training profile,
and re-runs the (pure, deterministic) :class:`~repro.distill.distiller.
Distiller` to produce a replacement artifact.

Two evidence→observation mappings are supported:

* **value-site revalidation** — every ``value_spec`` site ``(pc, value)``
  is re-checked against live architected memory at the addresses the
  training profile recorded for that load; a mismatch contributes an
  observed ``(pc, address, actual value)`` weighted by the site's
  training count, dropping the stale constant's share below
  ``value_spec_min_share`` (de-specialization);
* **suppressed-path de-assertion** — for each asserted branch, the
  write-set of the suppressed successor block is intersected with the
  registers squash verification reported mismatched; an overlap
  contributes rare-direction branch counts equal to the dominant count,
  driving the bias to 0.5 (de-assertion).

Folding is cumulative: the returned profile becomes the next round's
base, so observations survive later rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.config import DistillConfig
from repro.distill.distiller import DistillationResult, Distiller
from repro.isa.program import Program
from repro.profiling.profile_data import (
    BranchProfile,
    LoadProfile,
    Profile,
    VALUE_HISTOGRAM_CAP,
)

__all__ = [
    "AdaptationDelta",
    "suppressed_block_writes",
    "despecialization_observations",
    "deassertion_observations",
    "fold_observations",
    "redistill",
]

#: Linear-walk bound for a suppressed successor block (blocks in this
#: ISA are short; the bound only guards against degenerate layouts).
_BLOCK_WALK_LIMIT = 64


@dataclass(frozen=True)
class AdaptationDelta:
    """What one re-distillation round changed, for events/reports."""

    despecialized: Tuple[Tuple[int, int], ...]   # (pc, observed value)
    deasserted: Tuple[Tuple[int, bool], ...]     # (pc, was dominant_taken)

    @property
    def empty(self) -> bool:
        return not self.despecialized and not self.deasserted


def suppressed_block_writes(program: Program, start_pc: int) -> FrozenSet[int]:
    """Registers written on the linear block starting at ``start_pc``.

    The suppressed direction of an asserted branch begins a block the
    distilled program never executes; if the evaluation input takes it,
    every register it writes diverges in the master.  The walk stops at
    the first control transfer (branch/jump/halt), which ends the
    straight-line portion the assertion uniquely suppressed.
    """
    writes: Set[int] = set()
    pc = start_pc
    code = program.code
    for _ in range(_BLOCK_WALK_LIMIT):
        if not 0 <= pc < len(code):
            break
        instr = code[pc]
        writes |= instr.defs()
        if instr.is_terminator:
            break
        pc += 1
    writes.discard(0)
    return frozenset(writes)


def despecialization_observations(
    profile: Profile,
    specialized_sites: Iterable[Tuple[int, int]],
    read_cell: Callable[[Iterable[int]], Dict[int, int]],
) -> List[Tuple[int, int, int]]:
    """``(pc, address, observed value)`` for stale ``value_spec`` sites.

    ``read_cell`` reads a batch of architected memory cells (typically
    :meth:`~repro.machine.state.ArchState.load_cells`).  A site is stale
    when any profiled address currently holds a value other than the
    specialized constant.
    """
    out: List[Tuple[int, int, int]] = []
    for pc, spec_value in specialized_sites:
        load = profile.loads.get(pc)
        if load is None or not load.addresses:
            continue
        current = read_cell(sorted(load.addresses))
        for address in sorted(current):
            observed = current[address]
            if observed != spec_value:
                out.append((pc, address, observed))
    return out


def deassertion_observations(
    program: Program,
    asserted_sites: Iterable[Tuple[int, bool]],
    suspect_regs: FrozenSet[int],
) -> List[Tuple[int, bool]]:
    """``(pc, rare_direction_taken)`` for asserted branches implicated by
    squash evidence: the suppressed successor's write set intersects the
    registers verification observed mismatched."""
    if not suspect_regs:
        return []
    out: List[Tuple[int, bool]] = []
    for pc, dominant_taken in asserted_sites:
        instr = program.code[pc]
        if dominant_taken:
            suppressed_start = pc + 1
        else:
            suppressed_start = int(instr.target)
        if suppressed_block_writes(program, suppressed_start) & suspect_regs:
            out.append((pc, not dominant_taken))
    return out


def fold_observations(
    profile: Profile,
    despec: Iterable[Tuple[int, int, int]],
    deassert: Iterable[Tuple[int, bool]],
) -> Profile:
    """Merge counterexample observations into ``profile``.

    Weights are chosen to decisively flip the pass decisions they target:
    a de-specializing load observation is weighted by the site's full
    training count (new value's share ≥ 0.5 < ``value_spec_min_share``),
    and a de-asserting branch observation adds rare-direction counts
    equal to the dominant direction's (bias → 0.5 < threshold).
    """
    delta = Profile(profile.program_name, profile.code_length)
    for pc, address, value in despec:
        base = profile.loads.get(pc)
        weight = max(1, base.count if base is not None else 1)
        load = delta.loads.setdefault(pc, LoadProfile())
        load.count += weight
        if not load.polymorphic:
            load.values[value] = load.values.get(value, 0) + weight
            load.addresses.add(address)
            if len(load.values) > VALUE_HISTOGRAM_CAP:
                load.polymorphic = True
                load.values.clear()
                load.addresses.clear()
    for pc, rare_taken in deassert:
        base = profile.branches.get(pc)
        weight = max(1, base.count if base is not None else 1)
        branch = delta.branches.setdefault(pc, BranchProfile())
        if rare_taken:
            branch.taken += weight
        else:
            branch.not_taken += weight
    return profile.merge(delta)


def redistill(
    program: Program,
    profile: Profile,
    prior: DistillationResult,
    read_cell: Callable[[Iterable[int]], Dict[int, int]],
    suspect_regs: FrozenSet[int],
    config: Optional[DistillConfig] = None,
) -> Tuple[Optional[DistillationResult], Profile, AdaptationDelta]:
    """One re-distillation round.

    Gathers both observation kinds against ``prior``'s pass statistics,
    folds them into ``profile``, and re-runs the full distiller.  Returns
    ``(result, folded profile, delta)``; ``result`` is ``None`` when no
    observation mapped — re-distilling on an unchanged profile would
    reproduce the same artifact, so the caller should disarm rather than
    thrash.
    """
    stats = prior.report.pass_stats
    value_sites = getattr(
        stats.get("value_spec"), "specialized_sites", []
    )
    branch_sites = getattr(
        stats.get("branch_removal"), "asserted_sites", []
    )
    despec = despecialization_observations(profile, value_sites, read_cell)
    deassert = deassertion_observations(program, branch_sites, suspect_regs)
    delta = AdaptationDelta(
        despecialized=tuple(sorted({(pc, v) for pc, _, v in despec})),
        deasserted=tuple(sorted(deassert)),
    )
    if delta.empty:
        return None, profile, delta
    folded = fold_observations(profile, despec, deassert)
    result = Distiller(config or DistillConfig()).distill(program, folded)
    return result, folded, delta
