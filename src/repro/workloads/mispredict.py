"""``mispredict`` — phase-shifting mode values that defeat ``value_spec``.

The kernel reads a *mode* word from a small table indexed by the loop
counter's high bits, so the mode is constant for long phases and then
shifts.  The training inputs make the whole table one value (the
distiller specializes the mode load to that constant); the evaluation
input drifts the table, so each phase shift turns the specialized
constant stale and the master's derived live-in (``r9``) mispredicts
every subsequent task — exactly the adversarial input for the adaptive
prediction loop: a last-value predictor rescues the stable stretch of a
phase, and squash-driven re-distillation de-specializes the mode load
for good.

A latch register is *stored before it is rewritten* each iteration, so
it is a register live-in at the fork anchor; the pure-data checksum is
mode-independent, keeping the rest of the master's prediction exact.

Results: ``RESULT_BASE`` = checksum, ``RESULT_BASE+1`` = final latch,
``RESULT_BASE+2`` = iteration count.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.program import Program
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: Mode-table slots (indexed by ``(counter >> PHASE_SHIFT) & 7``).
MODE_SLOTS = 8
MODE_BASE = INPUT_BASE
DATA_BASE = INPUT_BASE + MODE_SLOTS

def phase_shift(size: int) -> int:
    """Countdown bits below the mode index for a ``size``-iteration run.

    Size-relative so every size — including the 0.1-scale CI smoke —
    sees several phases: the index is ``(counter >> shift) & 7`` and
    this shift keeps ``size >> shift`` in 4..7, i.e. 4-8 phases of
    ``2**shift`` iterations each.
    """
    return max(1, max(1, size // 4).bit_length() - 1)

#: The mode value every training input exhibits (flat table).
BASE_MODE = 0x40

#: Training seeds are *searched* so their drift draw is zero (flat mode
#: table — the distiller specializes the mode load); the evaluation seed
#: is searched for a non-zero drift (the table varies by phase).  The
#: workload tests pin these properties down.
TRAIN_SEEDS = (104, 113)
EVAL_SEED = 770


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="mispredict")

    b.label("main")
    b.li("r1", size)            # iterations remaining (countdown)
    b.li("r4", DATA_BASE)       # data base: loop-invariant (provable live-in)
    b.li("r9", BASE_MODE ^ 5)   # mode latch (read before written below)
    b.li("r10", 0)              # checksum
    b.li("r12", 0)              # iterations executed

    guards = []
    b.label("loop")
    # The latch is *read* (stored) before this iteration rewrites it, so
    # r9 is a register live-in at the fork anchor — the cell the master
    # gets wrong once the specialized mode constant goes stale.
    b.sw("r9", "zero", RESULT_BASE + 1)
    guards.append(never_taken_guard(b, "mp_latch", "r9", "r4"))
    b.srli("r2", "r1", phase_shift(size))
    b.andi("r2", "r2", MODE_SLOTS - 1)
    b.addi("r3", "r2", MODE_BASE)
    b.lw("r7", "r3", 0)         # mode word: the value_spec target
    b.xori("r9", "r7", 5)       # rewrite the latch from the mode
    b.add("r11", "r4", "r12")   # cursor = invariant base + iteration count
    b.lw("r8", "r11", 0)        # pure data, mode-independent
    b.add("r10", "r10", "r8")
    b.addi("r12", "r12", 1)
    b.addi("r1", "r1", -1)
    b.bne("r1", "zero", "loop")

    b.sw("r10", "zero", RESULT_BASE)
    b.sw("r9", "zero", RESULT_BASE + 1)
    b.sw("r12", "zero", RESULT_BASE + 2)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def drift_for(rng: random.Random) -> int:
    """The seed's phase drift (the first draw; 0 = flat table)."""
    return rng.randrange(4)


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Mode table plus a checksum stream.

    The top phase's slot always holds :data:`BASE_MODE`; lower slots
    drift away from it by ``drift`` per phase.  With ``drift == 0``
    (every training seed) the table is flat and the mode load is
    perfectly specializable; with ``drift > 0`` (the evaluation seed)
    each phase shift invalidates the constant.
    """
    drift = drift_for(rng)
    top = (size >> phase_shift(size)) & (MODE_SLOTS - 1)
    data = {}
    for slot in range(MODE_SLOTS):
        below = max(0, top - slot)
        data[MODE_BASE + slot] = BASE_MODE + drift * below
    for index in range(size):
        data[DATA_BASE + index] = rng.randint(1, 2 ** 16)
    return data


SPEC = WorkloadSpec(
    name="mispredict",
    description="phase-shifting mode table that defeats value "
                "specialization: stale constants squash until the "
                "adaptive loop re-predicts or re-distills",
    build_code=build_code,
    gen_data=gen_data,
    default_size=2047,
    train_seeds=TRAIN_SEEDS,
    eval_seed=EVAL_SEED,
)
