"""``branchy`` — dense data-dependent branching (models gcc).

Each input element flows through a cascade of classification branches
with a spread of biases: parity (~50%), small-range (~70%), a magnitude
test (~90%), and a negative-value guard that generated data never trips
(~100%, assertion fodder).  Several counters accumulate, so the register
live-in surface between tasks is wide — the stress case for the master's
register predictions.

Results: ``RESULT_BASE`` .. ``RESULT_BASE+3`` = the four class counters.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="branchy")

    b.label("main")
    b.li("r1", INPUT_BASE)
    b.li("r2", size)
    b.li("r3", 0)               # i
    b.li("r4", 0)               # even counter
    b.li("r5", 0)               # small counter
    b.li("r6", 0)               # large counter
    b.li("r7", 0)               # weighted sum

    guards = []
    b.label("loop")
    b.add("r8", "r1", "r3")
    b.lw("r9", "r8", 0)
    guards.append(never_taken_guard(b, "br_input", "r9", "r3"))
    b.comment("guard: negative input (never happens) -> cold fixup")
    b.blt("r9", "zero", "fixup")
    b.label("classify")
    b.andi("r10", "r9", 1)
    b.beq("r10", "zero", "even")
    b.comment("odd: weighted accumulate")
    b.muli("r11", "r9", 3)
    b.add("r7", "r7", "r11")
    b.j("range_check")
    b.label("even")
    b.addi("r4", "r4", 1)
    b.add("r7", "r7", "r9")
    b.label("range_check")
    b.slti("r10", "r9", 300)
    b.beq("r10", "zero", "large")
    b.addi("r5", "r5", 1)       # ~70% of values are < 300
    b.j("magnitude")
    b.label("large")
    b.addi("r6", "r6", 1)
    b.label("magnitude")
    b.slti("r10", "r9", 900)
    b.bne("r10", "zero", "next")   # ~90% taken
    b.comment("rare-ish: very large value, extra folding")
    b.srli("r11", "r9", 2)
    b.add("r7", "r7", "r11")
    b.label("next")
    guards.append(never_taken_guard(b, "br_sum", "r7", "r4"))
    b.addi("r3", "r3", 1)
    b.blt("r3", "r2", "loop")

    b.sw("r4", "zero", RESULT_BASE)
    b.sw("r5", "zero", RESULT_BASE + 1)
    b.sw("r6", "zero", RESULT_BASE + 2)
    b.sw("r7", "zero", RESULT_BASE + 3)
    b.halt()

    b.label("fixup")
    b.comment("cold: clamp negative input to zero")
    b.li("r9", 0)
    b.j("classify")
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Non-negative values: 70% below 300, 20% 300-899, 10% 900+."""
    data: Dict[int, int] = {}
    for index in range(size):
        roll = rng.random()
        if roll < 0.7:
            value = rng.randint(0, 299)
        elif roll < 0.9:
            value = rng.randint(300, 899)
        else:
            value = rng.randint(900, 5000)
        data[INPUT_BASE + index] = value
    return data


SPEC = WorkloadSpec(
    name="branchy",
    description="classification cascade with 50/70/90/100%-biased "
                "branches and wide register live-in surface",
    build_code=build_code,
    gen_data=gen_data,
    default_size=2600,
)
