"""``hashlookup`` — open-addressing hash-table probing (models vortex).

The table is *built by the generator* (in Python) and shipped as input
data; the kernel only probes it, which is the read-mostly access pattern
the paper's vortex exhibits.  Probe loops are short and data-dependent;
the hit/miss branch is biased by the query mix (~85% hits); a
probe-chain-overflow path is cold.

Results: ``RESULT_BASE`` = hits, ``RESULT_BASE+1`` = misses,
``RESULT_BASE+2`` = probe count.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: Table slots (power of two; fixed so code identity is size-independent
#: of the query count).
TABLE_SIZE = 1024
TABLE_BASE = INPUT_BASE
QUERY_BASE = TABLE_BASE + TABLE_SIZE

#: Probes beyond this length take the cold overflow path.
MAX_PROBES = 16


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="hashlookup")

    b.label("main")
    b.li("r1", size)            # queries remaining
    b.li("r2", QUERY_BASE)      # query cursor
    b.li("r3", 0)               # hits
    b.li("r4", 0)               # misses
    b.li("r5", 0)               # probes
    b.li("r10", TABLE_SIZE - 1)

    guards = []
    b.label("next_query")
    b.lw("r6", "r2", 0)         # key
    guards.append(never_taken_guard(b, "hl_key", "r6", "r2"))
    b.and_("r7", "r6", "r10")   # slot = key & (T-1)
    guards.append(never_taken_guard(b, "hl_slot", "r7", "r3"))
    b.li("r11", 0)              # probe length

    b.label("probe")
    b.addi("r5", "r5", 1)
    b.addi("r11", "r11", 1)
    b.slti("r12", "r11", MAX_PROBES)
    b.beq("r12", "zero", "overflow")   # cold: probe chain too long
    b.addi("r8", "r7", TABLE_BASE)
    b.lw("r9", "r8", 0)         # table[slot]
    b.beq("r9", "r6", "hit")
    b.beq("r9", "zero", "miss")
    b.addi("r7", "r7", 1)
    b.and_("r7", "r7", "r10")
    b.j("probe")

    b.label("hit")
    b.addi("r3", "r3", 1)
    b.j("advance")
    b.label("miss")
    b.addi("r4", "r4", 1)
    b.label("advance")
    b.addi("r2", "r2", 1)
    b.addi("r1", "r1", -1)
    b.bne("r1", "zero", "next_query")

    b.sw("r3", "zero", RESULT_BASE)
    b.sw("r4", "zero", RESULT_BASE + 1)
    b.sw("r5", "zero", RESULT_BASE + 2)
    b.halt()

    b.label("overflow")
    b.comment("cold: pathological probe chain")
    b.addi("r4", "r4", 1)
    b.j("advance")
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Builds the table at ~55% load factor, then a query stream."""
    mask = TABLE_SIZE - 1
    table = [0] * TABLE_SIZE
    inserted = []
    while len(inserted) < int(TABLE_SIZE * 0.55):
        key = rng.randint(1, 10 ** 6)
        slot = key & mask
        while table[slot] != 0:
            if table[slot] == key:
                break
            slot = (slot + 1) & mask
        else:
            table[slot] = key
            inserted.append(key)
    data = {
        TABLE_BASE + index: value
        for index, value in enumerate(table)
        if value
    }
    for index in range(size):
        if rng.random() < 0.85:
            data[QUERY_BASE + index] = rng.choice(inserted)
        else:
            data[QUERY_BASE + index] = rng.randint(1, 10 ** 6)
    return data


SPEC = WorkloadSpec(
    name="hashlookup",
    description="open-addressing probes over a read-only table: biased "
                "hit branch, data-dependent chains, cold overflow path",
    build_code=build_code,
    gen_data=gen_data,
    default_size=1800,
)
