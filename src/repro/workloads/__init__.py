"""The synthetic SPECint-like workload suite (see DESIGN.md §4)."""

from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadInstance,
    WorkloadSpec,
)
from repro.workloads.registry import (
    REPRESENTATIVE,
    WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "INPUT_BASE",
    "RESULT_BASE",
    "WorkloadInstance",
    "WorkloadSpec",
    "REPRESENTATIVE",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
