"""``interp`` — a bytecode interpreter interpreting a bytecode program
(models perlbmk/gcc dispatch loops — an interpreter running *inside* the
simulated machine).

The guest bytecode is generated deterministically from ``size`` and is
part of the program's constant data; the seed-varying input feeds the
guest's memory.  The host dispatch loop fetches an opcode and walks a
compare chain — the classic hard-to-predict indirect-dispatch pattern,
rendered as branches.  An unknown-opcode trap exists but never fires.

Guest ISA (one word per operand): HALT, LOADI r c, ADD a b dst,
SUB a b dst, LOADMEM r idx, STORE r idx, JNZ r target, DEC r.

Results: ``RESULT_BASE`` = guest output cell, ``RESULT_BASE+1`` =
executed guest ops.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

BYTECODE_BASE = 0x3000
GUEST_REGS = 0x3800          # 8 guest registers
GUEST_MEM = INPUT_BASE       # guest memory = our input data

OP_HALT, OP_LOADI, OP_ADD, OP_SUB, OP_LOADMEM, OP_STORE, OP_JNZ, OP_DEC = (
    range(8)
)

#: Guest memory cells the generator populates.
GUEST_CELLS = 64


def _guest_program(size: int) -> List[int]:
    """A guest program: an outer counted loop summing/permuting memory.

    ``size`` sets the outer trip count (guest reg 0).  Deterministic in
    ``size`` only — bytecode is constant data, like real program text.
    """
    code: List[int] = []

    def emit(*words: int) -> None:
        code.extend(words)

    emit(OP_LOADI, 0, size)          # r0 = outer counter
    emit(OP_LOADI, 3, 0)             # r3 = accumulator
    loop_top = len(code)
    emit(OP_LOADI, 1, 0)             # r1 = inner index
    emit(OP_LOADI, 2, 8)             # r2 = inner counter
    inner_top = len(code)
    emit(OP_LOADMEM, 4, 1)           # r4 = guest_mem[r1]
    emit(OP_ADD, 3, 4, 3)            # acc += r4
    emit(OP_ADD, 1, 2, 1)            # stride by remaining count (varies)
    emit(OP_DEC, 2)
    emit(OP_JNZ, 2, inner_top)
    emit(OP_SUB, 3, 0, 3)            # fold counter in
    emit(OP_STORE, 3, 1)             # write back (mutates guest memory)
    emit(OP_DEC, 0)
    emit(OP_JNZ, 0, loop_top)
    emit(OP_STORE, 3, 0)             # final result into guest_mem[r3? no: idx 0]
    emit(OP_HALT)
    return code


def build_code(size: int) -> Program:
    guest = _guest_program(size)
    b = ProgramBuilder(name="interp")
    for position, word in enumerate(guest):
        b.poke(BYTECODE_BASE + position, word)

    b.label("main")
    b.li("r1", BYTECODE_BASE)   # guest pc base
    b.li("r2", 0)               # guest pc
    b.li("r3", 0)               # executed guest ops
    b.li("r15", GUEST_CELLS - 1)

    guards = []
    b.label("dispatch")
    b.add("r4", "r1", "r2")
    b.lw("r5", "r4", 0)         # opcode
    guards.append(never_taken_guard(b, "in_op", "r5", "r2"))
    b.addi("r3", "r3", 1)
    b.beq("r5", "zero", "op_halt")
    b.li("r6", OP_LOADI)
    b.beq("r5", "r6", "op_loadi")
    b.li("r6", OP_ADD)
    b.beq("r5", "r6", "op_add")
    b.li("r6", OP_SUB)
    b.beq("r5", "r6", "op_sub")
    b.li("r6", OP_LOADMEM)
    b.beq("r5", "r6", "op_loadmem")
    b.li("r6", OP_STORE)
    b.beq("r5", "r6", "op_store")
    b.li("r6", OP_JNZ)
    b.beq("r5", "r6", "op_jnz")
    b.li("r6", OP_DEC)
    b.beq("r5", "r6", "op_dec")
    b.comment("cold: unknown opcode")
    b.li("r7", -1)
    b.sw("r7", "zero", RESULT_BASE)
    b.halt()

    b.label("op_loadi")
    b.lw("r7", "r4", 1)         # reg
    b.lw("r8", "r4", 2)         # const
    b.addi("r7", "r7", GUEST_REGS)
    b.sw("r8", "r7", 0)
    b.addi("r2", "r2", 3)
    b.j("dispatch")

    b.label("op_add")
    b.lw("r7", "r4", 1)
    b.lw("r8", "r4", 2)
    b.lw("r9", "r4", 3)
    b.addi("r7", "r7", GUEST_REGS)
    b.lw("r7", "r7", 0)
    b.addi("r8", "r8", GUEST_REGS)
    b.lw("r8", "r8", 0)
    b.add("r7", "r7", "r8")
    b.addi("r9", "r9", GUEST_REGS)
    b.sw("r7", "r9", 0)
    b.addi("r2", "r2", 4)
    b.j("dispatch")

    b.label("op_sub")
    b.lw("r7", "r4", 1)
    b.lw("r8", "r4", 2)
    b.lw("r9", "r4", 3)
    b.addi("r7", "r7", GUEST_REGS)
    b.lw("r7", "r7", 0)
    b.addi("r8", "r8", GUEST_REGS)
    b.lw("r8", "r8", 0)
    b.sub("r7", "r7", "r8")
    b.addi("r9", "r9", GUEST_REGS)
    b.sw("r7", "r9", 0)
    b.addi("r2", "r2", 4)
    b.j("dispatch")

    b.label("op_loadmem")
    b.lw("r7", "r4", 1)         # dst reg
    b.lw("r8", "r4", 2)         # index reg
    b.addi("r8", "r8", GUEST_REGS)
    b.lw("r8", "r8", 0)
    b.and_("r8", "r8", "r15")   # mask into guest memory
    b.addi("r8", "r8", GUEST_MEM)
    b.lw("r8", "r8", 0)
    b.addi("r7", "r7", GUEST_REGS)
    b.sw("r8", "r7", 0)
    b.addi("r2", "r2", 3)
    b.j("dispatch")

    b.label("op_store")
    b.lw("r7", "r4", 1)         # src reg
    b.lw("r8", "r4", 2)         # index reg
    b.addi("r7", "r7", GUEST_REGS)
    b.lw("r7", "r7", 0)
    b.addi("r8", "r8", GUEST_REGS)
    b.lw("r8", "r8", 0)
    b.and_("r8", "r8", "r15")
    b.addi("r8", "r8", GUEST_MEM)
    b.sw("r7", "r8", 0)
    b.addi("r2", "r2", 3)
    b.j("dispatch")

    b.label("op_jnz")
    b.lw("r7", "r4", 1)         # reg
    b.lw("r8", "r4", 2)         # target
    b.addi("r7", "r7", GUEST_REGS)
    b.lw("r7", "r7", 0)
    b.beq("r7", "zero", "jnz_fall")
    b.mov("r2", "r8")
    b.j("dispatch")
    b.label("jnz_fall")
    b.addi("r2", "r2", 3)
    b.j("dispatch")

    b.label("op_dec")
    b.lw("r7", "r4", 1)
    b.addi("r7", "r7", GUEST_REGS)
    b.lw("r8", "r7", 0)
    b.addi("r8", "r8", -1)
    b.sw("r8", "r7", 0)
    b.addi("r2", "r2", 2)
    b.j("dispatch")

    b.label("op_halt")
    b.li("r7", GUEST_MEM)
    b.lw("r8", "r7", 0)         # guest_mem[0]: guest's output
    b.sw("r8", "zero", RESULT_BASE)
    b.sw("r3", "zero", RESULT_BASE + 1)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    del size
    return {
        GUEST_MEM + index: rng.randint(1, 999)
        for index in range(GUEST_CELLS)
    }


SPEC = WorkloadSpec(
    name="interp",
    description="bytecode VM interpreting a guest loop program: compare-"
                "chain dispatch, guest state in memory, cold bad-opcode "
                "trap",
    build_code=build_code,
    gen_data=gen_data,
    default_size=55,
)
