"""``compress`` — run-length encoder (models gzip/bzip2 inner loops).

A tight scan loop over the input with one moderately biased branch
(run-continues vs. run-ends, set by the generated run lengths), a
never-taken giant-run escape path (cold-code fodder), and a constant
escape-threshold cell (value-specialization fodder).

Results: ``RESULT_BASE`` = weighted checksum of emitted runs,
``RESULT_BASE+1`` = number of runs emitted.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: A run longer than this takes the escape path; generated runs are
#: always much shorter, so the path is cold.
GIANT_RUN = 64


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="compress")
    b.alloc("giant_run", [GIANT_RUN])

    b.label("main")
    b.li("r1", INPUT_BASE)      # input base
    b.li("r2", size)            # element count
    b.lw("r3", "r1", 0)         # prev = a[0]
    b.li("r4", 1)               # run length
    b.li("r5", 0)               # runs emitted
    b.li("r6", 0)               # checksum
    b.li("r7", 1)               # i

    guards = []
    b.label("loop")
    b.bge("r7", "r2", "flush")
    b.add("r8", "r1", "r7")
    b.lw("r9", "r8", 0)         # cur = a[i]
    guards.append(never_taken_guard(b, "cmp_input", "r9", "r7"))
    guards.append(never_taken_guard(b, "cmp_state", "r6", "r5"))
    b.bne("r9", "r3", "emit")
    b.comment("run continues")
    b.addi("r4", "r4", 1)
    b.lw("r10", "zero", "giant_run")   # stable load: the threshold
    b.blt("r4", "r10", "cont")         # ~always taken (runs are short)
    b.comment("cold: giant-run escape (never reached by generated data)")
    b.mul("r11", "r3", "r4")
    b.add("r6", "r6", "r11")
    b.addi("r5", "r5", 1)
    b.li("r4", 0)
    b.label("cont")
    b.addi("r7", "r7", 1)
    b.j("loop")

    b.label("emit")
    b.comment("close the current run, start a new one")
    b.mul("r11", "r3", "r4")
    b.add("r6", "r6", "r11")
    b.addi("r5", "r5", 1)
    b.mov("r3", "r9")
    b.li("r4", 1)
    b.j("cont")

    b.label("flush")
    b.mul("r11", "r3", "r4")
    b.add("r6", "r6", "r11")
    b.addi("r5", "r5", 1)
    b.sw("r6", "zero", RESULT_BASE)
    b.sw("r5", "zero", RESULT_BASE + 1)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Runs of small symbols, average length ~6."""
    data: Dict[int, int] = {}
    index = 0
    while index < size:
        symbol = rng.randint(1, 6)
        run = rng.randint(1, 11)
        for _ in range(min(run, size - index)):
            data[INPUT_BASE + index] = symbol
            index += 1
    return data


SPEC = WorkloadSpec(
    name="compress",
    description="run-length encoder: biased run-continue branch, cold "
                "giant-run path, constant threshold cell",
    build_code=build_code,
    gen_data=gen_data,
    default_size=3500,
)
