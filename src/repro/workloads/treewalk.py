"""``treewalk`` — binary-tree walk with an explicit stack (models twolf/vpr
structure traversals).

A complete binary tree in heap layout is walked depth-first using a
stack in memory (push/pop through ``sp``-style pointer arithmetic).  A
pruning compare against a constant threshold cell (value-specialization
target) skips subtrees; the generator makes pruning rare, so the skip
path is strongly biased away and the threshold load feeds an asserted
branch.  Two passes accumulate different figures.

Results: ``RESULT_BASE`` = visited-sum, ``RESULT_BASE+1`` = node count.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: Explicit DFS stack region (outside input/result areas).
STACK_BASE = 0x7000

#: Node values are >= 1; pruning triggers only below this, i.e. never
#: for generated data — but the *code* cannot know that.
PRUNE_THRESHOLD = -5

PASSES = 2


def build_code(size: int) -> Program:
    """``size`` = number of tree nodes (any positive count works)."""
    b = ProgramBuilder(name="treewalk")
    b.alloc("threshold", [PRUNE_THRESHOLD])

    b.label("main")
    b.li("r14", PASSES)         # passes remaining
    b.li("r12", 0)              # visited-sum
    b.li("r13", 0)              # node count
    b.lw("r11", "zero", "threshold")   # stable constant

    guards = []
    b.label("pass_loop")
    b.li("r1", STACK_BASE)      # stack pointer (grows up)
    b.li("r2", 0)               # push root (node index 0)
    b.sw("r2", "r1", 0)
    b.addi("r1", "r1", 1)

    b.label("walk")
    b.beq("r1", "zero", "pass_done")   # placeholder guard (never taken)
    b.li("r3", STACK_BASE)
    b.beq("r1", "r3", "pass_done")     # stack empty?
    b.addi("r1", "r1", -1)             # pop
    b.lw("r4", "r1", 0)                # node index
    b.addi("r5", "r4", INPUT_BASE)
    b.lw("r6", "r5", 0)                # node value
    b.blt("r6", "r11", "walk")         # prune: ~never taken
    guards.append(never_taken_guard(b, "tw_node", "r6", "r4"))
    b.add("r12", "r12", "r6")
    b.addi("r13", "r13", 1)
    b.comment("push children if they exist")
    b.slli("r7", "r4", 1)
    b.addi("r7", "r7", 1)              # left = 2i+1
    b.li("r8", size)
    b.bge("r7", "r8", "walk")
    b.sw("r7", "r1", 0)
    b.addi("r1", "r1", 1)
    b.addi("r9", "r7", 1)              # right = 2i+2
    b.bge("r9", "r8", "walk")
    b.sw("r9", "r1", 0)
    b.addi("r1", "r1", 1)
    b.j("walk")

    b.label("pass_done")
    b.addi("r14", "r14", -1)
    b.bne("r14", "zero", "pass_loop")

    b.sw("r12", "zero", RESULT_BASE)
    b.sw("r13", "zero", RESULT_BASE + 1)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    return {
        INPUT_BASE + index: rng.randint(1, 500)
        for index in range(size)
    }


SPEC = WorkloadSpec(
    name="treewalk",
    description="explicit-stack DFS over a heap-layout tree: rare prune "
                "path, constant threshold, store-heavy stack traffic",
    build_code=build_code,
    gen_data=gen_data,
    default_size=1023,
)
