"""Workload framework: specs, instances, and layout conventions.

A *workload* models one SPECint-like program from the MICRO evaluation.
It separates three things the real evaluation separates too:

* **code** — built once per size by a :class:`ProgramBuilder` function;
  identical across inputs (so profiles line up pc-for-pc);
* **training inputs** — data images generated from ``train_seeds``
  (the paper's *train* runs, which feed the distiller);
* **evaluation input** — a data image from a different ``eval_seed``
  (the paper's *ref* run, on which MSSP performance is measured).

Layout conventions every workload follows:

* input data lives at :data:`INPUT_BASE` (regenerated per seed);
* immutable configuration constants — value-specialization fodder —
  live wherever the builder allocates them (they are part of the code's
  identity and do not vary with seed);
* observable results are stored at :data:`RESULT_BASE`, so examples and
  tests can compare outcomes without diffing whole states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.isa.program import Program

#: Word address where per-seed input data begins.
INPUT_BASE = 0x1000

#: Word address where workloads store their observable results.
RESULT_BASE = 0x9000

#: Scratch registers reserved for integrity-guard chains (kept clear of
#: each workload's own register allocation).
GUARD_REGS = ("r16", "r17")


def never_taken_guard(builder, name: str, reg_a: str, reg_b: str) -> str:
    """Emit a 6-instruction integrity guard that can never fire.

    Real programs spend a large fraction of their dynamic instructions
    on assertions, bounds checks and bookkeeping whose branches are
    essentially never taken — exactly the code the MSSP distiller
    converts to assertions and then dead-code-eliminates.  This helper
    plants such a chain: a masked hash of two live registers compared
    against a value outside the mask's range (so the guard is provably
    dead, though no profile-driven distiller can know that statically).

    The caller must later emit the cold fixup block via
    :func:`emit_guard_fixups`; the fixup jumps back to the point just
    after the guard, so the guard is *not* a loop exit and the distiller
    may assert it without liveness concerns.

    Returns ``name`` for bookkeeping.
    """
    check, temp = GUARD_REGS
    builder.xor(check, reg_a, reg_b)
    builder.srli(temp, check, 3)
    builder.add(check, check, temp)
    builder.andi(check, check, 0xFFFF)
    builder.li(temp, 0x20000)  # outside the masked range: never equal
    builder.beq(check, temp, f"{name}_fix")
    builder.label(f"{name}_resume")
    return name


def emit_guard_fixups(builder, guards) -> None:
    """Emit the cold fixup blocks for previously planted guards."""
    check, _ = GUARD_REGS
    for name in guards:
        builder.label(f"{name}_fix")
        builder.comment("cold: integrity violation bookkeeping")
        builder.addi(check, check, 1)
        builder.sw(check, "zero", RESULT_BASE + 7)
        builder.j(f"{name}_resume")

#: Data generator signature: (size, rng) -> {address: value} updates.
DataGen = Callable[[int, random.Random], Dict[int, int]]

#: Code builder signature: size -> Program (code + constant data only).
CodeBuilder = Callable[[int], Program]


@dataclass(frozen=True)
class WorkloadInstance:
    """One concrete (code, training inputs, evaluation input) bundle."""

    spec: "WorkloadSpec"
    size: int
    #: The evaluation program: code + eval-seed data image.
    program: Program
    #: Same code with training data images (inputs to the profiler).
    train_programs: Tuple[Program, ...]

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, parameterizable workload."""

    name: str
    description: str
    build_code: CodeBuilder
    gen_data: DataGen
    default_size: int
    train_seeds: Tuple[int, ...] = (101, 202)
    eval_seed: int = 777

    def instance(self, size: Optional[int] = None) -> WorkloadInstance:
        """Materialize code plus train/eval data images."""
        size = size if size is not None else self.default_size
        if size < 1:
            raise WorkloadError(f"{self.name}: size must be positive")
        code = self.build_code(size).with_name(self.name)
        eval_program = code.updated_memory(
            self.gen_data(size, random.Random(self.eval_seed))
        )
        train_programs = tuple(
            code.updated_memory(self.gen_data(size, random.Random(seed)))
            for seed in self.train_seeds
        )
        return WorkloadInstance(
            spec=self, size=size, program=eval_program,
            train_programs=train_programs,
        )
