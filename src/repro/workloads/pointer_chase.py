"""``pointer_chase`` — linked-list traversal (models mcf).

The input is a singly linked ring of nodes laid out in seed-shuffled
order; the kernel chases ``next`` pointers for a fixed number of hops,
accumulating node values.  Every load is data-dependent (no
specialization possible), control is a single hot loop, and there is a
cold corruption-check path (a sentinel value the generator never
produces).  This is the low-ILP, memory-bound end of the suite.

Results: ``RESULT_BASE`` = value checksum, ``RESULT_BASE+1`` = final
node index.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: Hops per node in the ring (total hops = HOP_FACTOR * size).
HOP_FACTOR = 3

#: A node value the generator never emits; seeing it means corruption.
SENTINEL = -(2 ** 40)


def _value_addr(node: int) -> int:
    return INPUT_BASE + 2 * node


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="pointer_chase")
    b.alloc("sentinel", [SENTINEL])

    b.label("main")
    b.li("r1", HOP_FACTOR * size)   # hops remaining
    b.li("r2", INPUT_BASE)          # current node pointer
    b.li("r3", 0)                   # checksum
    b.lw("r9", "zero", "sentinel")  # stable constant

    guards = []
    b.label("loop")
    b.lw("r4", "r2", 0)             # node value
    b.beq("r4", "r9", "corrupt")    # cold path
    guards.append(never_taken_guard(b, "pc_node", "r4", "r2"))
    b.add("r3", "r3", "r4")
    b.lw("r2", "r2", 1)             # follow next pointer
    b.addi("r1", "r1", -1)
    b.bne("r1", "zero", "loop")

    b.sw("r3", "zero", RESULT_BASE)
    b.sw("r2", "zero", RESULT_BASE + 1)
    b.halt()

    b.label("corrupt")
    b.comment("cold: corrupted list — record and bail out")
    b.li("r3", -1)
    b.sw("r3", "zero", RESULT_BASE)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """A single ring visiting all nodes in shuffled order."""
    order = list(range(1, size))
    rng.shuffle(order)
    cycle = [0] + order
    data: Dict[int, int] = {}
    for position, node in enumerate(cycle):
        successor = cycle[(position + 1) % size]
        data[_value_addr(node)] = rng.randint(1, 999)
        data[_value_addr(node) + 1] = _value_addr(successor)
    return data


SPEC = WorkloadSpec(
    name="pointer_chase",
    description="linked-ring traversal: data-dependent loads, one hot "
                "loop, cold sentinel check",
    build_code=build_code,
    gen_data=gen_data,
    default_size=1600,
)
