"""``stringops`` — string compare/copy kernels (models perlbmk).

The input is pairs of zero-terminated strings in fixed-width slots.  For
each pair the kernel calls ``strcmp`` (early-out compare loop); unequal
pairs are then copied into a destination buffer with ``strcpy``.  The
generator gives pairs long common prefixes so the compare loop's
continue branch is strongly biased, and makes ~30% of pairs equal so
the copy path is moderately biased.  Two leaf subroutines share ``ra``
handling with the main loop.

Results: ``RESULT_BASE`` = equal pairs, ``RESULT_BASE+1`` = copied
words, ``RESULT_BASE+2`` = compare iterations.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

#: Words per string slot (strings are shorter; zero-terminated).
SLOT = 24
DEST_BASE = 0x6000


def _pair_base(pair: int) -> int:
    return INPUT_BASE + pair * 2 * SLOT


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="stringops")

    b.label("main")
    b.li("sp", 0x8000)
    b.li("r1", 0)               # pair index
    b.li("r2", size)            # pair count
    b.li("r3", 0)               # equal pairs
    b.li("r4", 0)               # copied words
    b.li("r5", 0)               # compare iterations
    b.li("r6", DEST_BASE)       # copy cursor

    guards = []
    b.label("pair_loop")
    b.muli("r7", "r1", 2 * SLOT)
    b.addi("r7", "r7", INPUT_BASE)   # s1
    b.addi("r8", "r7", SLOT)         # s2
    b.call("strcmp")                 # r10 = 1 if equal
    b.beq("r10", "zero", "unequal")
    b.addi("r3", "r3", 1)
    b.j("pair_next")
    b.label("unequal")
    b.call("strcpy")                 # copies s1 -> dest, advances r6/r4
    b.label("pair_next")
    b.addi("r1", "r1", 1)
    b.blt("r1", "r2", "pair_loop")

    b.sw("r3", "zero", RESULT_BASE)
    b.sw("r4", "zero", RESULT_BASE + 1)
    b.sw("r5", "zero", RESULT_BASE + 2)
    b.halt()

    b.comment("strcmp(r7, r8) -> r10 (1 equal / 0 not); clobbers r11-r13")
    b.label("strcmp")
    b.li("r11", 0)              # offset
    b.label("cmp_loop")
    b.addi("r5", "r5", 1)
    b.add("r12", "r7", "r11")
    b.lw("r12", "r12", 0)
    b.add("r13", "r8", "r11")
    b.lw("r13", "r13", 0)
    guards.append(never_taken_guard(b, "so_chars", "r12", "r11"))
    b.bne("r12", "r13", "cmp_diff")
    b.beq("r12", "zero", "cmp_equal")  # both ended
    b.addi("r11", "r11", 1)
    b.j("cmp_loop")
    b.label("cmp_equal")
    b.li("r10", 1)
    b.ret()
    b.label("cmp_diff")
    b.li("r10", 0)
    b.ret()

    b.comment("strcpy(r7 -> r6 cursor); advances r6 and r4; clobbers r11-r12")
    b.label("strcpy")
    b.li("r11", 0)
    b.label("cpy_loop")
    b.add("r12", "r7", "r11")
    b.lw("r12", "r12", 0)
    b.beq("r12", "zero", "cpy_done")
    b.sw("r12", "r6", 0)
    b.addi("r6", "r6", 1)
    b.addi("r4", "r4", 1)
    b.addi("r11", "r11", 1)
    b.j("cpy_loop")
    b.label("cpy_done")
    b.ret()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    data: Dict[int, int] = {}
    for pair in range(size):
        length = rng.randint(6, SLOT - 2)
        s1 = [rng.randint(1, 200) for _ in range(length)]
        equal = rng.random() < 0.3
        if equal:
            s2 = list(s1)
        else:
            s2 = list(s1)
            # Diverge near the end: long common prefixes.
            diverge = rng.randint(max(0, length - 4), length - 1)
            s2[diverge] = (s2[diverge] % 200) + 1
        base = _pair_base(pair)
        for offset, value in enumerate(s1):
            data[base + offset] = value
        for offset, value in enumerate(s2):
            data[base + SLOT + offset] = value
    return data


SPEC = WorkloadSpec(
    name="stringops",
    description="strcmp/strcpy over string pairs: early-out compare "
                "loops with long common prefixes, two leaf subroutines",
    build_code=build_code,
    gen_data=gen_data,
    default_size=260,
)
