"""``crc`` — table-free cyclic-redundancy checksum (long dependence chain).

Each input word is salted with a per-input seed word and folded into a
running checksum with three shift-and-conditionally-xor rounds.  The
round branch is data-dependent (~50/50, so it survives distillation
untouched); the polynomial is read from a constant cell every round —
the flagship value-specialization target — while the salt is a
*quasi-constant*: stable within any one run but different across
inputs, the trap that makes single-input training profiles dangerous
(experiment E13).

Result: ``RESULT_BASE`` = final checksum.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

POLYNOMIAL = 0x1D
ROUNDS = 3

#: A per-input salt: constant *within* any run, different across seeds.
#: The classic value-specialization trap — a profile from a single
#: training input sees a stable load and folds it into the distilled
#: program; only profiling multiple inputs reveals it varies (E13).
SEED_CELL = 0xF00


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="crc")
    b.alloc("poly", [POLYNOMIAL])

    b.label("main")
    b.li("r1", INPUT_BASE)
    b.li("r2", size)
    b.li("r3", 0)               # crc
    b.li("r4", 0)               # i

    guards = []
    b.label("loop")
    b.add("r5", "r1", "r4")
    b.lw("r6", "r5", 0)
    guards.append(never_taken_guard(b, "crc_word", "r6", "r4"))
    b.lw("r9", "zero", SEED_CELL)   # per-input salt (quasi-constant)
    b.xor("r6", "r6", "r9")
    b.xor("r3", "r3", "r6")
    for round_index in range(ROUNDS):
        b.comment(f"round {round_index}")
        b.andi("r7", "r3", 1)
        b.beq("r7", "zero", f"even_{round_index}")
        b.srli("r3", "r3", 1)
        b.lw("r8", "zero", "poly")     # stable constant: specialized away
        b.xor("r3", "r3", "r8")
        b.j(f"next_{round_index}")
        b.label(f"even_{round_index}")
        b.srli("r3", "r3", 1)
        b.label(f"next_{round_index}")
    b.addi("r4", "r4", 1)
    b.blt("r4", "r2", "loop")

    b.sw("r3", "zero", RESULT_BASE)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    data = {
        INPUT_BASE + index: rng.randint(0, 2 ** 16 - 1)
        for index in range(size)
    }
    data[SEED_CELL] = rng.randint(1, 2 ** 12)
    return data


SPEC = WorkloadSpec(
    name="crc",
    description="shift/xor checksum: unbiased round branches, constant "
                "polynomial load specialized by the distiller",
    build_code=build_code,
    gen_data=gen_data,
    default_size=2200,
)
