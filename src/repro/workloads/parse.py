"""``parse`` — token scanner with a classification subroutine (models
parser/perlbmk front-end loops).

The main loop walks a character stream and counts tokens (maximal runs
of non-space characters), calling a ``classify`` subroutine per character
through the ``jal``/``jr`` calling convention — this workload is the
suite's exercise of call/return handling in the CFG, the distiller's
adjacency constraints, and cross-call task boundaries.  An invalid-char
class exists but the generator never emits one (cold path).

Results: ``RESULT_BASE`` = tokens, ``RESULT_BASE+1`` = letters,
``RESULT_BASE+2`` = digits.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

SPACE, LETTER, DIGIT, PUNCT, INVALID = 0, 1, 2, 3, 4


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="parse")

    b.label("main")
    b.li("sp", 0x8000)
    b.li("r1", INPUT_BASE)
    b.li("r2", size)
    b.li("r3", 0)               # i
    b.li("r4", 0)               # tokens
    b.li("r5", 0)               # letters
    b.li("r6", 0)               # digits
    b.li("r7", 0)               # in-token flag

    guards = []
    b.label("loop")
    b.add("r8", "r1", "r3")
    b.lw("r9", "r8", 0)         # ch
    guards.append(never_taken_guard(b, "ps_char", "r9", "r3"))
    b.call("classify")          # class in r10
    guards.append(never_taken_guard(b, "ps_class", "r10", "r4"))
    b.li("r11", SPACE)
    b.beq("r10", "r11", "space")
    b.comment("non-space: token start?")
    b.bne("r7", "zero", "counted")
    b.addi("r4", "r4", 1)
    b.li("r7", 1)
    b.label("counted")
    b.li("r11", LETTER)
    b.bne("r10", "r11", "not_letter")
    b.addi("r5", "r5", 1)
    b.j("next")
    b.label("not_letter")
    b.li("r11", DIGIT)
    b.bne("r10", "r11", "next")
    b.addi("r6", "r6", 1)
    b.j("next")
    b.label("space")
    b.li("r7", 0)
    b.label("next")
    b.addi("r3", "r3", 1)
    b.blt("r3", "r2", "loop")

    b.sw("r4", "zero", RESULT_BASE)
    b.sw("r5", "zero", RESULT_BASE + 1)
    b.sw("r6", "zero", RESULT_BASE + 2)
    b.halt()

    b.comment("classify(ch in r9) -> class in r10")
    b.label("classify")
    b.li("r10", SPACE)
    b.li("r12", 33)
    b.blt("r9", "r12", "cls_done")      # < 33: whitespace-ish
    b.li("r10", DIGIT)
    b.li("r12", 48)
    b.blt("r9", "r12", "cls_punct")
    b.li("r12", 58)
    b.blt("r9", "r12", "cls_done")      # 48..57: digit
    b.li("r10", LETTER)
    b.li("r12", 65)
    b.blt("r9", "r12", "cls_punct")
    b.li("r12", 123)
    b.blt("r9", "r12", "cls_done")      # 65..122: letter-ish
    b.comment("cold: 123..: invalid input")
    b.li("r10", INVALID)
    b.ret()
    b.label("cls_punct")
    b.li("r10", PUNCT)
    b.label("cls_done")
    b.ret()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Word/space stream: tokens of 2-9 chars separated by 1-2 spaces."""
    data: Dict[int, int] = {}
    index = 0
    while index < size:
        for _ in range(min(rng.randint(2, 9), size - index)):
            roll = rng.random()
            if roll < 0.7:
                ch = rng.randint(65, 122)   # letter
            elif roll < 0.9:
                ch = rng.randint(48, 57)    # digit
            else:
                ch = rng.randint(33, 47)    # punct
            data[INPUT_BASE + index] = ch
            index += 1
        for _ in range(min(rng.randint(1, 2), size - index)):
            data[INPUT_BASE + index] = 32   # space
            index += 1
    return data


SPEC = WorkloadSpec(
    name="parse",
    description="token scanner calling a classify subroutine per char: "
                "call/return traffic, compare chains, cold invalid path",
    build_code=build_code,
    gen_data=gen_data,
    default_size=2400,
)
