"""Workload registry: name → :class:`~repro.workloads.base.WorkloadSpec`.

Twelve workloads model the control/memory behaviours spanned by the
MICRO paper's SPECint-2000 suite (see DESIGN.md §4 for the mapping);
``mispredict`` is the thirteenth, an adversarial input for the adaptive
prediction loop (phase-shifting values that defeat ``value_spec``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads import (
    branchy,
    compress,
    crc,
    fib_memo,
    hashlookup,
    interp,
    matmul,
    mispredict,
    parse,
    pointer_chase,
    sort,
    stringops,
    treewalk,
)
from repro.workloads.base import WorkloadSpec

_ALL = [
    compress.SPEC,
    pointer_chase.SPEC,
    branchy.SPEC,
    parse.SPEC,
    hashlookup.SPEC,
    matmul.SPEC,
    crc.SPEC,
    sort.SPEC,
    treewalk.SPEC,
    stringops.SPEC,
    fib_memo.SPEC,
    interp.SPEC,
    mispredict.SPEC,
]

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _ALL}

#: A four-workload subset used by the sweep experiments (E4-E6), chosen
#: to span the suite's behaviours: biased-scan, memory-bound, branchy,
#: and numeric.
REPRESENTATIVE = ("compress", "pointer_chase", "branchy", "matmul")


def workload_names() -> List[str]:
    return list(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise WorkloadError(
            f"unknown workload {name!r}; known: {known}"
        ) from None
