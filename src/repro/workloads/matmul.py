"""``matmul`` — dense integer matrix multiply (regular numeric kernel).

A triple loop whose branches are all loop back-edges (perfectly biased
but deliberately preserved by the distiller — asserting them would make
the master spin).  Distillation leverage is therefore small, which is
the realistic behaviour for numeric codes: MSSP's win here comes almost
entirely from task parallelism, not from a shorter master.  A zero-
operand early-out path exists but is cold (the generator never emits
zeros).

Result: ``RESULT_BASE`` = checksum of the product matrix.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)


def _a_base(size: int) -> int:
    return INPUT_BASE


def _b_base(size: int) -> int:
    return INPUT_BASE + size * size


def build_code(size: int) -> Program:
    n = size
    b = ProgramBuilder(name="matmul")

    b.label("main")
    b.li("r1", _a_base(n))
    b.li("r2", _b_base(n))
    b.li("r3", n)
    b.li("r4", 0)               # i
    b.li("r15", 0)              # checksum

    guards = []
    b.label("i_loop")
    b.li("r5", 0)               # j
    b.label("j_loop")
    guards.append(never_taken_guard(b, "mm_acc", "r15", "r5"))
    b.li("r6", 0)               # k
    b.li("r7", 0)               # acc
    b.label("k_loop")
    b.comment("acc += A[i][k] * B[k][j]")
    b.mul("r8", "r4", "r3")
    b.add("r8", "r8", "r6")
    b.add("r8", "r8", "r1")
    b.lw("r9", "r8", 0)         # A[i][k]
    b.beq("r9", "zero", "skip_term")   # cold: no zeros generated
    b.mul("r10", "r6", "r3")
    b.add("r10", "r10", "r5")
    b.add("r10", "r10", "r2")
    b.lw("r11", "r10", 0)       # B[k][j]
    b.mul("r12", "r9", "r11")
    b.add("r7", "r7", "r12")
    b.label("skip_term")
    b.addi("r6", "r6", 1)
    b.blt("r6", "r3", "k_loop")
    b.comment("fold C[i][j] into the checksum (weighted by j+1)")
    b.addi("r13", "r5", 1)
    b.mul("r14", "r7", "r13")
    b.add("r15", "r15", "r14")
    b.addi("r5", "r5", 1)
    b.blt("r5", "r3", "j_loop")
    b.addi("r4", "r4", 1)
    b.blt("r4", "r3", "i_loop")

    b.sw("r15", "zero", RESULT_BASE)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    data: Dict[int, int] = {}
    for index in range(size * size):
        data[_a_base(size) + index] = rng.randint(1, 50)
        data[_b_base(size) + index] = rng.randint(1, 50)
    return data


SPEC = WorkloadSpec(
    name="matmul",
    description="dense integer matrix multiply: loop-bound branches only, "
                "minimal distillation leverage, pure task parallelism",
    build_code=build_code,
    gen_data=gen_data,
    default_size=13,
)
