"""``fib_memo`` — memoized modular recurrence (models gap's table-driven
computation).

Computes ``f[i] = (f[i-1] + f[i-2] + a[i mod K]) mod M`` into a memo
table, then a second phase answers random-index queries against the
table.  The modulus lives in a constant cell (value-specialization
target used in *arithmetic*, so it survives into the distilled hot
loop as an immediate), the memo table is written in phase one and read
in phase two (inter-phase memory dependence), and a zero-hit path is
rare.

Results: ``RESULT_BASE`` = query checksum, ``RESULT_BASE+1`` = zero hits.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)

MODULUS = 9973
MEMO_BASE = 0x5000
#: Input perturbation window.
K = 64
QUERIES = 400


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="fib_memo")
    b.alloc("modulus", [MODULUS])

    b.label("main")
    b.comment("phase 1: fill the memo table")
    b.li("r1", 1)               # f[i-1]
    b.li("r2", 1)               # f[i-2]
    b.li("r3", 2)               # i
    b.li("r4", size)
    b.li("r14", 0)              # zero hits
    b.sw("r1", "zero", MEMO_BASE)
    b.sw("r1", "zero", MEMO_BASE + 1)

    guards = []
    b.label("fill")
    b.andi("r5", "r3", K - 1)
    b.addi("r5", "r5", INPUT_BASE)
    b.lw("r6", "r5", 0)         # perturbation a[i mod K]
    guards.append(never_taken_guard(b, "fm_pert", "r6", "r3"))
    b.add("r7", "r1", "r2")
    b.add("r7", "r7", "r6")
    b.lw("r8", "zero", "modulus")   # constant: specialized
    b.mod("r7", "r7", "r8")
    b.addi("r9", "r3", MEMO_BASE)
    b.sw("r7", "r9", 0)
    b.bne("r7", "zero", "nonzero")
    b.addi("r14", "r14", 1)     # rare: exact zero
    b.label("nonzero")
    b.mov("r2", "r1")
    b.mov("r1", "r7")
    b.addi("r3", "r3", 1)
    b.blt("r3", "r4", "fill")

    b.comment("phase 2: query the memo table at input-driven indices")
    b.li("r3", 0)
    b.li("r10", 0)              # checksum
    b.li("r11", QUERIES)
    b.label("query")
    b.andi("r5", "r3", K - 1)
    b.addi("r5", "r5", INPUT_BASE + K)
    b.lw("r6", "r5", 0)         # query seed
    b.add("r6", "r6", "r3")
    b.li("r12", 0)
    b.bge("r6", "r12", "pos")   # always: seeds are positive
    b.sub("r6", "r12", "r6")
    b.label("pos")
    b.mod("r6", "r6", "r4")     # index in [0, size)
    b.addi("r6", "r6", MEMO_BASE)
    b.lw("r7", "r6", 0)
    guards.append(never_taken_guard(b, "fm_query", "r7", "r6"))
    b.add("r10", "r10", "r7")
    b.addi("r3", "r3", 1)
    b.blt("r3", "r11", "query")

    b.sw("r10", "zero", RESULT_BASE)
    b.sw("r14", "zero", RESULT_BASE + 1)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    del size
    data: Dict[int, int] = {}
    for index in range(K):
        data[INPUT_BASE + index] = rng.randint(1, 500)
        data[INPUT_BASE + K + index] = rng.randint(1, 10_000)
    return data


SPEC = WorkloadSpec(
    name="fib_memo",
    description="memoized modular recurrence + table queries: constant "
                "modulus in hot arithmetic, phase-crossing memory reuse",
    build_code=build_code,
    gen_data=gen_data,
    default_size=2600,
)
