"""``sort`` — in-place insertion sort (data-dependent inner loop).

Insertion sort's inner shift loop has a data-dependent trip count and a
compare branch whose bias drifts as the prefix becomes sorted — a
workload where the master's memory write-set (the array itself) is the
dominant live-in channel between tasks, stressing checkpoint memory
shipping.  A pre-sorted-run fast path exists and fires occasionally.

Results: ``RESULT_BASE`` = position-weighted checksum of the sorted
array, ``RESULT_BASE+1`` = shift count.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.base import (
    INPUT_BASE,
    RESULT_BASE,
    WorkloadSpec,
    emit_guard_fixups,
    never_taken_guard,
)


def build_code(size: int) -> Program:
    b = ProgramBuilder(name="sort")

    b.label("main")
    b.li("r1", INPUT_BASE)
    b.li("r2", size)
    b.li("r3", 1)               # i
    b.li("r12", 0)              # shift count

    guards = []
    b.label("outer")
    b.add("r4", "r1", "r3")
    b.lw("r5", "r4", 0)         # key = a[i]
    guards.append(never_taken_guard(b, "srt_key", "r5", "r3"))
    b.comment("fast path: already in place?")
    b.lw("r6", "r4", -1)        # a[i-1]
    b.bge("r5", "r6", "placed")
    b.mov("r7", "r3")           # j = i
    b.label("shift")
    b.add("r8", "r1", "r7")
    b.lw("r9", "r8", -1)        # a[j-1]
    b.bge("r5", "r9", "insert")
    b.sw("r9", "r8", 0)         # a[j] = a[j-1]
    b.addi("r12", "r12", 1)
    b.addi("r7", "r7", -1)
    b.bne("r7", "zero", "shift")
    b.label("insert")
    b.add("r8", "r1", "r7")
    b.sw("r5", "r8", 0)         # a[j] = key
    b.label("placed")
    b.addi("r3", "r3", 1)
    b.blt("r3", "r2", "outer")

    b.comment("checksum pass over the sorted array")
    b.li("r3", 0)
    b.li("r10", 0)
    b.label("check")
    b.add("r4", "r1", "r3")
    b.lw("r5", "r4", 0)
    b.addi("r6", "r3", 1)
    b.mul("r5", "r5", "r6")
    b.add("r10", "r10", "r5")
    b.addi("r3", "r3", 1)
    b.blt("r3", "r2", "check")

    b.sw("r10", "zero", RESULT_BASE)
    b.sw("r12", "zero", RESULT_BASE + 1)
    b.halt()
    emit_guard_fixups(b, guards)
    return b.build()


def gen_data(size: int, rng: random.Random) -> Dict[int, int]:
    """Mostly random with a few pre-sorted runs (fast-path food)."""
    values = [rng.randint(1, 10_000) for _ in range(size)]
    # Plant a few ascending runs.
    for _ in range(max(1, size // 40)):
        start = rng.randrange(max(1, size - 8))
        run = sorted(values[start:start + 6])
        values[start:start + 6] = run
    return {
        INPUT_BASE + index: value for index, value in enumerate(values)
    }


SPEC = WorkloadSpec(
    name="sort",
    description="insertion sort: data-dependent shift loops, array as "
                "the dominant inter-task memory live-in channel",
    build_code=build_code,
    gen_data=gen_data,
    default_size=140,
)
