"""Jumping-refinement checking against the sequential model.

The companion paper's Definition 1: MSSP is a *jumping ψ-refinement* of
SEQ when every MSSP transition either leaves the projected architected
state unchanged ("accumulates energy" — slave execution, master work) or
advances it by exactly the transitions SEQ would take ("jumps" — task
commit).

:func:`replay_trace` checks this on a concrete engine run: it walks the
engine's trace records, advancing a sequential reference machine by each
committed task's (and each recovery's) instruction count, and verifies
that every committed jump lands exactly where SEQ lands — same pc after
the jump — and that the run's endpoint equals SEQ's final state.
Squashed-task records must not advance the reference at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import MsspError
from repro.isa.program import Program
from repro.machine.interpreter import seq
from repro.machine.state import ArchState
from repro.mssp.engine import MsspResult
from repro.mssp.trace import RecoveryRecord, TaskAttemptRecord


@dataclass
class RefinementReport:
    """Outcome of one refinement replay."""

    ok: bool
    jumps: int = 0
    jumped_instrs: int = 0
    issues: List[str] = field(default_factory=list)


def replay_trace(program: Program, result: MsspResult) -> RefinementReport:
    """Verify that ``result``'s trace is a jumping refinement of SEQ."""
    report = RefinementReport(ok=True)
    reference = ArchState.initial(program)
    for record in result.records:
        if isinstance(record, TaskAttemptRecord):
            if not record.committed:
                continue  # squashed: architected state must not move
            if record.start_pc != reference.pc:
                report.issues.append(
                    f"task {record.tid} committed at pc {record.start_pc}, "
                    f"but SEQ is at pc {reference.pc}"
                )
                report.ok = False
                break
            reference = seq(program, reference, record.n_instrs)
            report.jumps += 1
            report.jumped_instrs += record.n_instrs
            if (
                record.end_pc is not None
                and not record.halted
                and reference.pc != record.end_pc
            ):
                report.issues.append(
                    f"task {record.tid} jumped to pc {record.end_pc}, "
                    f"but SEQ reached pc {reference.pc}"
                )
                report.ok = False
                break
        elif isinstance(record, RecoveryRecord):
            reference = seq(program, reference, record.n_instrs)
    if report.ok:
        differences = result.final_state.diff(reference)
        if differences:
            report.ok = False
            report.issues.extend(differences)
    return report


def assert_jumping_refinement(program: Program, result: MsspResult) -> None:
    """Raise :class:`~repro.errors.MsspError` when the replay fails."""
    report = replay_trace(program, result)
    if not report.ok:
        raise MsspError(
            "jumping refinement violated: " + "; ".join(report.issues[:5])
        )
