"""Exhaustive state-space exploration of the abstract MSSP system.

The companion paper mechanized its model in Maude and used breadth-first
search over the rewriting system to validate Theorem 1: from any state
``mssp(S, τ)``, *every* execution commits some maximal safe chain of
tasks and discards the rest, so every reachable terminal state equals
``seq(S, n)`` for some ``n``.

This module is that search, executably: :func:`explore` enumerates every
interleaving of the abstract machine's two rules —

* **commit**: pick any task from the multiset that is complete and safe
  for the current state; superimpose its live-outs;
* **discard**: when no member is safe, drop the remainder;

— and returns the full reachable set, letting tests assert the paper's
claims (soundness of every terminal state, confluence *of state* for
conflict-free task sets, and the existence of the maximal-commit path)
by brute force on small instances rather than by proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.formal.abstract import (
    AbstractTask,
    MState,
    NextFn,
    mssp_commit,
    seq_n,
    task_safe,
)

#: A configuration: (frozen state items, remaining task multiset).
Config = Tuple[Tuple, Tuple[AbstractTask, ...]]


def _freeze(state: MState) -> Tuple:
    return tuple(sorted(state.items(), key=repr))


@dataclass
class ExplorationResult:
    """Everything the breadth-first search saw."""

    #: All reachable (state, remaining-tasks) configurations.
    configurations: Set[Config] = field(default_factory=set)
    #: Terminal states (task multiset exhausted or nothing safe) paired
    #: with the number of instructions committed on the way there.
    terminals: Dict[Tuple, Set[int]] = field(default_factory=dict)

    @property
    def terminal_states(self) -> List[Dict]:
        return [dict(items) for items in self.terminals]

    def committed_totals(self) -> Set[int]:
        """Every 'jump total' some execution achieved."""
        return {n for totals in self.terminals.values() for n in totals}


def explore(
    state: MState,
    tasks: Tuple[AbstractTask, ...],
    next_fn: NextFn,
    max_configs: int = 100_000,
) -> ExplorationResult:
    """Breadth-first search over all commit interleavings."""
    result = ExplorationResult()
    initial: Config = (_freeze(state), tuple(tasks))
    frontier: List[Tuple[Config, int]] = [(initial, 0)]
    result.configurations.add(initial)
    while frontier:
        (frozen, remaining), jumped = frontier.pop()
        current = dict(frozen)
        safe_indices = [
            index
            for index, task in enumerate(remaining)
            if task.complete and task_safe(task, current, next_fn)
        ]
        if not safe_indices:
            # Terminal: either exhausted or the remainder is discarded.
            result.terminals.setdefault(frozen, set()).add(jumped)
            continue
        for index in safe_indices:
            task = remaining[index]
            successor_state = mssp_commit(task, current)
            successor: Config = (
                _freeze(successor_state),
                remaining[:index] + remaining[index + 1:],
            )
            if successor not in result.configurations:
                if len(result.configurations) >= max_configs:
                    raise RuntimeError("state space exceeded max_configs")
                result.configurations.add(successor)
                frontier.append((successor, jumped + task.n))
            else:
                # Revisit for the terminal bookkeeping: different paths
                # to the same configuration may carry different totals.
                frontier.append((successor, jumped + task.n))
        if len(frontier) > max_configs:
            raise RuntimeError("frontier exceeded max_configs")
    return result


def sequential_chain(
    state: MState, lengths: List[int], next_fn: NextFn
) -> Tuple[AbstractTask, ...]:
    """A task multiset forming one contiguous safe chain from ``state``.

    Task *i* starts exactly where task *i−1* ends (live-ins are the full
    intermediate states), so the chain mirrors what a perfect master
    would produce.
    """
    tasks: List[AbstractTask] = []
    current = dict(state)
    for length in lengths:
        task = AbstractTask.fresh(dict(current), n=length).run_to_completion(
            next_fn
        )
        tasks.append(task)
        current = dict(seq_n(current, length, next_fn))
    return tuple(tasks)


def check_theorem_1(
    state: MState,
    tasks: Tuple[AbstractTask, ...],
    next_fn: NextFn,
    max_total: int = 64,
) -> ExplorationResult:
    """Assert the paper's Theorem 1 over the whole reachable space.

    Every terminal state must equal ``seq(state, n)`` for the ``n``
    instructions its path committed.  Raises ``AssertionError`` with a
    counterexample otherwise; returns the exploration for further
    assertions.
    """
    result = explore(state, tasks, next_fn)
    for frozen, totals in result.terminals.items():
        terminal = dict(frozen)
        for jumped in totals:
            expected = dict(seq_n(state, jumped, next_fn))
            assert terminal == expected, (
                f"terminal state after {jumped} committed instructions "
                f"is not seq(S, {jumped}): {terminal} != {expected}"
            )
            assert jumped <= max_total
    return result
