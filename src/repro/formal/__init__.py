"""Executable formal model of MSSP (from the companion verification paper).

Implements machine-state superimposition, consistency, abstract tasks and
task safety (Definitions 4–8 of Salverda/Roşu/Zilles), plus the
jumping-refinement replay checker used to validate engine traces against
the sequential model.
"""

from repro.formal.abstract import (
    AbstractTask,
    consistent,
    cumulative_writes,
    delta,
    mssp_commit,
    mssp_run,
    seq_n,
    superimpose,
    task_safe,
)
from repro.formal.bridge import (
    PC_CELL,
    arch_to_cells,
    cells_to_arch,
    live_sets_to_cells,
    make_next_fn,
)
from repro.formal.refinement import (
    RefinementReport,
    assert_jumping_refinement,
    replay_trace,
)

__all__ = [
    "AbstractTask",
    "consistent",
    "cumulative_writes",
    "delta",
    "mssp_commit",
    "mssp_run",
    "seq_n",
    "superimpose",
    "task_safe",
    "PC_CELL",
    "arch_to_cells",
    "cells_to_arch",
    "live_sets_to_cells",
    "make_next_fn",
    "RefinementReport",
    "assert_jumping_refinement",
    "replay_trace",
]
