"""Executable form of the companion paper's abstract MSSP model.

The supplied companion paper ("Formally Defining and Verifying MSSP",
Salverda, Roşu & Zilles) models machine state as a partial map from
storage cells to values, and builds MSSP's correctness argument from
three ingredients:

* **superimposition** ``S1 ← S2`` (Definition 8): overwrite ``S1`` with
  ``S2``'s cells; associative, and idempotent under containment;
* **consistency** ``S1 ⊑ S2``: every cell of ``S1`` exists in ``S2`` with
  the same value;
* **task safety** (Definition 6): task ``t`` is safe for ``S`` iff
  ``seq(S, #t) = S ← live_out(t)``.

This module implements those objects over concrete dict-based states so
the paper's lemmas and Theorem 2 (*consistency + completeness ⇒ safety*)
can be property-tested with hypothesis rather than proved in Maude.  The
``next`` function is a parameter, mirroring the paper's uninterpreted
``next : S → S``.

Cells here are opaque hashable keys.  :mod:`repro.formal.bridge` relates
this abstract model to the concrete Z-ISA machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Mapping, Tuple

Cell = Hashable
#: Abstract machine state: a partial map from cells to values.
MState = Mapping[Cell, int]
#: The paper's uninterpreted ``next``: one instruction's effect.
NextFn = Callable[[MState], MState]


def superimpose(base: MState, overlay: MState) -> Dict[Cell, int]:
    """The paper's ``base ← overlay``: overlay cells win, others persist."""
    result = dict(base)
    result.update(overlay)
    return result


def consistent(subset: MState, superset: MState) -> bool:
    """The paper's ``subset ⊑ superset``."""
    return all(
        cell in superset and superset[cell] == value
        for cell, value in subset.items()
    )


def seq_n(state: MState, n: int, next_fn: NextFn) -> MState:
    """The paper's ``seq(S, n)``: advance ``state`` by ``n`` steps."""
    current = state
    for _ in range(n):
        current = next_fn(current)
    return current


def delta(state: MState, next_fn: NextFn) -> Dict[Cell, int]:
    """The paper's ``δ(S)``: the write-set of the next instruction.

    Concretely: the cells on which ``next(S)`` differs from (or extends)
    ``S``.  By construction ``next(S) = S ← δ(S)`` whenever ``next`` only
    adds/updates cells (the paper's completeness assumption).
    """
    after = next_fn(state)
    return {
        cell: value
        for cell, value in after.items()
        if cell not in state or state[cell] != value
    }


def cumulative_writes(state: MState, n: int, next_fn: NextFn) -> Dict[Cell, int]:
    """The paper's ``Δ(S, n)`` (Definition 10): accrued write-sets."""
    writes: Dict[Cell, int] = {}
    current = state
    for _ in range(n):
        step_writes = delta(current, next_fn)
        writes = superimpose(writes, step_writes)
        current = next_fn(current)
    return writes


@dataclass(frozen=True)
class AbstractTask:
    """The paper's task 4-tuple ⟨S_in, n, S_out, k⟩ (Definition 4)."""

    live_in: Tuple[Tuple[Cell, int], ...]
    n: int
    live_out: Tuple[Tuple[Cell, int], ...]
    k: int = 0

    @classmethod
    def fresh(cls, live_in: MState, n: int) -> "AbstractTask":
        """A newly created task: ⟨S_in, n, S_in, 0⟩."""
        items = tuple(sorted(live_in.items(), key=repr))
        return cls(live_in=items, n=n, live_out=items, k=0)

    @property
    def live_in_state(self) -> Dict[Cell, int]:
        return dict(self.live_in)

    @property
    def live_out_state(self) -> Dict[Cell, int]:
        return dict(self.live_out)

    @property
    def complete(self) -> bool:
        return self.k == self.n

    def evolve(self, next_fn: NextFn) -> "AbstractTask":
        """One slave step (Definition 5): advance live-outs by ``next``."""
        if self.complete:
            return self
        advanced = next_fn(self.live_out_state)
        return AbstractTask(
            live_in=self.live_in, n=self.n,
            live_out=tuple(sorted(advanced.items(), key=repr)), k=self.k + 1,
        )

    def run_to_completion(self, next_fn: NextFn) -> "AbstractTask":
        """Lemma 2: ⟨S_in, n, S_in, 0⟩ ⇒* ⟨S_in, n, seq(S_in, n), n⟩."""
        task = self
        while not task.complete:
            task = task.evolve(next_fn)
        return task


def task_safe(task: AbstractTask, state: MState, next_fn: NextFn) -> bool:
    """Definition 6: ``t`` safe for ``S`` iff ``seq(S, #t) = S ← live_out(t)``."""
    expected = seq_n(state, task.n, next_fn)
    committed = superimpose(state, task.live_out_state)
    return dict(expected) == committed


def mssp_commit(task: AbstractTask, state: MState) -> Dict[Cell, int]:
    """Definition 7: MSSP's refined step is superimposition of live-outs."""
    return superimpose(state, task.live_out_state)


def mssp_run(
    state: MState,
    tasks: Tuple[AbstractTask, ...],
    next_fn: NextFn,
) -> Tuple[Dict[Cell, int], int]:
    """Definition 3 driven to quiescence.

    Repeatedly commits *some* safe task from the multiset (first safe in
    the given order — the model proves order does not matter for
    correctness, only for how many tasks end up committable) and discards
    the rest when none is safe.  Returns the final state and the number
    of instructions jumped.
    """
    current = dict(state)
    remaining = list(tasks)
    jumped = 0
    while remaining:
        for index, task in enumerate(remaining):
            if task.complete and task_safe(task, current, next_fn):
                current = mssp_commit(task, current)
                jumped += task.n
                remaining.pop(index)
                break
        else:
            break  # No safe member: discard the remainder (Section 4.3).
    return current, jumped
