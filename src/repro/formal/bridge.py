"""Bridge between the abstract formal model and the concrete Z-ISA machine.

Lets the companion paper's Theorem 2 — *consistency + completeness of
live-ins imply task safety* — be checked on the real machine: a concrete
:class:`~repro.machine.state.ArchState` is projected into the abstract
cell map, and the concrete sequential machine provides the ``next``
function over full states.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.machine.semantics import execute
from repro.machine.state import ArchState

Cell = Hashable

PC_CELL: Cell = ("pc",)


def arch_to_cells(state: ArchState) -> Dict[Cell, int]:
    """Project a concrete state into the abstract cell map.

    Complete by construction: every register, every mapped memory cell,
    and the pc appear.  Unmapped memory is zero in the concrete machine
    and *absent* here; superimposition of recorded live-outs therefore
    treats the two identically (the sparse-zero canonical form).
    """
    cells: Dict[Cell, int] = {PC_CELL: state.pc}
    for index in range(NUM_REGS):
        cells[("reg", index)] = state.regs[index]
    for address, value in state.mem.items():
        cells[("mem", address)] = value
    return cells


def cells_to_arch(cells: Dict[Cell, int]) -> ArchState:
    """Inverse of :func:`arch_to_cells` (for full cell maps)."""
    state = ArchState(pc=cells.get(PC_CELL, 0))
    for cell, value in cells.items():
        if cell == PC_CELL:
            continue
        kind, key = cell
        if kind == "reg":
            state.write_reg(key, value)
        else:
            state.store(key, value)
    return state


def make_next_fn(program: Program):
    """The concrete machine's ``next`` over abstract full-state cells.

    Only defined on complete cell maps (ones produced by
    :func:`arch_to_cells`); stepping a halted state is the identity, as
    in the SEQ model.
    """

    def next_fn(cells: Dict[Cell, int]) -> Dict[Cell, int]:
        state = cells_to_arch(dict(cells))
        pc = state.pc
        if 0 <= pc < len(program.code):
            execute(program.code[pc], state)
        return arch_to_cells(state)

    return next_fn


def live_sets_to_cells(
    live_regs: Dict[int, int], live_mem: Dict[int, int],
    pc: Tuple[int, bool] = None,
) -> Dict[Cell, int]:
    """Project recorded live-in/out sets into abstract cells."""
    cells: Dict[Cell, int] = {}
    if pc is not None:
        cells[PC_CELL] = pc[0]
    for index, value in live_regs.items():
        cells[("reg", index)] = value
    for address, value in live_mem.items():
        cells[("mem", address)] = value
    return cells
