"""Pre-decoded execution engine: closure-specialized Z-ISA dispatch.

:func:`repro.machine.semantics.execute` pays, on *every* step, two
opcode-table probes, a ladder of identity tests, five attribute loads on
:class:`~repro.isa.instructions.Instruction`, and a fresh
:class:`~repro.machine.semantics.StepEffect` allocation.  Those costs are
per *instruction executed*, but all of their inputs are per *instruction
decoded* — a program of a few hundred static instructions is stepped
tens of millions of times.

This module moves the whole decode cost to program-construction time.
:func:`decode` compiles each instruction once into a specialized
zero-argument-lookup closure: operands, immediates, branch targets, the
operator lambda, and the fall-through pc are captured as cell variables,
writes to the architectural ``ZERO`` register are folded out at decode
time, and the no-memory/no-branch common case returns interned singleton
effects so steady-state stepping allocates nothing.  Closures call the
``read_reg``/``write_reg``/``load``/``store`` methods of the state they
are handed, so the one decoded program serves every
:class:`~repro.machine.state.MachineStateLike` implementation — the
sequential machine, the MSSP master's write-cache view, and the slaves'
recording views — exactly as ``execute`` did.

Interned-effect contract
------------------------

``StepEffect`` objects returned by decoded steppers may be **shared
singletons**: callers must treat them as immutable and must not retain
them across steps (snapshot the fields instead).  Effects describing
memory accesses are freshly allocated (they carry per-step data), but
code must not rely on that.

On top of per-instruction closures, :class:`DecodedProgram` precomputes
**basic-block supersteps**: for every pc, the straight-line run of
closures from that pc to its block terminator.  The observer-free run
loop executes whole chains without per-step pc bounds checks, falling
back to exact per-step execution near the step-limit boundary so
``StepLimitExceeded`` fires at precisely the same instruction count as
the reference loop.

Decoded programs are cached per :class:`~repro.isa.program.Program`
*instance* (identity, not value): the decoding is attached to the
program object and dies with it.  ``Program.__getstate__`` excludes the
attachment so pickling and deep-copying never see the closures.

``semantics.execute`` remains the semantic oracle; differential tests
(``tests/machine/test_decoded.py``) hold the two bit-identical, and
``repro lint`` re-checks every closure's decode metadata against its
source instruction (the ``DEC`` checks).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import InvalidPcError, StepLimitExceeded
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import RA, ZERO
from repro.machine.semantics import (
    _BRANCH_OPS,
    _I2_OPS,
    _R3_OPS,
    StepEffect,
    execute,
)
from repro.machine.state import MachineStateLike, wrap64

#: A decoded instruction: mutates ``state`` and returns its effect.
Stepper = Callable[[MachineStateLike], StepEffect]

#: Interned singleton effects (see the interned-effect contract above).
EFFECT_FALL = StepEffect()
EFFECT_TAKEN = StepEffect(taken=True)
EFFECT_HALT = StepEffect(halted=True)

#: Attribute under which the decoding is cached on the Program instance.
_CACHE_ATTR = "_decoded_cache"


def _decode_instruction(
    pc: int, instr: Instruction
) -> Tuple[Stepper, Optional[Stepper]]:
    """Compile ``instr`` at ``pc`` into (stepper, quick) closures.

    The stepper returns the instruction's :class:`StepEffect`; ``quick``
    is an effect-free variant for the memory opcodes (whose stepper must
    allocate) used inside superstep chains, or ``None`` when the stepper
    itself is already allocation-free.
    """
    op = instr.op
    nxt = pc + 1
    fn = _R3_OPS.get(op)
    if fn is not None:
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        if rd == ZERO:
            # The write is architecturally void; the reads still happen
            # (recording views observe them as live-ins).
            def step(state, rs=rs, rt=rt, nxt=nxt):
                state.read_reg(rs)
                state.read_reg(rt)
                state.pc = nxt
                return EFFECT_FALL
        else:
            def step(state, fn=fn, rd=rd, rs=rs, rt=rt, nxt=nxt):
                state.write_reg(
                    rd, fn(state.read_reg(rs), state.read_reg(rt))
                )
                state.pc = nxt
                return EFFECT_FALL
        return step, None
    fn = _I2_OPS.get(op)
    if fn is not None:
        rd, rs, imm = instr.rd, instr.rs, instr.imm
        if rd == ZERO:
            def step(state, rs=rs, nxt=nxt):
                state.read_reg(rs)
                state.pc = nxt
                return EFFECT_FALL
        else:
            def step(state, fn=fn, rd=rd, rs=rs, imm=imm, nxt=nxt):
                state.write_reg(rd, fn(state.read_reg(rs), imm))
                state.pc = nxt
                return EFFECT_FALL
        return step, None
    fn = _BRANCH_OPS.get(op)
    if fn is not None:
        rs, rt, target = instr.rs, instr.rt, instr.target

        def step(state, fn=fn, rs=rs, rt=rt, target=target, nxt=nxt):
            if fn(state.read_reg(rs), state.read_reg(rt)):
                state.pc = target
                return EFFECT_TAKEN
            state.pc = nxt
            return EFFECT_FALL
        return step, None
    if op is Opcode.LW:
        rd, rs, imm = instr.rd, instr.rs, instr.imm
        if rd == ZERO:
            def step(state, rs=rs, imm=imm, nxt=nxt):
                address = wrap64(state.read_reg(rs) + imm)
                value = state.load(address)
                state.pc = nxt
                return StepEffect(mem_addr=address, mem_value=value)

            def quick(state, rs=rs, imm=imm, nxt=nxt):
                state.load(wrap64(state.read_reg(rs) + imm))
                state.pc = nxt
        else:
            def step(state, rd=rd, rs=rs, imm=imm, nxt=nxt):
                address = wrap64(state.read_reg(rs) + imm)
                value = state.load(address)
                state.write_reg(rd, value)
                state.pc = nxt
                return StepEffect(mem_addr=address, mem_value=value)

            def quick(state, rd=rd, rs=rs, imm=imm, nxt=nxt):
                state.write_reg(
                    rd, state.load(wrap64(state.read_reg(rs) + imm))
                )
                state.pc = nxt
        return step, quick
    if op is Opcode.SW:
        rs, rt, imm = instr.rs, instr.rt, instr.imm

        def step(state, rs=rs, rt=rt, imm=imm, nxt=nxt):
            address = wrap64(state.read_reg(rs) + imm)
            value = state.read_reg(rt)
            state.store(address, value)
            state.pc = nxt
            return StepEffect(
                mem_addr=address, mem_value=value, is_store=True
            )

        def quick(state, rs=rs, rt=rt, imm=imm, nxt=nxt):
            state.store(
                wrap64(state.read_reg(rs) + imm), state.read_reg(rt)
            )
            state.pc = nxt
        return step, quick
    if op is Opcode.LI:
        rd, imm = instr.rd, instr.imm
        if rd == ZERO:
            def step(state, nxt=nxt):
                state.pc = nxt
                return EFFECT_FALL
        else:
            def step(state, rd=rd, imm=imm, nxt=nxt):
                state.write_reg(rd, imm)
                state.pc = nxt
                return EFFECT_FALL
        return step, None
    if op is Opcode.MOV:
        rd, rs = instr.rd, instr.rs
        if rd == ZERO:
            def step(state, rs=rs, nxt=nxt):
                state.read_reg(rs)
                state.pc = nxt
                return EFFECT_FALL
        else:
            def step(state, rd=rd, rs=rs, nxt=nxt):
                state.write_reg(rd, state.read_reg(rs))
                state.pc = nxt
                return EFFECT_FALL
        return step, None
    if op is Opcode.J:
        target = instr.target

        def step(state, target=target):
            state.pc = target
            return EFFECT_TAKEN
        return step, None
    if op is Opcode.JAL:
        target = instr.target

        def step(state, target=target, nxt=nxt):
            state.write_reg(RA, nxt)
            state.pc = target
            return EFFECT_TAKEN
        return step, None
    if op is Opcode.JR:
        rs = instr.rs

        def step(state, rs=rs):
            state.pc = state.read_reg(rs)
            return EFFECT_TAKEN
        return step, None
    if op is Opcode.HALT:
        def step(state):
            return EFFECT_HALT
        return step, None

    # NOP and FORK (a task marker, not a computation) fall through.
    def step(state, nxt=nxt):
        state.pc = nxt
        return EFFECT_FALL
    return step, None


def _decode_meta(pc: int, instr: Instruction) -> Tuple:
    """The decode-time facts baked into ``instr``'s closure.

    ``repro lint``'s ``DEC002`` check recomputes this tuple from the
    source instruction and compares; any drift between decoder and ISA
    is a lint error before it is a silent misexecution.
    """
    return (
        instr.op.name,
        instr.rd,
        instr.rs,
        instr.rt,
        instr.imm,
        instr.target,
        pc + 1,
        ZERO if instr.rd == ZERO else None,
    )


class DecodedProgram:
    """A :class:`Program` compiled to per-pc closures and superstep chains.

    Obtain instances through :func:`decode` (which caches one per
    program object); direct construction is for tests and the lint
    checks.  With ``oracle=True`` every closure defers to
    :func:`~repro.machine.semantics.execute` — bitwise the reference
    semantics, used by differential tests to hold the fast path and the
    oracle against each other through identical plumbing.
    """

    __slots__ = (
        "program", "code", "size", "steppers", "chains", "chain_halts",
        "meta", "oracle",
    )

    def __init__(self, program: Program, oracle: bool = False):
        self.program = program
        self.code = program.code
        self.size = len(program.code)
        self.oracle = oracle
        steppers: List[Stepper] = []
        quicks: List[Stepper] = []
        meta: List[Tuple] = []
        for pc, instr in enumerate(self.code):
            if oracle:
                def step(state, instr=instr):
                    return execute(instr, state)
                stepper, quick = step, None
            else:
                stepper, quick = _decode_instruction(pc, instr)
            steppers.append(stepper)
            quicks.append(quick if quick is not None else stepper)
            meta.append(_decode_meta(pc, instr))
        self.steppers: Tuple[Stepper, ...] = tuple(steppers)
        self.meta: Tuple[Tuple, ...] = tuple(meta)
        self.chains, self.chain_halts = self._build_chains(quicks)

    def _build_chains(
        self, quicks: List[Stepper]
    ) -> Tuple[Tuple[Tuple[Stepper, ...], ...], Tuple[bool, ...]]:
        """Per-pc straight-line closure runs ending at block terminators.

        ``chains[pc]`` executes pc through the first terminator at or
        after it (or the end of the text); ``chain_halts[pc]`` marks
        chains whose terminator is ``halt``.  Entry at any pc is legal —
        chains are suffixes, so branch targets into block middles get
        their own (shorter) run.
        """
        code = self.code
        size = self.size
        ends: List[int] = [0] * size  # pc -> index one past the terminator
        halts: List[bool] = [False] * size
        end = size
        halt = False
        for pc in range(size - 1, -1, -1):
            if code[pc].is_terminator:
                end = pc + 1
                halt = code[pc].op is Opcode.HALT
            ends[pc] = end
            halts[pc] = halt
        chains = tuple(
            tuple(quicks[pc:ends[pc]]) for pc in range(size)
        )
        return chains, tuple(halts)

    # -- stepping -----------------------------------------------------------

    def step(self, state: MachineStateLike) -> StepEffect:
        """Execute one instruction at ``state.pc`` (bounds-checked)."""
        pc = state.pc
        if not 0 <= pc < self.size:
            raise InvalidPcError(pc, self.size)
        return self.steppers[pc](state)

    def run(
        self,
        state: MachineStateLike,
        max_steps: int,
        observer=None,
    ) -> Tuple[int, bool]:
        """Advance ``state`` until halt; returns ``(steps, halted)``.

        Matches the reference loop instruction-for-instruction: the halt
        is executed (and observed) but not counted, and
        :class:`~repro.errors.StepLimitExceeded` raises exactly when the
        ``max_steps``-th non-halt instruction retires.  With no observer
        attached, whole basic blocks execute as supersteps without
        per-step pc checks or effect allocation.
        """
        if observer is not None:
            return self._step_loop(state, 0, max_steps, observer)
        chains = self.chains
        chain_halts = self.chain_halts
        size = self.size
        steps = 0
        while True:
            pc = state.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            chain = chains[pc]
            if steps + len(chain) < max_steps:
                for fn in chain:
                    fn(state)
                if chain_halts[pc]:
                    return steps + len(chain) - 1, True
                steps += len(chain)
            else:
                # Near the budget boundary: step exactly, so the limit
                # fires at the same instruction as the reference loop.
                return self._step_loop(state, steps, max_steps, None)

    def _step_loop(
        self,
        state: MachineStateLike,
        steps: int,
        max_steps: int,
        observer,
    ) -> Tuple[int, bool]:
        code = self.code
        steppers = self.steppers
        size = self.size
        while True:
            pc = state.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            effect = steppers[pc](state)
            if effect.halted:
                # Observed (profilers must see halt blocks execute) but
                # not counted: a halted state is a fixed point.
                if observer is not None:
                    observer(pc, code[pc], effect, state)
                return steps, True
            steps += 1
            if observer is not None:
                observer(pc, code[pc], effect, state)
            if steps >= max_steps:
                raise StepLimitExceeded(max_steps)


def decode(program: Program, oracle: bool = False) -> DecodedProgram:
    """The (cached) decoding of ``program``.

    One decoding is kept per program *object*; a different Program with
    equal contents decodes separately, and re-decoding after mutation is
    impossible because programs are frozen.  The cache entry lives in the
    program's ``__dict__`` (excluded from pickling by
    ``Program.__getstate__``), so invalidation is garbage collection.
    """
    cache = program.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        object.__setattr__(program, _CACHE_ATTR, cache)
    decoded = cache.get(oracle)
    if decoded is None:
        decoded = DecodedProgram(program, oracle=oracle)
        cache[oracle] = decoded
    return decoded
