"""Single-instruction operational semantics of the Z-ISA.

:func:`execute` is the one and only implementation of instruction
semantics in the package.  The sequential reference machine, the MSSP
master, and the MSSP slaves all call it, each supplying its own
:class:`~repro.machine.state.MachineStateLike` implementation — this is
what makes "slaves execute according to the sequential model" true by
construction rather than by duplicated code.

All instructions are total: arithmetic wraps to 64 bits, shift amounts are
masked to 6 bits, and division/modulo by zero yield 0 (trap-free, with
C-style truncation toward zero otherwise).  ``fork`` executes as a no-op
here; the master's driver intercepts it *before* execution to spawn tasks.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import RA
from repro.machine.state import MachineStateLike, wrap64

_MASK64 = (1 << 64) - 1


class StepEffect:
    """Externally observable facts about one executed instruction.

    ``mem_addr``/``mem_value`` describe the single memory access the
    instruction performed, if any (the Z-ISA has at most one per
    instruction); ``is_store`` distinguishes its direction.  ``taken`` is
    true when control did not fall through.  The profiler and the MSSP
    engine consume these; the interpreter itself ignores them.
    """

    __slots__ = ("halted", "taken", "mem_addr", "mem_value", "is_store")

    def __init__(
        self,
        halted: bool = False,
        taken: bool = False,
        mem_addr: Optional[int] = None,
        mem_value: Optional[int] = None,
        is_store: bool = False,
    ):
        self.halted = halted
        self.taken = taken
        self.mem_addr = mem_addr
        self.mem_value = mem_value
        self.is_store = is_store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StepEffect(halted={self.halted}, taken={self.taken}, "
            f"mem=({self.mem_addr}, {self.mem_value}, store={self.is_store}))"
        )


def _div_trunc(a: int, b: int) -> int:
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _mod_trunc(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _div_trunc(a, b) * b


_R3_OPS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _div_trunc,
    Opcode.MOD: _mod_trunc,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: (a & _MASK64) >> (b & 63),
    Opcode.SRA: lambda a, b: a >> (b & 63),
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLE: lambda a, b: int(a <= b),
    Opcode.SEQ: lambda a, b: int(a == b),
    Opcode.SNE: lambda a, b: int(a != b),
}

_I2_OPS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.MULI: lambda a, b: a * b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SLLI: lambda a, b: a << (b & 63),
    Opcode.SRLI: lambda a, b: (a & _MASK64) >> (b & 63),
    Opcode.SLTI: lambda a, b: int(a < b),
}

_BRANCH_OPS: Dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


def execute(instr: Instruction, state: MachineStateLike) -> StepEffect:
    """Execute one instruction against ``state`` and advance its pc.

    On ``halt`` the pc is left pointing at the halt instruction and the
    returned effect has ``halted`` set, so a halted state re-executes the
    halt if stepped again (a fixed point, mirroring the paper's SEQ model
    where execution length is counted in instructions).
    """
    op = instr.op
    if op in _R3_OPS:
        result = _R3_OPS[op](state.read_reg(instr.rs), state.read_reg(instr.rt))
        state.write_reg(instr.rd, result)
        state.pc += 1
        return StepEffect()
    if op in _I2_OPS:
        result = _I2_OPS[op](state.read_reg(instr.rs), instr.imm)
        state.write_reg(instr.rd, result)
        state.pc += 1
        return StepEffect()
    if op in _BRANCH_OPS:
        taken = _BRANCH_OPS[op](state.read_reg(instr.rs), state.read_reg(instr.rt))
        state.pc = instr.target if taken else state.pc + 1
        return StepEffect(taken=taken)
    if op is Opcode.LW:
        address = wrap64(state.read_reg(instr.rs) + instr.imm)
        value = state.load(address)
        state.write_reg(instr.rd, value)
        state.pc += 1
        return StepEffect(mem_addr=address, mem_value=value)
    if op is Opcode.SW:
        address = wrap64(state.read_reg(instr.rs) + instr.imm)
        value = state.read_reg(instr.rt)
        state.store(address, value)
        state.pc += 1
        return StepEffect(mem_addr=address, mem_value=value, is_store=True)
    if op is Opcode.LI:
        state.write_reg(instr.rd, instr.imm)
        state.pc += 1
        return StepEffect()
    if op is Opcode.MOV:
        state.write_reg(instr.rd, state.read_reg(instr.rs))
        state.pc += 1
        return StepEffect()
    if op is Opcode.J:
        state.pc = instr.target
        return StepEffect(taken=True)
    if op is Opcode.JAL:
        state.write_reg(RA, state.pc + 1)
        state.pc = instr.target
        return StepEffect(taken=True)
    if op is Opcode.JR:
        state.pc = state.read_reg(instr.rs)
        return StepEffect(taken=True)
    if op is Opcode.HALT:
        return StepEffect(halted=True)
    # NOP and FORK (fork is a task marker, not a computation).
    state.pc += 1
    return StepEffect()
