"""Architected machine state for the Z-ISA.

:class:`ArchState` is the ISA-visible state the paper calls "architected
state": the values of all registers and memory cells, plus the program
counter.  In the MSSP machine this is the state held in the shared L2 and
updated only by the verify/commit unit; in the sequential reference model
it is simply the machine's state.

Memory is sparse, with unmapped addresses reading as zero, which matches
how the workloads are laid out (zero-initialized ``.space`` regions never
materialize).  Two interchangeable backings implement that surface: the
canonical sparse ``{word address: value}`` dict, and the paged
``array('q')`` store in :mod:`repro.machine.flatmem` (selected by
``REPRO_MEM={dict,flat,check}``; ``check`` runs both differentially).
Zero cells are absent from the dict and zero-valued in pages — the two
forms are canonically equal, and cross-backend ``==`` compares
ISA-visible contents.

The :class:`MemoryView` protocol documents the access interface the
interpreter core uses; the MSSP master and slave wrap it with overlay/
recording views (see :mod:`repro.mssp`) so a single implementation of the
instruction semantics serves every execution context.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Tuple

from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, ZERO
from repro.machine.flatmem import make_memory, resolve_mem_backend

_MASK64 = (1 << 64) - 1


def wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


class MachineStateLike(Protocol):
    """Access interface required by the instruction semantics.

    Implementations: :class:`ArchState` (direct), the MSSP master's
    write-cache view, and the MSSP slave's recording view.
    """

    pc: int

    def read_reg(self, index: int) -> int: ...

    def write_reg(self, index: int, value: int) -> None: ...

    def load(self, address: int) -> int: ...

    def store(self, address: int, value: int) -> None: ...


class ArchState:
    """Concrete architected state: 32 registers, sparse memory, and a pc."""

    __slots__ = ("regs", "mem", "pc")

    def __init__(
        self,
        regs: Optional[Iterable[int]] = None,
        mem: Optional[Mapping[int, int]] = None,
        pc: int = 0,
        backend: Optional[str] = None,
    ):
        regs_list = (
            [wrap64(v) for v in regs] if regs is not None else [0] * NUM_REGS
        )
        self.regs: List[int] = regs_list
        if len(self.regs) != NUM_REGS:
            raise ValueError(f"expected {NUM_REGS} registers")
        self.mem = make_memory(resolve_mem_backend(backend), mem)
        self.pc = pc

    @classmethod
    def initial(
        cls, program: Program, backend: Optional[str] = None
    ) -> "ArchState":
        """The boot state for ``program``: zero registers, its data image."""
        return cls(mem=program.memory, pc=program.entry, backend=backend)

    # -- MachineStateLike ------------------------------------------------------

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != ZERO:
            self.regs[index] = wrap64(value)

    def load(self, address: int) -> int:
        return self.mem.get(address, 0)

    def store(self, address: int, value: int) -> None:
        value = wrap64(value)
        if value:
            self.mem[address] = value
        else:
            # Canonical sparse form: zero cells are absent.  This keeps
            # state equality equivalent to ISA-visible equality.
            self.mem.pop(address, None)

    # -- copying / comparison ---------------------------------------------------

    def copy(self) -> "ArchState":
        """An independent deep copy.

        Checkpoint/snapshot hot path: bypasses ``__init__`` (whose
        generic constructors re-validate) and duplicates the slots with
        the backend's own ``copy`` — ``dict.copy`` for the sparse dict,
        page-level array copies (O(touched pages)) for the flat backend.
        """
        clone = ArchState.__new__(ArchState)
        clone.regs = self.regs.copy()
        clone.mem = self.mem.copy()
        clone.pc = self.pc
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.regs == other.regs
            and self.mem == other.mem
        )

    def __hash__(self) -> int:  # states are mutable; identity hash is a trap
        raise TypeError("ArchState is unhashable")

    def diff(self, other: "ArchState") -> List[str]:
        """Human-readable differences from ``other`` (for test failures)."""
        issues: List[str] = []
        if self.pc != other.pc:
            issues.append(f"pc: {self.pc} != {other.pc}")
        for index in range(NUM_REGS):
            if self.regs[index] != other.regs[index]:
                issues.append(
                    f"r{index}: {self.regs[index]} != {other.regs[index]}"
                )
        addresses = set(self.mem) | set(other.mem)
        for address in sorted(addresses):
            mine = self.mem.get(address, 0)
            theirs = other.mem.get(address, 0)
            if mine != theirs:
                issues.append(f"mem[{address}]: {mine} != {theirs}")
        return issues

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {i: v for i, v in enumerate(self.regs) if v}
        return f"ArchState(pc={self.pc}, regs={nonzero}, |mem|={len(self.mem)})"

    # -- superimposition ----------------------------------------------------------

    def apply_delta(
        self,
        reg_writes: Mapping[int, int],
        mem_writes: Mapping[int, int],
        pc: Optional[int] = None,
    ) -> None:
        """Superimpose a write-set onto this state (the commit operation).

        This is the concrete form of the paper's superimposition operator
        ``S ← live_out(t)``: register and memory cells named by the write-set
        are overwritten, everything else is untouched, and the pc advances to
        the committed task's end.
        """
        for index, value in reg_writes.items():
            self.write_reg(index, value)
        for address, value in mem_writes.items():
            self.store(address, value)
        if pc is not None:
            self.pc = pc

    def snapshot_cells(
        self, reg_indices: Iterable[int], addresses: Iterable[int]
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Read the named cells (used by verification diagnostics)."""
        regs = {i: self.regs[i] for i in reg_indices}
        mem = {a: self.mem.get(a, 0) for a in addresses}
        return regs, mem

    def load_cells(self, addresses: Iterable[int]) -> Dict[int, int]:
        """Batched memory read: ``{address: value}`` for many cells.

        Dispatches to the backend's bulk path when it has one (the flat
        paged store reads page runs with one page lookup each); the dict
        backend falls back to per-cell ``get``.  Used by the Redistiller
        to re-validate value-specialization sites against architected
        memory without paying per-cell dispatch overhead.
        """
        bulk = getattr(self.mem, "get_many", None)
        if bulk is not None:
            return bulk(addresses)
        get = self.mem.get
        return {a: get(a, 0) for a in addresses}
