"""Sequential Z-ISA machine: architected state, semantics, interpreter.

This package is the paper's SEQ model: :func:`~repro.machine.interpreter.seq`
and :func:`~repro.machine.interpreter.run` define what "correct execution"
means for every other part of the system.
"""

from repro.machine.decoded import DecodedProgram, decode
from repro.machine.interpreter import (
    DEFAULT_STEP_LIMIT,
    Observer,
    RunResult,
    count_dynamic_instructions,
    run,
    run_to_halt,
    seq,
    step,
)
from repro.machine.semantics import StepEffect, execute
from repro.machine.state import ArchState, MachineStateLike, wrap64

__all__ = [
    "DecodedProgram",
    "decode",
    "DEFAULT_STEP_LIMIT",
    "Observer",
    "RunResult",
    "count_dynamic_instructions",
    "run",
    "run_to_halt",
    "seq",
    "step",
    "StepEffect",
    "execute",
    "ArchState",
    "MachineStateLike",
    "wrap64",
]
