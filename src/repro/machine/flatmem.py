"""Flat paged memory backing store for :class:`~repro.machine.state.ArchState`.

The architected memory of the Z-ISA is sparse: a word address space of
2^64 cells, almost all of which are zero.  The original backing store was
a ``{address: value}`` dict in *canonical sparse form* (zero cells are
absent, so mapping equality is ISA-visible equality).  That form is
compact but pays a hashed lookup per load/store, O(cells) for snapshots,
and cell-at-a-time comparisons during verify.

:class:`PagedMemory` keeps the same *observable* mapping surface but
backs it with fixed-size ``array('q')`` pages allocated on first touch:

* page index = ``address >> PAGE_BITS`` (arithmetic shift, so negative
  addresses land on well-defined negative pages);
* slot = ``address & PAGE_MASK``;
* a zero slot is canonically equivalent to an absent cell, so stores of
  zero simply write zero — no ``pop`` bookkeeping on the hot path;
* snapshots are page-level ``array`` copies (O(touched pages));
* bulk comparisons use ``memoryview`` slice equality (C memcmp).

The dict backend is retained as a differential oracle: selected through
``REPRO_MEM={dict,flat,check}`` (or :class:`MsspConfig.mem_backend`),
where ``check`` runs both backends in lock-step via :class:`CheckMemory`
and asserts per-operation agreement.

Everything that consumes ``ArchState.mem`` generically — ``dict(mem)``,
``mem.items()``, ``mem.get``, ``in``, ``==`` against a plain dict — keeps
working: :class:`PagedMemory` implements the mapping protocol over its
*nonzero* cells only, preserving canonical sparse semantics.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

PAGE_BITS = 9
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1

MEM_BACKENDS = ("dict", "flat", "check")

_ZERO_PAGE = array("q", bytes(8 * PAGE_SIZE))
_ZERO_MV = memoryview(_ZERO_PAGE)


def resolve_mem_backend(explicit: Optional[str] = None) -> str:
    """Resolve the memory backend: explicit > ``REPRO_MEM`` env > dict."""
    backend = explicit if explicit is not None else os.environ.get("REPRO_MEM")
    if backend is None or backend == "":
        return "dict"
    if backend not in MEM_BACKENDS:
        raise ValueError(
            f"unknown memory backend {backend!r}; expected one of {MEM_BACKENDS}"
        )
    return backend


def make_memory(backend: str, init: Optional[Mapping[int, int]] = None):
    """Construct a memory backing store of the given backend kind."""
    if backend == "dict":
        if init is None:
            return {}
        if isinstance(init, dict):
            return {a: v for a, v in init.items() if v}
        return {a: v for a, v in init.items() if v}
    if backend == "flat":
        return PagedMemory(init)
    if backend == "check":
        return CheckMemory(init)
    raise ValueError(f"unknown memory backend {backend!r}")


class PagedMemory:
    """Sparse 64-bit word memory over fixed-size ``array('q')`` pages.

    Observable surface: a mapping of the *nonzero* cells, exactly like
    the canonical sparse dict it replaces.
    """

    __slots__ = ("pages",)

    def __init__(self, init: Optional[Mapping[int, int]] = None):
        self.pages: Dict[int, array] = {}
        if init:
            if isinstance(init, PagedMemory):
                self.pages = {idx: pg[:] for idx, pg in init.pages.items()}
            else:
                for address, value in init.items():
                    if value:
                        self[address] = value

    # -- cell access -----------------------------------------------------------

    def get(self, address: int, default: int = 0) -> int:
        page = self.pages.get(address >> PAGE_BITS)
        if page is None:
            return default
        value = page[address & PAGE_MASK]
        return value if value else default

    def __getitem__(self, address: int) -> int:
        page = self.pages.get(address >> PAGE_BITS)
        if page is not None:
            value = page[address & PAGE_MASK]
            if value:
                return value
        raise KeyError(address)

    def __setitem__(self, address: int, value: int) -> None:
        index = address >> PAGE_BITS
        page = self.pages.get(index)
        if page is None:
            page = self.pages[index] = _ZERO_PAGE[:]
        page[address & PAGE_MASK] = value

    def pop(self, address: int, default=None):
        page = self.pages.get(address >> PAGE_BITS)
        if page is None:
            return default
        slot = address & PAGE_MASK
        value = page[slot]
        if value:
            page[slot] = 0
            return value
        return default

    def __contains__(self, address: int) -> bool:
        page = self.pages.get(address >> PAGE_BITS)
        return page is not None and page[address & PAGE_MASK] != 0

    def page_for_store(self, address: int) -> array:
        """The page holding ``address``, allocating it on first touch.

        Generated JIT code inlines the page lookup and calls this only on
        a page miss, so allocation stays off the steady-state store path.
        """
        index = address >> PAGE_BITS
        page = self.pages.get(index)
        if page is None:
            page = self.pages[index] = _ZERO_PAGE[:]
        return page

    def get_many(self, addresses: Iterable[int]) -> Dict[int, int]:
        """Batched read: ``{address: value}`` with one page lookup per
        page run (addresses are grouped by page, so reading a cluster of
        cells — checkpoint patching, redistill site revalidation — costs
        O(pages touched) dict probes instead of one per cell)."""
        out: Dict[int, int] = {}
        page_index: Optional[int] = None
        page = None
        for address in sorted(addresses):
            index = address >> PAGE_BITS
            if index != page_index:
                page_index = index
                page = self.pages.get(index)
            out[address] = page[address & PAGE_MASK] if page is not None else 0
        return out

    # -- mapping protocol over nonzero cells -----------------------------------

    def items(self) -> Iterator[Tuple[int, int]]:
        for index, page in self.pages.items():
            base = index << PAGE_BITS
            for offset, value in enumerate(page):
                if value:
                    yield base + offset, value

    def keys(self) -> Iterator[int]:
        for address, _ in self.items():
            yield address

    __iter__ = keys

    def values(self) -> Iterator[int]:
        for _, value in self.items():
            yield value

    def __len__(self) -> int:
        return sum(PAGE_SIZE - page.count(0) for page in self.pages.values())

    def __bool__(self) -> bool:
        return any(PAGE_SIZE != page.count(0) for page in self.pages.values())

    def to_dict(self) -> Dict[int, int]:
        """The equivalent canonical sparse dict (zero cells absent)."""
        out: Dict[int, int] = {}
        for index, page in self.pages.items():
            if page.count(0) == PAGE_SIZE:
                continue
            base = index << PAGE_BITS
            for offset, value in enumerate(page):
                if value:
                    out[base + offset] = value
        return out

    # -- bulk operations -------------------------------------------------------

    def copy(self) -> "PagedMemory":
        """Independent copy via page-level array slices: O(touched pages)."""
        clone = PagedMemory.__new__(PagedMemory)
        clone.pages = {idx: pg[:] for idx, pg in self.pages.items()}
        return clone

    def equal_run(self, start: int, values: array) -> bool:
        """Compare cells ``[start, start + len(values))`` against ``values``.

        Uses ``memoryview`` slice equality per overlapped page (a C
        memcmp); absent pages compare against the shared zero page.
        """
        n = len(values)
        mv = memoryview(values)
        position = 0
        while position < n:
            address = start + position
            offset = address & PAGE_MASK
            take = min(PAGE_SIZE - offset, n - position)
            page = self.pages.get(address >> PAGE_BITS)
            theirs = _ZERO_MV if page is None else memoryview(page)
            if theirs[offset : offset + take] != mv[position : position + take]:
                return False
            position += take
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PagedMemory):
            for index in self.pages.keys() | other.pages.keys():
                mine = self.pages.get(index)
                theirs = other.pages.get(index)
                a = _ZERO_MV if mine is None else memoryview(mine)
                b = _ZERO_MV if theirs is None else memoryview(theirs)
                if a != b:
                    return False
            return True
        if isinstance(other, CheckMemory):
            return self == other.flat
        if isinstance(other, dict):
            count = 0
            for index, page in self.pages.items():
                base = index << PAGE_BITS
                for offset, value in enumerate(page):
                    if value:
                        count += 1
                        if other.get(base + offset) != value:
                            return False
            return count == len(other)
        return NotImplemented

    def __hash__(self) -> int:
        raise TypeError("PagedMemory is unhashable")

    # -- pickling --------------------------------------------------------------

    def __reduce__(self):
        return (
            _paged_from_bytes,
            ({idx: pg.tobytes() for idx, pg in self.pages.items()},),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PagedMemory(pages={len(self.pages)}, cells={len(self)})"


def _paged_from_bytes(raw: Dict[int, bytes]) -> PagedMemory:
    mem = PagedMemory.__new__(PagedMemory)
    mem.pages = {}
    for index, blob in raw.items():
        page = array("q")
        page.frombytes(blob)
        mem.pages[index] = page
    return mem


class MemoryCheckError(AssertionError):
    """A flat/dict differential disagreement detected by :class:`CheckMemory`."""


class CheckMemory:
    """Lock-step differential wrapper: flat backend checked against the dict oracle.

    Every operation runs on both backings and any observable disagreement
    raises :class:`MemoryCheckError`.  Selected by ``REPRO_MEM=check``;
    strictly a debugging/CI tool — roughly the cost of both backends.
    """

    __slots__ = ("oracle", "flat")

    def __init__(self, init: Optional[Mapping[int, int]] = None):
        if isinstance(init, CheckMemory):
            self.oracle = dict(init.oracle)
            self.flat = init.flat.copy()
        else:
            self.oracle = (
                {a: v for a, v in init.items() if v} if init else {}
            )
            self.flat = PagedMemory(init)

    def _agree(self, op: str, mine, theirs):
        if mine != theirs:
            raise MemoryCheckError(
                f"flat/dict divergence on {op}: flat={mine!r} dict={theirs!r}"
            )
        return theirs

    def get(self, address: int, default: int = 0) -> int:
        return self._agree(
            f"get({address})",
            self.flat.get(address, default),
            self.oracle.get(address, default),
        )

    def __getitem__(self, address: int) -> int:
        value = self.oracle[address]
        return self._agree(f"[{address}]", self.flat[address], value)

    def __setitem__(self, address: int, value: int) -> None:
        self.flat[address] = value
        if value:
            self.oracle[address] = value
        else:
            self.oracle.pop(address, None)

    def pop(self, address: int, default=None):
        return self._agree(
            f"pop({address})",
            self.flat.pop(address, default),
            self.oracle.pop(address, default),
        )

    def __contains__(self, address: int) -> bool:
        return self._agree(
            f"{address} in mem", address in self.flat, address in self.oracle
        )

    def items(self):
        self.verify_image()
        return self.oracle.items()

    def keys(self):
        self.verify_image()
        return self.oracle.keys()

    def __iter__(self):
        return iter(self.keys())

    def values(self):
        self.verify_image()
        return self.oracle.values()

    def __len__(self) -> int:
        return self._agree("len", len(self.flat), len(self.oracle))

    def __bool__(self) -> bool:
        return self._agree("bool", bool(self.flat), bool(self.oracle))

    def to_dict(self) -> Dict[int, int]:
        self.verify_image()
        return dict(self.oracle)

    def copy(self) -> "CheckMemory":
        clone = CheckMemory.__new__(CheckMemory)
        clone.oracle = self.oracle.copy()
        clone.flat = self.flat.copy()
        return clone

    def verify_image(self) -> None:
        """Assert whole-image flat/dict equivalence (MEM001's runtime twin)."""
        if not self.flat == self.oracle:
            raise MemoryCheckError(
                "flat/dict image divergence: "
                f"flat={self.flat.to_dict()!r} dict={self.oracle!r}"
            )

    def __eq__(self, other: object) -> bool:
        self.verify_image()
        if isinstance(other, CheckMemory):
            return self.oracle == other.oracle
        if isinstance(other, PagedMemory):
            return other == self.oracle
        if isinstance(other, dict):
            return self.oracle == other
        return NotImplemented

    def __hash__(self) -> int:
        raise TypeError("CheckMemory is unhashable")

    def __reduce__(self):
        return (CheckMemory, (dict(self.oracle),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckMemory(cells={len(self.oracle)})"


def as_dict(mem) -> Dict[int, int]:
    """A plain canonical sparse dict snapshot of any memory backend."""
    if isinstance(mem, dict):
        return dict(mem)
    return mem.to_dict()
