"""Sequential reference interpreter — the paper's SEQ model.

:func:`run` executes a program to completion (or a step limit) on an
:class:`~repro.machine.state.ArchState`; :func:`seq` is the paper's
``seq(S, n)`` — advance a state by exactly ``n`` instructions.  MSSP
correctness is always judged against these functions.

An optional observer receives every executed instruction together with its
:class:`~repro.machine.semantics.StepEffect`; the profiler is implemented
as such an observer.

Execution dispatches through the pre-decoded engine
(:mod:`repro.machine.decoded`), which is differentially tested to be
observationally identical to :func:`repro.machine.semantics.execute`,
the semantic oracle.  Effects handed to observers follow the decoded
engine's interned-effect contract: treat them as immutable, snapshot
fields rather than retaining the objects.

The ``REPRO_EXEC`` environment variable selects the execution tier for
:func:`run`: ``oracle`` (every step through ``semantics.execute``),
``decoded`` (the default), or ``jit`` (compiled superblocks —
:mod:`repro.machine.jit` — with deopt back to the decoded stepper; runs
with an observer attached deopt entirely, preserving exact per-step
fidelity).  All tiers produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import InvalidPcError
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.machine.decoded import decode
from repro.machine.jit import jit_for, resolve_exec_tier
from repro.machine.semantics import StepEffect
from repro.machine.state import ArchState

#: Observer signature: (pc before execution, instruction, effect, state after).
Observer = Callable[[int, Instruction, StepEffect, ArchState], None]

#: Default instruction budget for :func:`run`.
DEFAULT_STEP_LIMIT = 50_000_000


@dataclass
class RunResult:
    """Outcome of a bounded sequential run."""

    state: ArchState
    steps: int
    halted: bool


def step(program: Program, state: ArchState) -> StepEffect:
    """Execute exactly one instruction of ``program`` at ``state.pc``."""
    return decode(program).step(state)


def run(
    program: Program,
    state: Optional[ArchState] = None,
    max_steps: int = DEFAULT_STEP_LIMIT,
    observer: Optional[Observer] = None,
) -> RunResult:
    """Run ``program`` until it halts, or raise on exceeding ``max_steps``.

    ``state`` defaults to the program's boot state.  Halting does not count
    as an executed step (matching ``seq``'s instruction arithmetic: the
    state at a ``halt`` is a fixed point).
    """
    if state is None:
        state = ArchState.initial(program)
    tier = resolve_exec_tier()
    if tier == "jit":
        steps, halted = jit_for(program).run(
            state, max_steps, observer=observer
        )
    else:
        steps, halted = decode(program, oracle=tier == "oracle").run(
            state, max_steps, observer=observer
        )
    return RunResult(state=state, steps=steps, halted=halted)


def run_to_halt(program: Program, max_steps: int = DEFAULT_STEP_LIMIT) -> RunResult:
    """Run ``program`` from boot state to halt (convenience wrapper)."""
    return run(program, max_steps=max_steps)


def seq(program: Program, state: ArchState, n: int) -> ArchState:
    """The paper's ``seq(S, n)``: advance ``state`` by ``n`` instructions.

    Returns a *new* state; ``state`` itself is not modified.  A halted
    state is a fixed point, so stepping past a ``halt`` is well-defined.
    """
    result = state.copy()
    decoded = decode(program)
    steppers = decoded.steppers
    size = decoded.size
    for _ in range(n):
        pc = result.pc
        if not 0 <= pc < size:
            raise InvalidPcError(pc, size)
        if steppers[pc](result).halted:
            break
    return result


def count_dynamic_instructions(
    program: Program, max_steps: int = DEFAULT_STEP_LIMIT
) -> int:
    """Dynamic path length of ``program`` from boot to halt."""
    return run_to_halt(program, max_steps=max_steps).steps


def count_instructions_and_loads(
    program: Program, max_steps: int = DEFAULT_STEP_LIMIT
) -> "tuple[int, int]":
    """(dynamic instructions, memory loads) of one sequential run.

    The load count feeds memory-aware cycle accounting: machines that
    charge ``load_penalty`` extra cycles per load need the baseline's
    load count for fair speedup denominators.
    """
    loads = 0

    def observer(pc, instr, effect, state):
        nonlocal loads
        del pc, instr, state
        if effect.mem_addr is not None and not effect.is_store:
            loads += 1

    result = run(program, max_steps=max_steps, observer=observer)
    return result.steps, loads
