"""Superblock JIT: hot Z-ISA regions compiled to generated Python.

The pre-decoded engine (:mod:`repro.machine.decoded`) pays one Python
call per instruction inside its superstep chains.  This module removes
that last per-instruction cost for hot code: a **superblock compiler**
stitches the straight-line chain of basic blocks starting at a hot block
leader into a single generated-Python function per region, produced by
textual codegen and ``compile()``/``exec``.

What the generated code looks like
----------------------------------

* **Registers become Python locals** (``arch`` and ``master`` modes):
  every register the region touches is read into a local once at entry
  and written back at every exit.  The extra reads/writes are
  unobservable on an :class:`~repro.machine.state.ArchState` (plain list
  cells) and on the master's private view — which is exactly why these
  modes are restricted to them.
* **Wrap checks are inlined**: instead of calling ``wrap64`` per result,
  arithmetic emits a range check (``> MAXI or < MINI``) with the biased
  mask fix only on the rare overflow path; ops closed over canonical
  64-bit values (``and``/``or``/``xor``/``sra``/``mov``/comparisons)
  skip the check entirely.  This is sound because every localized value
  is canonical by construction (states wrap on write and at init).
* **ZERO is folded**: instructions writing ``r0`` disappear entirely in
  the localized modes (their operand reads are unobservable too).
* **Fall-through pcs are constant-folded**: inside a region the pc is
  not materialized at all; only exits store ``state.pc``.
* **Memory ops are inlined** per backend: the ``arch`` mode compiles two
  flavors of every region — one against the canonical sparse dict
  (bound ``get``/``__setitem__``/``pop``), one against
  :class:`~repro.machine.flatmem.PagedMemory` with the page-table lookup
  and slot indexing emitted inline (``pages.get(a >> PAGE_BITS)`` plus
  an ``array`` subscript; zero stores simply write zero).  Dispatchers
  pick the flavor for the state's actual backend.
* **Asserted branches are guards**: the trace follows each conditional
  branch's fall-through; the taken direction exits the region with the
  step/load deltas flushed and the pc set.  A branch or jump back to the
  region entry becomes a real Python loop back-edge.

Superblock direct linking
-------------------------

When a compiled region repeatedly exits through the same taken branch
into another compiled region's entry, the dispatcher bounce between them
is pure overhead.  :meth:`JitProgram.region_for` tracks region-to-region
transits (a guard chain per exit target); after
:data:`DEFAULT_LINK_THRESHOLD` consecutive hits the exit is **promoted**:
the source region is re-traced *through* the branch (the followed
direction inverts into a guard, exactly like fall-throughs) and
recompiled with the target's trace fused in — superblock-to-superblock
transfer without leaving generated code, and loops that span several
blocks close into a single Python back-edge.  Fusion is trace extension
rather than a direct call between region functions, so linked hot loops
cannot recurse the Python stack.  ``invalidate()`` (deopt teardown)
atomically unpublishes a region together with its links and counters;
in-flight passes finish on the old function, whose guards remain sound.
``JitProgram.stats`` counts transits, promotions and fused regions.

Codegen modes
-------------

* ``arch`` — register localization + inlined memory, sound only for
  :class:`~repro.machine.state.ArchState`.  Compiled in four variants:
  ``full``/``full_flat`` (the 8-argument protocol below, dict/paged
  memory) and ``plain``/``plain_flat`` (a stripped sequential variant
  with no arrival/stop machinery for :meth:`JitProgram.run`).
* ``view`` — exact per-access ``read_reg``/``write_reg``/``load``/
  ``store`` calls in decoded order, sound for any ``MachineStateLike``
  including the MSSP recording views; recorded live-ins/live-outs are
  bit-identical to the per-step engine's.
* ``master`` — the distilled program on the master's private view
  (:class:`repro.mssp.master._MasterView`): registers localized (``r0``
  folds to literal zero), the dirty/delta overlay dicts inlined, FORK
  and JR treated as region *boundaries* (the master hardware intercepts
  them, so traces stop just before), and per-pc arrival counting moved
  into generated code — each traced arrival pc increments a local
  counter at its visit position, batch-committed into the master's
  arrivals dict at every exit.

Guarded deopt
-------------

Regions preserve the decoded engine's exact observable semantics by
construction plus guards:

* region entry requires ``steps + linear_len < budget`` — one pass can
  never cross the step-limit boundary, so the caller's per-step decoded
  fallback fires ``StepLimitExceeded``/overrun/timeout at precisely the
  same instruction as the reference loop;
* loop back-edges re-check the budget before continuing;
* arrival (``end_pc``) and stop (``stops``/``min_steps``) checks are
  emitted at every **original-CFG block leader** inside the trace.  The
  per-step engines check these after every instruction, but an arrival
  or stop pc that is not a block leader can never match mid-block — the
  callers validate ``end_pc in leaders`` (and ``stops <= leaders``) and
  deopt to the per-step path otherwise;
* observers always deopt to the decoded per-step loop (exact per-step
  fidelity), and callers with protected regions configured never use the
  JIT at all (device-visible accesses need per-access checks).

Region function protocols
-------------------------

``full``/``full_flat`` (and ``view`` mode's single function)::

    fn(state, steps, loads, budget, end_pc, arrivals, stops, min_steps)
        -> (steps, loads, arrivals, status)

``plain``/``plain_flat`` (sequential run, no arrival/stop machinery)::

    fn(state, steps, budget) -> (steps, status)

``master``::

    fn(view, steps, loads, budget, arrivals_dict) -> (steps, loads, status)

``status`` is :data:`EXIT_RUN` (normal exit, ``state.pc`` synced),
:data:`EXIT_HALT` (pc left at the halt, halt not counted),
:data:`EXIT_ARRIVAL` (the ``arrivals``-th arrival at ``end_pc``), or
:data:`EXIT_STOP` (reached a pc in ``stops`` with at least ``min_steps``
executed).  Steps and loads are flushed as compile-time-constant
increments at every exit.

The persistent code cache
-------------------------

Compiled regions are content-addressed — (program digest, codegen mode,
schema, Python version, plus the arrival-pc map for ``master`` mode) —
in the persistent on-disk artifact cache (:mod:`repro.experiments.cache`,
kind ``jitcode``): the generated *source text* per variant plus trace
metadata (pcs, followed branches, links) per region.  A new
:class:`JitProgram` for the same program content loads and ``exec``\\ s
the stored sources immediately, skipping both the profiling warmup and
the trace/codegen work — this is how parallel slave workers reuse
compilations instead of re-JITting per worker.  Like the decode cache,
the in-memory attachment lives on the :class:`~repro.isa.program.Program`
instance and is excluded from pickles by ``Program.__getstate__``.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.errors import InvalidPcError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import RA, ZERO
from repro.machine.decoded import DecodedProgram, decode
from repro.machine.flatmem import PAGE_BITS, PAGE_MASK, PagedMemory
from repro.machine.semantics import _div_trunc, _mod_trunc
from repro.machine.state import MachineStateLike, wrap64

__all__ = [
    "EXIT_RUN", "EXIT_HALT", "EXIT_ARRIVAL", "EXIT_STOP",
    "EXEC_TIERS", "JIT_SCHEMA", "DEFAULT_THRESHOLD",
    "DEFAULT_LINK_THRESHOLD", "REGION_LIMIT",
    "Region", "JitProgram", "jit_for", "block_leaders",
    "jit_cache_key", "resolve_exec_tier",
]

#: The execution-tier ladder, slowest first.  ``oracle`` dispatches every
#: step through :func:`repro.machine.semantics.execute` (the semantic
#: reference), ``decoded`` through the pre-decoded closures, ``jit``
#: through compiled superblocks with deopt to ``decoded``.
EXEC_TIERS = ("oracle", "decoded", "jit")
_EXEC_ENV = "REPRO_EXEC"


def resolve_exec_tier(explicit: Optional[str] = None) -> str:
    """The effective execution tier: explicit > ``REPRO_EXEC`` > decoded."""
    tier = explicit
    if tier is None:
        tier = os.environ.get(_EXEC_ENV, "").strip().lower() or "decoded"
    if tier not in EXEC_TIERS:
        raise ValueError(
            f"unknown execution tier {tier!r}: expected one of {EXEC_TIERS}"
        )
    return tier

#: Region exit statuses (see the module docstring).
EXIT_RUN = 0
EXIT_HALT = 1
EXIT_ARRIVAL = 2
EXIT_STOP = 3

#: Bump when trace construction or codegen changes shape: it is folded
#: into every persistent-cache key, so stale generated code can never be
#: executed against a newer runtime.  2: inlined wrap checks, per-backend
#: memory flavors, plain variants, superblock linking, master mode.
JIT_SCHEMA = 2

#: Arrivals at a block leader before its region is compiled.
DEFAULT_THRESHOLD = 16
_THRESHOLD_ENV = "REPRO_JIT_THRESHOLD"

#: Consecutive same-target region-to-region transits before the exit is
#: promoted into a fused trace (superblock direct linking).
DEFAULT_LINK_THRESHOLD = 8
_LINK_THRESHOLD_ENV = "REPRO_JIT_LINK_THRESHOLD"

#: Link health: a fused link survives while its internal back-edge hits
#: outnumber inverted-guard misses this-many-to-one; below that the link
#: is demoted (the fused tail costs more than the saved dispatch).
_LINK_KEEP_RATIO = 4

#: Maximum instructions traced into one superblock (fused traces included).
REGION_LIMIT = 256

#: Regions shorter than this are not worth a call.
_MIN_REGION = 2

#: Attribute under which JitPrograms are cached on the Program instance
#: (excluded from pickles by ``Program.__getstate__``, exactly like the
#: decode cache).
_CACHE_ATTR = "_jit_cache"

_MASK64 = (1 << 64) - 1
_MAXI = (1 << 63) - 1
_MINI = -(1 << 63)
_BIAS = 1 << 63

#: Codegen variants per mode (see the module docstring).
_VARIANTS = {
    "arch": ("full", "full_flat", "plain", "plain_flat"),
    "view": ("full",),
    "master": ("master",),
}

# Localized-register expression templates and their wrap discipline.
# "two": result may leave [MINI, MAXI] in either direction; "upper":
# result is nonnegative and may only exceed MAXI; "none": closed over
# canonical inputs (bitwise/shift-right/compare/copy results).
_LOCAL_R3: Dict[Opcode, Tuple[str, str]] = {
    Opcode.ADD: ("{a} + {b}", "two"),
    Opcode.SUB: ("{a} - {b}", "two"),
    Opcode.MUL: ("{a} * {b}", "two"),
    Opcode.DIV: ("dv({a}, {b})", "two"),  # only MINI // -1 overflows
    Opcode.MOD: ("md({a}, {b})", "none"),  # |result| < 2**63 always
    Opcode.AND: ("{a} & {b}", "none"),
    Opcode.OR: ("{a} | {b}", "none"),
    Opcode.XOR: ("{a} ^ {b}", "none"),
    Opcode.SLL: ("{a} << ({b} & 63)", "two"),
    Opcode.SRL: ("({a} & %d) >> ({b} & 63)" % _MASK64, "upper"),
    Opcode.SRA: ("{a} >> ({b} & 63)", "none"),
    Opcode.SLT: ("(1 if {a} < {b} else 0)", "none"),
    Opcode.SLE: ("(1 if {a} <= {b} else 0)", "none"),
    Opcode.SEQ: ("(1 if {a} == {b} else 0)", "none"),
    Opcode.SNE: ("(1 if {a} != {b} else 0)", "none"),
}

# View-mode expressions: no wrap calls at all — ``write_reg`` wraps on
# the way in, so the unwrapped expression value is unobservable.
_VIEW_R3 = {op: expr for op, (expr, _kind) in _LOCAL_R3.items()}

_I2_OPS_TO_R3 = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.MULI: Opcode.MUL,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}

_BRANCH_EXPR = {
    Opcode.BEQ: "{a} == {b}",
    Opcode.BNE: "{a} != {b}",
    Opcode.BLT: "{a} < {b}",
    Opcode.BGE: "{a} >= {b}",
}

#: Globals bound into every generated region's namespace.
_CODEGEN_GLOBALS = {"w": wrap64, "dv": _div_trunc, "md": _mod_trunc}


def block_leaders(program: Program) -> FrozenSet[int]:
    """Original-CFG block leaders: pcs where a basic block can begin.

    Entry, every branch/jump target inside the text, and every pc
    following a terminator or a ``fork`` (``fork`` targets name pcs in a
    *different* program and are ignored).  Arrival/stop checks inside
    compiled regions are emitted exactly at these pcs; callers must
    validate that their arrival/stop pcs are leaders before using the
    JIT (see the module docstring).
    """
    size = len(program.code)
    leaders: Set[int] = {program.entry, 0}
    for pc, instr in enumerate(program.code):
        if instr.op is not Opcode.FORK:
            target = instr.target
            if isinstance(target, int) and 0 <= target < size:
                leaders.add(target)
        if (instr.is_terminator or instr.op is Opcode.FORK) and pc + 1 < size:
            leaders.add(pc + 1)
    return frozenset(leaders)


def jit_cache_key(
    program: Program, mode: str, extra: Optional[tuple] = None
) -> str:
    """Persistent-cache key for ``program``'s compiled regions.

    ``extra`` folds mode-specific compilation inputs into the key; the
    ``master`` mode passes its (pc -> anchor) arrival map, which is baked
    into generated code as constants.
    """
    from repro.experiments import cache

    return cache.digest(
        "jitcode", JIT_SCHEMA, cache.program_digest(program), mode,
        list(sys.version_info[:2]),
        [list(item) for item in (extra or ())],
    )


class Region:
    """One compiled superblock: generated function variants + metadata."""

    __slots__ = (
        "entry", "pcs", "taken", "links", "linear_len", "mode",
        "sources", "exit_targets", "guard_fallthroughs", "backedges",
        "full", "full_flat", "plain", "plain_flat", "master",
    )

    def __init__(
        self,
        entry: int,
        pcs: Tuple[int, ...],
        taken: FrozenSet[int],
        links: Tuple[int, ...],
        mode: str,
        sources: Dict[str, str],
        fns: Dict[str, object],
        exit_targets: FrozenSet[int],
        backedges: Optional[List[int]] = None,
    ):
        self.entry = entry
        #: Traced pcs in execution order (each executes at most once per
        #: pass; loops re-enter through the back-edge).
        self.pcs = pcs
        #: Branch pcs whose *taken* direction the trace follows (the
        #: fall-through inverts into the guard exit) — nonempty only for
        #: fused regions produced by link promotion.
        self.taken = taken
        #: Promoted exit targets fused into this trace, in promotion order.
        self.links = links
        #: Upper bound on instructions one pass can execute — the entry
        #: and back-edge budget guards use it.
        self.linear_len = len(pcs)
        self.mode = mode
        #: variant name -> generated source text.
        self.sources = sources
        self.full = fns.get("full")
        self.full_flat = fns.get("full_flat")
        self.plain = fns.get("plain")
        self.plain_flat = fns.get("plain_flat")
        self.master = fns.get("master")
        #: Static exit targets eligible for link promotion: taken targets
        #: of non-followed branches that leave the trace (and are not the
        #: entry, whose edge is already the loop back-edge).
        self.exit_targets = exit_targets
        #: Guard-exit pcs of followed branches (the inverted fall-through
        #: directions).  The dispatcher watches arrivals here to detect a
        #: link whose bias prediction went stale.
        self.guard_fallthroughs = frozenset(
            pc + 1 for pc in taken if pc + 1 != entry
        )
        #: One shared mutable cell, incremented by generated code at
        #: every internal back-edge of a *fused* region — loop passes
        #: that never surface to the dispatcher, the denominator of the
        #: link-health ratio.  Empty-taken regions carry no counter (and
        #: no per-iteration cost).
        self.backedges = backedges if backedges is not None else [0]

    @property
    def fn(self):
        """The canonical full-protocol function (legacy accessor)."""
        return self.master if self.mode == "master" else self.full

    @property
    def source(self) -> str:
        """The canonical variant's source (legacy accessor)."""
        key = "master" if self.mode == "master" else "full"
        return self.sources[key]

    def select(self, flat: bool):
        """The full-protocol function for the given memory backend."""
        if self.mode == "arch" and flat:
            return self.full_flat
        return self.fn


class _Emitter:
    """Tiny indented-line collector for the textual codegen."""

    __slots__ = ("lines",)

    def __init__(self):
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class JitProgram:
    """A program plus its (lazily) compiled superblock regions.

    Obtain instances through :func:`jit_for`.  ``mode`` selects the
    codegen specialization — see the module docstring.
    """

    __slots__ = (
        "program", "decoded", "size", "mode", "leaders", "threshold",
        "link_threshold", "arrival_pcs", "compiled", "links", "stats",
        "_dead", "_counters", "_transit", "_no_extend", "_link_miss",
        "_last_entry", "_cache_key", "_persist",
    )

    def __init__(
        self,
        program: Program,
        mode: str = "arch",
        threshold: Optional[int] = None,
        persist: bool = True,
        arrival_pcs: Optional[Mapping[int, int]] = None,
        link_threshold: Optional[int] = None,
    ):
        if mode not in _VARIANTS:
            raise ValueError(f"unknown jit codegen mode {mode!r}")
        if mode == "master":
            arrival_pcs = dict(arrival_pcs or {})
        elif arrival_pcs is not None:
            raise ValueError("arrival_pcs is only meaningful in master mode")
        self.program = program
        self.decoded: DecodedProgram = decode(program)
        self.size = self.decoded.size
        self.mode = mode
        self.leaders = block_leaders(program)
        #: pc -> original anchor, baked into master-mode codegen.
        self.arrival_pcs: Dict[int, int] = arrival_pcs or {}
        if threshold is None:
            threshold = int(
                os.environ.get(_THRESHOLD_ENV, "") or DEFAULT_THRESHOLD
            )
        self.threshold = max(1, threshold)
        if link_threshold is None:
            link_threshold = int(
                os.environ.get(_LINK_THRESHOLD_ENV, "")
                or DEFAULT_LINK_THRESHOLD
            )
        self.link_threshold = max(1, link_threshold)
        #: entry pc -> Region for every compiled superblock.
        self.compiled: Dict[int, Region] = {}
        #: entry pc -> promoted branch-taken targets its trace follows.
        self.links: Dict[int, Set[int]] = {}
        #: Observable codegen/linking counters (bench smoke asserts on
        #: these): regions compiled, candidate region-to-region transits,
        #: promotions/demotions performed, currently-fused region count.
        self.stats: Dict[str, int] = {
            "compiled": 0,
            "link_transits": 0,
            "link_promotions": 0,
            "link_demotions": 0,
            "fused_regions": 0,
        }
        self._dead: Set[int] = set()
        self._counters: Dict[int, int] = {}
        #: entry -> (last exit target, consecutive count) guard chains.
        self._transit: Dict[int, Tuple[int, int]] = {}
        self._no_extend: Set[Tuple[int, int]] = set()
        #: (entry, linked target) -> inverted-guard miss count.
        self._link_miss: Dict[Tuple[int, int], int] = {}
        self._last_entry: Optional[int] = None
        self._persist = persist
        if persist:
            extra = tuple(sorted(self.arrival_pcs.items())) or None
            self._cache_key = jit_cache_key(program, mode, extra)
            self._load_persisted()
        else:
            self._cache_key = None

    # -- persistent code cache ----------------------------------------------

    def _load_persisted(self) -> None:
        """Compile every region another process already traced."""
        from repro.experiments import cache

        stored = cache.load("jitcode", self._cache_key)
        if not isinstance(stored, dict):
            return
        expected = set(_VARIANTS[self.mode])
        for entry, meta in stored.items():
            try:
                sources = dict(meta["sources"])
                if set(sources) != expected:
                    continue
                region = self._compile_sources(
                    int(entry),
                    tuple(meta["pcs"]),
                    frozenset(meta["taken"]),
                    tuple(meta["links"]),
                    sources,
                )
            except Exception:
                continue  # stale/corrupt entry: recompile lazily
            self.compiled[region.entry] = region
            if region.links:
                self.links[region.entry] = set(region.links)
            self.stats["compiled"] += 1
        self.stats["fused_regions"] = sum(
            1 for r in self.compiled.values() if r.links
        )

    def _persist_regions(self) -> None:
        from repro.experiments import cache

        payload = {
            entry: {
                "pcs": list(region.pcs),
                "taken": sorted(region.taken),
                "links": list(region.links),
                "sources": dict(region.sources),
            }
            for entry, region in self.compiled.items()
        }
        cache.store("jitcode", self._cache_key, payload)

    # -- region lookup / linking ---------------------------------------------

    def region_for(self, pc: int) -> Optional[Region]:
        """The compiled region entered at ``pc``, counting hotness.

        Returns ``None`` while ``pc`` is cold (or is not a block leader,
        or traces to a region too short to be worth a call).  Each call
        counts one arrival; crossing :attr:`threshold` compiles.  Every
        call also feeds the linking machinery with the observed
        region-to-region transition: a transit along the same static
        exit :attr:`link_threshold` times in a row fuses the target's
        trace into the source region, and a fused region whose inverted
        guard keeps firing (misses outgrowing a fraction of its internal
        loop passes) has that link demoted again.
        """
        region = self.compiled.get(pc)
        prev = self._last_entry
        if region is not None:
            self._last_entry = pc
            if prev is not None and prev != pc:
                self._observe_transition(prev, pc)
            return region
        self._last_entry = None
        if prev is not None:
            self._observe_transition(prev, pc)
        if pc in self._dead:
            return None
        if pc not in self.leaders:
            self._dead.add(pc)
            return None
        count = self._counters.get(pc, 0) + 1
        if count < self.threshold:
            self._counters[pc] = count
            return None
        self._counters.pop(pc, None)
        region = self._compile(pc)
        if region is None:
            self._dead.add(pc)
            return None
        self.compiled[pc] = region
        self.stats["compiled"] += 1
        if self._persist:
            self._persist_regions()
        return region

    def _observe_transition(self, prev_entry: int, pc: int) -> None:
        """React to control arriving at ``pc`` out of ``prev_entry``'s
        region: count promotion guard chains and link-guard misses."""
        source = self.compiled.get(prev_entry)
        if source is None:
            return
        if pc in source.guard_fallthroughs:
            self._note_guard_miss(prev_entry, source, pc)
            return
        if pc not in source.exit_targets:
            return
        if (prev_entry, pc) in self._no_extend:
            return
        self.stats["link_transits"] += 1
        last, count = self._transit.get(prev_entry, (None, 0))
        count = count + 1 if last == pc else 1
        self._transit[prev_entry] = (pc, count)
        if count >= self.link_threshold:
            self._promote(prev_entry, pc)

    def _note_guard_miss(self, entry: int, region: Region,
                         fall_pc: int) -> None:
        """A fused region exited through an inverted guard: charge the
        link that predicted the other direction, demote if it keeps
        losing.

        A healthy fused loop spins on its internal back-edge without
        ever surfacing here, so every observed guard miss is evidence
        against the link; the generated back-edge counter supplies the
        invisible hits.  The link survives while hits outnumber misses
        :data:`_LINK_KEEP_RATIO`-to-one — below that, the fall-through
        tail (served by per-step chain dispatch after every miss) costs
        more than the saved dispatcher bounce, and the link is torn
        down: the region recompiles without it and the pair is never
        promoted again.
        """
        branch_pc = fall_pc - 1
        if branch_pc not in region.taken:
            return
        target = self.program.code[branch_pc].target
        key = (entry, target)
        misses = self._link_miss.get(key, 0) + 1
        self._link_miss[key] = misses
        if (
            misses >= self.link_threshold
            and misses * _LINK_KEEP_RATIO > region.backedges[0]
        ):
            self._demote(entry, target)

    def _demote(self, entry: int, target: int) -> None:
        """Tear one link down: recompile ``entry`` without ``target``."""
        self._no_extend.add((entry, target))
        self._transit.pop(entry, None)
        self._link_miss = {
            k: v for k, v in self._link_miss.items() if k[0] != entry
        }
        links = set(self.links.get(entry, ()))
        links.discard(target)
        while links:
            # A surviving link may only have been reachable through the
            # removed one — drop any the re-trace no longer follows, so
            # the published metadata stays re-derivable (JIT004).
            pcs, _taken = self.trace(entry, frozenset(links))
            stale = {t for t in links if t not in pcs}
            if not stale:
                break
            links -= stale
        if links:
            self.links[entry] = links
        else:
            self.links.pop(entry, None)
        region = self._compile(entry)
        if region is None:  # pragma: no cover - it compiled before
            self.invalidate(entry)
            return
        self.compiled[entry] = region
        self.stats["link_demotions"] += 1
        self.stats["fused_regions"] = sum(
            1 for r in self.compiled.values() if r.links
        )
        if self._persist:
            self._persist_regions()

    def _promote(self, entry: int, target: int) -> None:
        """Fuse ``target``'s continuation into ``entry``'s trace."""
        old = self.compiled.get(entry)
        if old is None:
            return
        links = set(self.links.get(entry, ()))
        links.add(target)
        new_pcs, _taken = self.trace(entry, frozenset(links))
        if target not in new_pcs:
            # The extension didn't materialize (REGION_LIMIT truncation,
            # or the branch is unreachable in the re-trace): never retry
            # this pair.  Note the fused trace may well be *shorter* than
            # the old one — following the taken direction replaces the
            # whole fall-through tail.
            self._no_extend.add((entry, target))
            self._transit.pop(entry, None)
            return
        while True:
            # Following the new branch can divert the trace away from a
            # previously fused link — drop any the re-trace no longer
            # reaches, so published metadata stays re-derivable (JIT004).
            stale = {t for t in links if t not in new_pcs}
            if not stale:
                break
            links -= stale
            new_pcs, _taken = self.trace(entry, frozenset(links))
            if target not in new_pcs:  # pragma: no cover - defensive
                self._no_extend.add((entry, target))
                self._transit.pop(entry, None)
                return
        self.links[entry] = links
        region = self._compile(entry)
        if region is None:  # pragma: no cover - trace() said otherwise
            links.discard(target)
            self._no_extend.add((entry, target))
            return
        self.compiled[entry] = region
        self._transit.pop(entry, None)
        self._link_miss = {
            k: v for k, v in self._link_miss.items() if k[0] != entry
        }
        self.stats["link_promotions"] += 1
        self.stats["fused_regions"] = sum(
            1 for r in self.compiled.values() if r.links
        )
        if self._persist:
            self._persist_regions()

    def invalidate(self, entry: int) -> None:
        """Deopt teardown: unpublish ``entry``'s region and its links.

        Dispatchers hold a region only for the duration of one pass, and
        every pass's guards are sound in isolation — so tearing a region
        down is just unpublishing it; in-flight passes complete safely on
        the old function.  Hotness restarts from zero (the region may
        recompile later, without its promoted links).
        """
        self.compiled.pop(entry, None)
        self.links.pop(entry, None)
        self._transit.pop(entry, None)
        self._counters.pop(entry, None)
        self._no_extend = {p for p in self._no_extend if p[0] != entry}
        self._link_miss = {
            k: v for k, v in self._link_miss.items() if k[0] != entry
        }
        if self._last_entry == entry:
            self._last_entry = None
        self.stats["fused_regions"] = sum(
            1 for r in self.compiled.values() if r.links
        )
        if self._persist:
            self._persist_regions()

    # -- tracing -------------------------------------------------------------

    def trace(
        self, entry: int, links: Optional[FrozenSet[int]] = None
    ) -> Tuple[Tuple[int, ...], FrozenSet[int]]:
        """The superblock trace from ``entry`` (deterministic).

        Follows fall-throughs and unconditional jumps; additionally
        follows the *taken* direction of branches whose target is in
        ``links`` (defaulting to this program's promoted links for
        ``entry``).  Stops at ``jr``, ``halt``, a back-edge to ``entry``,
        a pc already traced, the end of the text, or
        :data:`REGION_LIMIT`; ``master`` mode also stops *before* FORK
        and JR (the master hardware intercepts both).  Returns
        ``(pcs, taken)`` where ``taken`` is the set of branch pcs whose
        taken direction the trace follows.  ``repro lint``'s JIT002
        check re-derives this and compares it against compiled regions.
        """
        if links is None:
            links = frozenset(self.links.get(entry, ()))
        code = self.program.code
        size = self.size
        master = self.mode == "master"
        pcs: List[int] = []
        taken: Set[int] = set()
        seen: Set[int] = set()
        pc = entry
        while len(pcs) < REGION_LIMIT and 0 <= pc < size and pc not in seen:
            instr = code[pc]
            op = instr.op
            if master and (op is Opcode.FORK or op is Opcode.JR):
                break  # region boundary: the master intercepts these
            pcs.append(pc)
            seen.add(pc)
            if op is Opcode.HALT or op is Opcode.JR:
                break
            if op is Opcode.J or op is Opcode.JAL:
                if instr.target == entry:
                    break  # becomes the loop back-edge
                pc = instr.target
            elif instr.is_branch:
                target = instr.target
                if target != entry and target in links and target not in seen:
                    taken.add(pc)
                    pc = target
                else:
                    pc = pc + 1
            else:
                pc = pc + 1
        return tuple(pcs), frozenset(taken)

    def _compile(self, entry: int) -> Optional[Region]:
        pcs, taken = self.trace(entry)
        if len(pcs) < _MIN_REGION:
            return None
        links = tuple(sorted(self.links.get(entry, ())))
        sources = {
            variant: self._generate(entry, pcs, taken, variant)
            for variant in _VARIANTS[self.mode]
        }
        return self._compile_sources(entry, pcs, frozenset(taken), links,
                                     sources)

    def _compile_sources(
        self,
        entry: int,
        pcs: Tuple[int, ...],
        taken: FrozenSet[int],
        links: Tuple[int, ...],
        sources: Dict[str, str],
    ) -> Region:
        fns: Dict[str, object] = {}
        backedges = [0]  # shared across variants: one health counter
        for variant, source in sources.items():
            namespace = dict(_CODEGEN_GLOBALS)
            namespace["_bk"] = backedges
            code = compile(
                source,
                f"<jit:{self.program.name}@{entry}:{variant}>",
                "exec",
            )
            exec(code, namespace)
            fns[variant] = namespace[f"_region_{entry}"]
        return Region(
            entry, pcs, taken, links, self.mode, sources, fns,
            self._exit_targets(entry, pcs, taken), backedges,
        )

    def _exit_targets(
        self, entry: int, pcs: Tuple[int, ...], taken: FrozenSet[int]
    ) -> FrozenSet[int]:
        code = self.program.code
        traced = set(pcs)
        out: Set[int] = set()
        for pc in pcs:
            instr = code[pc]
            if not instr.is_branch or pc in taken:
                continue
            target = instr.target
            if (
                isinstance(target, int)
                and 0 <= target < self.size
                and target != entry
                and target not in traced
            ):
                out.add(target)
        return frozenset(out)

    # -- codegen -------------------------------------------------------------

    def generate_source(
        self, entry: int, variant: Optional[str] = None
    ) -> Optional[str]:
        """The generated source for ``entry``'s region (for the checks)."""
        pcs, taken = self.trace(entry)
        if len(pcs) < _MIN_REGION:
            return None
        if variant is None:
            variant = "master" if self.mode == "master" else "full"
        return self._generate(entry, pcs, taken, variant)

    def generate_sources(self, entry: int) -> Optional[Dict[str, str]]:
        """All variant sources for ``entry``'s region (for the checks)."""
        pcs, taken = self.trace(entry)
        if len(pcs) < _MIN_REGION:
            return None
        return {
            variant: self._generate(entry, pcs, taken, variant)
            for variant in _VARIANTS[self.mode]
        }

    def _generate(
        self,
        entry: int,
        pcs: Tuple[int, ...],
        taken: FrozenSet[int],
        variant: str,
    ) -> str:
        mode = self.mode
        localized_regs = mode in ("arch", "master")
        master = variant == "master"
        plain = variant.startswith("plain")
        flat = variant.endswith("_flat")
        checks = not plain and not master  # arrival/stop leader checks
        code = self.program.code
        linear_len = len(pcs)

        # Registers the region touches (localized modes).
        reads: Set[int] = set()
        writes: Set[int] = set()
        has_loads = False
        has_stores = False
        for pc in pcs:
            instr = code[pc]
            for reg in instr.uses():
                reads.add(reg)
            for reg in instr.defs():
                if reg != ZERO:
                    writes.add(reg)
            if instr.op is Opcode.LW:
                has_loads = True
            elif instr.op is Opcode.SW:
                has_stores = True
        if master:
            # r0 folds to literal zero on the master view.
            reads.discard(ZERO)
        localized = sorted(reads | writes)
        written = sorted(writes)

        # Master mode: anchor arrival counters for every traced pc the
        # master counts arrivals at, batch-committed at every exit.
        arrival_sites: Dict[int, int] = {}  # pc -> counter id
        anchor_of: Dict[int, int] = {}  # counter id -> anchor
        if master:
            ids: Dict[int, int] = {}  # anchor -> counter id
            for pc in pcs:
                anchor = self.arrival_pcs.get(pc)
                if anchor is None:
                    continue
                cid = ids.get(anchor)
                if cid is None:
                    cid = ids[anchor] = len(ids)
                    anchor_of[cid] = anchor
                arrival_sites[pc] = cid

        out = _Emitter()
        if plain:
            out.emit(0, f"def _region_{entry}(state, steps, budget):")
        elif master:
            out.emit(0, f"def _region_{entry}(state, steps, loads, budget, "
                        "arr):")
        else:
            out.emit(0, f"def _region_{entry}(state, steps, loads, budget, "
                        "end_pc, arrivals, stops, min_steps):")

        if localized_regs:
            out.emit(1, "_regs = state.regs")
            for reg in localized:
                out.emit(1, f"r{reg} = _regs[{reg}]")
        if mode == "arch":
            if flat:
                if has_loads or has_stores:
                    out.emit(1, "_pget = state.mem.pages.get")
                if has_stores:
                    out.emit(1, "_mpage = state.mem.page_for_store")
            else:
                if has_loads or has_stores:
                    out.emit(1, "_mem = state.mem")
                if has_loads:
                    out.emit(1, "_mget = _mem.get")
                if has_stores:
                    out.emit(1, "_mset = _mem.__setitem__")
                    out.emit(1, "_mpop = _mem.pop")
        elif mode == "view":
            out.emit(1, "_read = state.read_reg")
            out.emit(1, "_write = state.write_reg")
            out.emit(1, "_load = state.load")
            out.emit(1, "_store = state.store")
        elif master:
            if has_loads or has_stores:
                out.emit(1, "_dirty = state.dirty")
            if has_stores:
                out.emit(1, "_delta = state.delta")
            if has_loads:
                out.emit(1, "_bget = state._base_mem.get")
            if anchor_of:
                out.emit(1, "_aget = arr.get")
                for cid in anchor_of:
                    out.emit(1, f"_c{cid} = 0")
        out.emit(1, "while True:")

        def reg_expr(reg: int) -> str:
            if mode == "view":
                return f"_read({reg})"
            if master and reg == ZERO:
                return "0"
            return f"r{reg}"

        def writeback(indent: int) -> None:
            if localized_regs:
                for reg in written:
                    out.emit(indent, f"_regs[{reg}] = r{reg}")

        def flush_arrivals(indent: int) -> None:
            for cid, anchor in anchor_of.items():
                out.emit(indent, f"if _c{cid}:")
                out.emit(
                    indent + 1,
                    f"arr[{anchor}] = _aget({anchor}, 0) + _c{cid}",
                )

        def flush_expr(base: str, delta: int) -> str:
            return f"{base} + {delta}" if delta else base

        def exit_return(
            indent: int, pc_expr: str, k: int, ld: int, status: int
        ) -> None:
            writeback(indent)
            if master:
                flush_arrivals(indent)
            out.emit(indent, f"state.pc = {pc_expr}")
            if plain:
                out.emit(
                    indent, f"return {flush_expr('steps', k)}, {status}"
                )
            elif master:
                out.emit(
                    indent,
                    f"return {flush_expr('steps', k)}, "
                    f"{flush_expr('loads', ld)}, {status}",
                )
            else:
                out.emit(
                    indent,
                    f"return {flush_expr('steps', k)}, "
                    f"{flush_expr('loads', ld)}, arrivals, {status}",
                )

        def leader_checks(
            indent: int, pc_expr: str, k: int, ld: int
        ) -> None:
            """Arrival/stop checks for reaching ``pc_expr`` after ``k``
            steps — the per-step engines' post-step checks, emitted only
            where they can match (block leaders / dynamic targets)."""
            out.emit(indent, f"if {pc_expr} == end_pc:")
            out.emit(indent + 1, "arrivals -= 1")
            out.emit(indent + 1, "if not arrivals:")
            exit_return(indent + 2, pc_expr, k, ld, EXIT_ARRIVAL)
            out.emit(
                indent,
                f"elif stops is not None and "
                f"{flush_expr('steps', k)} >= min_steps and "
                f"{pc_expr} in stops:",
            )
            exit_return(indent + 1, pc_expr, k, ld, EXIT_STOP)

        def back_edge(indent: int, k: int, ld: int) -> None:
            """Flush deltas, run the entry's leader checks, re-check the
            budget, and loop — or exit RUN for the dispatcher."""
            if k:
                out.emit(indent, f"steps += {k}")
            if ld and not plain:
                out.emit(indent, f"loads += {ld}")
            if taken:
                # Fused regions count internal loop passes: the link
                # health denominator (guard misses are the numerator).
                out.emit(indent, "_bk[0] += 1")
            if checks:
                leader_checks(indent, str(entry), 0, 0)
            out.emit(indent, f"if steps + {linear_len} < budget:")
            out.emit(indent + 1, "continue")
            exit_return(indent, str(entry), 0, 0, EXIT_RUN)

        def run_exit(indent: int, target: int, k: int, ld: int) -> None:
            """Exit at a statically known pc, checks included."""
            if checks and target in self.leaders:
                leader_checks(indent, str(target), k, ld)
            exit_return(indent, str(target), k, ld, EXIT_RUN)

        def emit_wrap(indent: int, dest: str, kind: str) -> None:
            if kind == "two":
                out.emit(indent, f"if {dest} > {_MAXI} or {dest} < {_MINI}:")
                out.emit(
                    indent + 1,
                    f"{dest} = (({dest} + {_BIAS}) & {_MASK64}) - {_BIAS}",
                )
            elif kind == "upper":
                out.emit(indent, f"if {dest} > {_MAXI}:")
                out.emit(indent + 1, f"{dest} -= {1 << 64}")

        def emit_address(indent: int, rs: int, imm: int) -> str:
            """Compute a canonical memory address into ``_a`` (or reuse
            the base register directly when the offset is zero)."""
            base = reg_expr(rs)
            if imm == 0 and mode != "view":
                return base
            out.emit(indent, f"_a = {base} + {imm}" if imm else f"_a = {base}")
            if imm:
                emit_wrap(indent, "_a", "two")
            return "_a"

        def emit_linear(indent: int, pc: int, instr: Instruction) -> int:
            """Emit one non-control instruction; returns its load count."""
            op = instr.op
            rd = instr.rd
            spec = _LOCAL_R3.get(op)
            if spec is not None:
                if rd == ZERO:
                    if mode == "view":  # recording views observe the reads
                        out.emit(indent, f"_read({instr.rs})")
                        out.emit(indent, f"_read({instr.rt})")
                    return 0
                a, b = reg_expr(instr.rs), reg_expr(instr.rt)
                if mode == "view":
                    out.emit(
                        indent,
                        f"_write({rd}, {_VIEW_R3[op].format(a=a, b=b)})",
                    )
                else:
                    expr, kind = spec
                    out.emit(indent, f"r{rd} = {expr.format(a=a, b=b)}")
                    emit_wrap(indent, f"r{rd}", kind)
                return 0
            r3 = _I2_OPS_TO_R3.get(op)
            if r3 is not None:
                if rd == ZERO:
                    if mode == "view":
                        out.emit(indent, f"_read({instr.rs})")
                    return 0
                a = reg_expr(instr.rs)
                imm = instr.imm
                if mode == "view":
                    out.emit(
                        indent,
                        f"_write({rd}, "
                        f"{_VIEW_R3[r3].format(a=a, b=repr(imm))})",
                    )
                else:
                    expr, kind = _LOCAL_R3[r3]
                    if kind == "none" and not _MINI <= imm <= _MAXI:
                        kind = "two"  # non-canonical immediate: play safe
                    out.emit(
                        indent, f"r{rd} = {expr.format(a=a, b=repr(imm))}"
                    )
                    emit_wrap(indent, f"r{rd}", kind)
                return 0
            if op is Opcode.LW:
                if mode == "arch" and rd == ZERO:
                    # The load is unobservable on an ArchState; it still
                    # counts toward the loads delta.
                    return 1
                if master and rd == ZERO:
                    # Unobservable on the master view too (no recording).
                    return 1
                addr = emit_address(indent, instr.rs, instr.imm)
                if mode == "view":
                    load = f"_load({addr})"
                    if rd == ZERO:
                        out.emit(indent, load)
                    else:
                        out.emit(indent, f"_write({rd}, {load})")
                elif master:
                    out.emit(
                        indent,
                        f"r{rd} = _dirty[{addr}] if {addr} in _dirty "
                        f"else _bget({addr}, 0)",
                    )
                elif flat:
                    out.emit(indent, f"_pg = _pget({addr} >> {PAGE_BITS})")
                    out.emit(
                        indent,
                        f"r{rd} = _pg[{addr} & {PAGE_MASK}] "
                        "if _pg is not None else 0",
                    )
                else:
                    out.emit(indent, f"r{rd} = _mget({addr}, 0)")
                return 1
            if op is Opcode.SW:
                addr = emit_address(indent, instr.rs, instr.imm)
                value = reg_expr(instr.rt)
                if mode == "view":
                    out.emit(indent, f"_store({addr}, {value})")
                elif master:
                    # The master's dirty overlay keeps explicit zeros.
                    out.emit(indent, f"_dirty[{addr}] = {value}")
                    out.emit(indent, f"_delta[{addr}] = {value}")
                elif flat:
                    # Zero stores write zero: a zero slot is canonically
                    # an absent cell, no pop bookkeeping needed.
                    out.emit(indent, f"_pg = _pget({addr} >> {PAGE_BITS})")
                    out.emit(indent, "if _pg is None:")
                    out.emit(indent + 1, f"_pg = _mpage({addr})")
                    out.emit(indent, f"_pg[{addr} & {PAGE_MASK}] = {value}")
                else:
                    out.emit(indent, f"if {value}:")
                    out.emit(indent + 1, f"_mset({addr}, {value})")
                    out.emit(indent, "else:")
                    out.emit(indent + 1, f"_mpop({addr}, None)")
                return 0
            if op is Opcode.LI:
                if rd != ZERO:
                    literal = repr(wrap64(instr.imm))
                    if mode == "view":
                        out.emit(indent, f"_write({rd}, {literal})")
                    else:
                        out.emit(indent, f"r{rd} = {literal}")
                return 0
            if op is Opcode.MOV:
                if rd == ZERO:
                    if mode == "view":
                        out.emit(indent, f"_read({instr.rs})")
                    return 0
                if mode == "view":
                    out.emit(indent, f"_write({rd}, _read({instr.rs}))")
                else:
                    out.emit(indent, f"r{rd} = {reg_expr(instr.rs)}")
                return 0
            # NOP and FORK (a task marker, not a computation) fall through.
            return 0

        body = 2
        steps_delta = 0
        loads_delta = 0
        for i, pc in enumerate(pcs):
            instr = code[pc]
            op = instr.op
            if checks and pc != entry and pc in self.leaders:
                leader_checks(body, str(pc), steps_delta, loads_delta)
            if master and pc in arrival_sites:
                # The master loop counts an arrival at every *visit* of
                # an arrival pc, before executing it.
                out.emit(body, f"_c{arrival_sites[pc]} += 1")

            if op is Opcode.HALT:
                exit_return(body, str(pc), steps_delta, loads_delta,
                            EXIT_HALT)
                break
            if op is Opcode.JR:
                steps_delta += 1
                out.emit(body, f"_p = {reg_expr(instr.rs)}")
                if checks:
                    leader_checks(body, "_p", steps_delta, loads_delta)
                exit_return(body, "_p", steps_delta, loads_delta, EXIT_RUN)
                break

            if instr.is_branch:
                cond = _BRANCH_EXPR[op].format(
                    a=reg_expr(instr.rs), b=reg_expr(instr.rt)
                )
                exit_k = steps_delta + 1
                if pc in taken:
                    # Linked trace: the taken direction continues inline;
                    # the fall-through inverts into the guard exit.
                    fall = pc + 1
                    out.emit(body, f"if not ({cond}):")
                    if fall == entry:
                        back_edge(body + 1, exit_k, loads_delta)
                    else:
                        run_exit(body + 1, fall, exit_k, loads_delta)
                    steps_delta += 1
                    continue  # next traced pc is the branch target
                out.emit(body, f"if {cond}:")
                if instr.target == entry:
                    back_edge(body + 1, exit_k, loads_delta)
                else:
                    run_exit(body + 1, instr.target, exit_k, loads_delta)
                steps_delta += 1
                fall = pc + 1
                if i + 1 < len(pcs) and pcs[i + 1] == fall:
                    continue
                run_exit(body, fall, steps_delta, loads_delta)
                break

            if op is Opcode.J or op is Opcode.JAL:
                if op is Opcode.JAL:
                    if mode == "view":
                        out.emit(body, f"_write({RA}, {pc + 1})")
                    else:
                        out.emit(body, f"r{RA} = {pc + 1}")
                steps_delta += 1
                target = instr.target
                if target == entry:
                    back_edge(body, steps_delta, loads_delta)
                    break
                if i + 1 < len(pcs) and pcs[i + 1] == target:
                    continue  # constant-folded jump into the trace
                run_exit(body, target, steps_delta, loads_delta)
                break

            # Straight-line instruction.
            loads_delta += emit_linear(body, pc, instr)
            steps_delta += 1
            if i + 1 == len(pcs):  # trace truncated mid-block
                run_exit(body, pc + 1, steps_delta, loads_delta)
        return out.source()

    # -- sequential execution ------------------------------------------------

    def run(
        self,
        state: MachineStateLike,
        max_steps: int,
        observer=None,
    ) -> Tuple[int, bool]:
        """Advance ``state`` until halt; returns ``(steps, halted)``.

        Drop-in for :meth:`DecodedProgram.run`, with hot regions
        executing as compiled superblocks — the ``plain`` variants, which
        carry no arrival/stop machinery at all.  Observers deopt to the
        decoded per-step loop (exact per-step fidelity); near the budget
        boundary the decoded engine's exact logic takes over, so
        :class:`~repro.errors.StepLimitExceeded` fires at the same
        instruction as the reference loop.  ``arch`` mode must only ever
        see an :class:`~repro.machine.state.ArchState` here.
        """
        decoded = self.decoded
        if observer is not None:
            return decoded._step_loop(state, 0, max_steps, observer)
        chains = decoded.chains
        chain_halts = decoded.chain_halts
        size = self.size
        arch = self.mode == "arch"
        flat = arch and isinstance(getattr(state, "mem", None), PagedMemory)
        steps = 0
        while True:
            pc = state.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            region = self.region_for(pc)
            if region is not None and steps + region.linear_len < max_steps:
                if arch:
                    fn = region.plain_flat if flat else region.plain
                    steps, status = fn(state, steps, max_steps)
                else:
                    steps, _loads, _arrivals, status = region.fn(
                        state, steps, 0, max_steps, None, 0, None, 0
                    )
                if status == EXIT_HALT:
                    return steps, True
                continue
            chain = chains[pc]
            if steps + len(chain) < max_steps:
                for fn in chain:
                    fn(state)
                if chain_halts[pc]:
                    return steps + len(chain) - 1, True
                steps += len(chain)
            else:
                return decoded._step_loop(state, steps, max_steps, None)


def jit_for(
    program: Program,
    mode: str = "arch",
    threshold: Optional[int] = None,
    arrival_pcs: Optional[Mapping[int, int]] = None,
) -> JitProgram:
    """The (cached) :class:`JitProgram` of ``program`` for ``mode``.

    One instance is kept per program *object* per mode (per arrival map
    in ``master`` mode), in an attachment excluded from pickling by
    ``Program.__getstate__`` — the same lifetime discipline as
    :func:`repro.machine.decoded.decode`.
    """
    cache = program.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        object.__setattr__(program, _CACHE_ATTR, cache)
    key = mode
    if mode == "master":
        key = (mode, tuple(sorted((arrival_pcs or {}).items())))
    jp = cache.get(key)
    if jp is None:
        jp = JitProgram(
            program, mode=mode, threshold=threshold, arrival_pcs=arrival_pcs
        )
        cache[key] = jp
    return jp
