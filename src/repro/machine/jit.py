"""Superblock JIT: hot Z-ISA regions compiled to generated Python.

The pre-decoded engine (:mod:`repro.machine.decoded`) pays one Python
call per instruction inside its superstep chains.  This module removes
that last per-instruction cost for hot code: a **superblock compiler**
stitches the straight-line chain of basic blocks starting at a hot block
leader into a single generated-Python function per region, produced by
textual codegen and ``compile()``/``exec``.

What the generated code looks like
----------------------------------

* **Registers become Python locals** (``arch`` mode): every register the
  region touches is read into a local once at entry and written back at
  every exit.  The extra reads/writes are unobservable on an
  :class:`~repro.machine.state.ArchState` — plain list cells with no
  recording semantics — which is exactly why this mode is restricted to
  it.
* **ZERO is folded**: instructions writing ``r0`` disappear entirely in
  ``arch`` mode (their operand reads are unobservable too).
* **Fall-through pcs are constant-folded**: inside a region the pc is
  not materialized at all; only exits store ``state.pc``.
* **Memory ops are inlined** against ``ArchState``'s dict (``mem.get``,
  and the canonical-sparse-form store that pops zero cells).
* **Asserted branches are guards**: the trace follows each conditional
  branch's fall-through; the taken direction exits the region with the
  step/load deltas flushed and the pc set, returning control to the
  per-step/chain dispatcher.  A branch or jump back to the region entry
  becomes a real Python loop back-edge.

A second codegen mode, ``view``, serves the MSSP recording views
(:class:`~repro.mssp.slave.SlaveView`): it performs *exactly* the
``read_reg``/``write_reg``/``load``/``store`` calls the decoded closures
perform, in the same order, so recorded live-ins/live-outs are
bit-identical — it only removes the per-instruction dispatch, pc
bookkeeping and effect allocation.

Guarded deopt
-------------

Regions preserve the decoded engine's exact observable semantics by
construction plus guards:

* region entry requires ``steps + linear_len < budget`` — one pass can
  never cross the step-limit boundary, so the caller's per-step decoded
  fallback fires ``StepLimitExceeded``/overrun at precisely the same
  instruction as the reference loop;
* loop back-edges re-check the budget before continuing;
* arrival (``end_pc``) and stop (``stops``/``min_steps``) checks are
  emitted at every **original-CFG block leader** inside the trace.  The
  per-step engines check these after every instruction, but an arrival
  or stop pc that is not a block leader can never match mid-block — the
  callers validate ``end_pc in leaders`` (and ``stops <= leaders``) and
  deopt to the per-step path otherwise;
* observers always deopt to the decoded per-step loop (exact per-step
  fidelity), and callers with protected regions configured never use the
  JIT at all (device-visible accesses need per-access checks).

Region function protocol
------------------------

Each compiled region is a function::

    fn(state, steps, loads, budget, end_pc, arrivals, stops, min_steps)
        -> (steps, loads, arrivals, status)

``status`` is :data:`EXIT_RUN` (normal exit, ``state.pc`` synced),
:data:`EXIT_HALT` (pc left at the halt, halt not counted),
:data:`EXIT_ARRIVAL` (the ``arrivals``-th arrival at ``end_pc``), or
:data:`EXIT_STOP` (reached a pc in ``stops`` with at least ``min_steps``
executed).  Steps and loads are flushed as compile-time-constant
increments at every exit.

The persistent code cache
-------------------------

Compiled regions are content-addressed — (program digest, codegen mode,
schema, Python version) — in the persistent on-disk artifact cache
(:mod:`repro.experiments.cache`, kind ``jitcode``): the generated
*source text* plus trace metadata per region.  A new
:class:`JitProgram` for the same program content loads and ``exec``\\ s
the stored sources immediately, skipping both the profiling warmup and
the trace/codegen work — this is how ``ParallelMsspEngine`` slave
workers reuse compilations instead of re-JITting per worker.  Like the
decode cache, the in-memory attachment lives on the
:class:`~repro.isa.program.Program` instance and is excluded from
pickles by ``Program.__getstate__``.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import InvalidPcError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import RA, ZERO
from repro.machine.decoded import DecodedProgram, decode
from repro.machine.semantics import _div_trunc, _mod_trunc
from repro.machine.state import MachineStateLike, wrap64

__all__ = [
    "EXIT_RUN", "EXIT_HALT", "EXIT_ARRIVAL", "EXIT_STOP",
    "EXEC_TIERS", "JIT_SCHEMA", "DEFAULT_THRESHOLD", "REGION_LIMIT",
    "Region", "JitProgram", "jit_for", "block_leaders",
    "jit_cache_key", "resolve_exec_tier",
]

#: The execution-tier ladder, slowest first.  ``oracle`` dispatches every
#: step through :func:`repro.machine.semantics.execute` (the semantic
#: reference), ``decoded`` through the pre-decoded closures, ``jit``
#: through compiled superblocks with deopt to ``decoded``.
EXEC_TIERS = ("oracle", "decoded", "jit")
_EXEC_ENV = "REPRO_EXEC"


def resolve_exec_tier(explicit: Optional[str] = None) -> str:
    """The effective execution tier: explicit > ``REPRO_EXEC`` > decoded."""
    tier = explicit
    if tier is None:
        tier = os.environ.get(_EXEC_ENV, "").strip().lower() or "decoded"
    if tier not in EXEC_TIERS:
        raise ValueError(
            f"unknown execution tier {tier!r}: expected one of {EXEC_TIERS}"
        )
    return tier

#: Region exit statuses (see the module docstring).
EXIT_RUN = 0
EXIT_HALT = 1
EXIT_ARRIVAL = 2
EXIT_STOP = 3

#: Bump when trace construction or codegen changes shape: it is folded
#: into every persistent-cache key, so stale generated code can never be
#: executed against a newer runtime.
JIT_SCHEMA = 1

#: Arrivals at a block leader before its region is compiled.
DEFAULT_THRESHOLD = 16
_THRESHOLD_ENV = "REPRO_JIT_THRESHOLD"

#: Maximum instructions traced into one superblock.
REGION_LIMIT = 256

#: Regions shorter than this are not worth a call.
_MIN_REGION = 2

#: Attribute under which JitPrograms are cached on the Program instance
#: (excluded from pickles by ``Program.__getstate__``, exactly like the
#: decode cache).
_CACHE_ATTR = "_jit_cache"

_MASK64 = (1 << 64) - 1

_R3_EXPR = {
    Opcode.ADD: "w({a} + {b})",
    Opcode.SUB: "w({a} - {b})",
    Opcode.MUL: "w({a} * {b})",
    Opcode.DIV: "w(dv({a}, {b}))",
    Opcode.MOD: "w(md({a}, {b}))",
    Opcode.AND: "w({a} & {b})",
    Opcode.OR: "w({a} | {b})",
    Opcode.XOR: "w({a} ^ {b})",
    Opcode.SLL: "w({a} << ({b} & 63))",
    Opcode.SRL: "w(({a} & %d) >> ({b} & 63))" % _MASK64,
    Opcode.SRA: "w({a} >> ({b} & 63))",
    # Comparisons produce 0/1 — already wrapped by construction.
    Opcode.SLT: "(1 if {a} < {b} else 0)",
    Opcode.SLE: "(1 if {a} <= {b} else 0)",
    Opcode.SEQ: "(1 if {a} == {b} else 0)",
    Opcode.SNE: "(1 if {a} != {b} else 0)",
}

_I2_OPS_TO_R3 = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.MULI: Opcode.MUL,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SLTI: Opcode.SLT,
}

_BRANCH_EXPR = {
    Opcode.BEQ: "{a} == {b}",
    Opcode.BNE: "{a} != {b}",
    Opcode.BLT: "{a} < {b}",
    Opcode.BGE: "{a} >= {b}",
}

#: Globals bound into every generated region's namespace.
_CODEGEN_GLOBALS = {"w": wrap64, "dv": _div_trunc, "md": _mod_trunc}


def block_leaders(program: Program) -> FrozenSet[int]:
    """Original-CFG block leaders: pcs where a basic block can begin.

    Entry, every branch/jump target inside the text, and every pc
    following a terminator or a ``fork`` (``fork`` targets name pcs in a
    *different* program and are ignored).  Arrival/stop checks inside
    compiled regions are emitted exactly at these pcs; callers must
    validate that their arrival/stop pcs are leaders before using the
    JIT (see the module docstring).
    """
    size = len(program.code)
    leaders: Set[int] = {program.entry, 0}
    for pc, instr in enumerate(program.code):
        if instr.op is not Opcode.FORK:
            target = instr.target
            if isinstance(target, int) and 0 <= target < size:
                leaders.add(target)
        if (instr.is_terminator or instr.op is Opcode.FORK) and pc + 1 < size:
            leaders.add(pc + 1)
    return frozenset(leaders)


def jit_cache_key(program: Program, mode: str) -> str:
    """Persistent-cache key for ``program``'s compiled regions."""
    from repro.experiments import cache

    return cache.digest(
        "jitcode", JIT_SCHEMA, cache.program_digest(program), mode,
        list(sys.version_info[:2]),
    )


class Region:
    """One compiled superblock: generated function + trace metadata."""

    __slots__ = ("entry", "pcs", "linear_len", "source", "fn", "mode")

    def __init__(
        self,
        entry: int,
        pcs: Tuple[int, ...],
        source: str,
        fn,
        mode: str,
    ):
        self.entry = entry
        #: Traced pcs in execution order (each executes at most once per
        #: pass; loops re-enter through the back-edge).
        self.pcs = pcs
        #: Upper bound on instructions one pass can execute — the entry
        #: and back-edge budget guards use it.
        self.linear_len = len(pcs)
        self.source = source
        self.fn = fn
        self.mode = mode


class _Emitter:
    """Tiny indented-line collector for the textual codegen."""

    __slots__ = ("lines",)

    def __init__(self):
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class JitProgram:
    """A program plus its (lazily) compiled superblock regions.

    Obtain instances through :func:`jit_for`.  ``mode`` selects the
    codegen specialization: ``"arch"`` (register localization + inlined
    memory, sound only for :class:`~repro.machine.state.ArchState`) or
    ``"view"`` (exact per-access method calls, sound for any
    ``MachineStateLike`` including the MSSP recording views).
    """

    __slots__ = (
        "program", "decoded", "size", "mode", "leaders", "threshold",
        "compiled", "_dead", "_counters", "_cache_key", "_persist",
    )

    def __init__(
        self,
        program: Program,
        mode: str = "arch",
        threshold: Optional[int] = None,
        persist: bool = True,
    ):
        if mode not in ("arch", "view"):
            raise ValueError(f"unknown jit codegen mode {mode!r}")
        self.program = program
        self.decoded: DecodedProgram = decode(program)
        self.size = self.decoded.size
        self.mode = mode
        self.leaders = block_leaders(program)
        if threshold is None:
            threshold = int(
                os.environ.get(_THRESHOLD_ENV, "") or DEFAULT_THRESHOLD
            )
        self.threshold = max(1, threshold)
        #: entry pc -> Region for every compiled superblock.
        self.compiled: Dict[int, Region] = {}
        self._dead: Set[int] = set()
        self._counters: Dict[int, int] = {}
        self._persist = persist
        self._cache_key = jit_cache_key(program, mode) if persist else None
        if persist:
            self._load_persisted()

    # -- persistent code cache ----------------------------------------------

    def _load_persisted(self) -> None:
        """Compile every region another process already traced."""
        from repro.experiments import cache

        stored = cache.load("jitcode", self._cache_key)
        if not isinstance(stored, dict):
            return
        for entry, meta in stored.items():
            try:
                region = self._compile_source(
                    int(entry), meta["source"], tuple(meta["pcs"])
                )
            except Exception:
                continue  # stale/corrupt entry: recompile lazily
            self.compiled[region.entry] = region

    def _persist_regions(self) -> None:
        from repro.experiments import cache

        payload = {
            entry: {"source": region.source, "pcs": list(region.pcs)}
            for entry, region in self.compiled.items()
        }
        cache.store("jitcode", self._cache_key, payload)

    # -- region lookup / compilation ----------------------------------------

    def region_for(self, pc: int) -> Optional[Region]:
        """The compiled region entered at ``pc``, counting hotness.

        Returns ``None`` while ``pc`` is cold (or is not a block leader,
        or traces to a region too short to be worth a call).  Each call
        counts one arrival; crossing :attr:`threshold` compiles.
        """
        region = self.compiled.get(pc)
        if region is not None:
            return region
        if pc in self._dead:
            return None
        if pc not in self.leaders:
            self._dead.add(pc)
            return None
        count = self._counters.get(pc, 0) + 1
        if count < self.threshold:
            self._counters[pc] = count
            return None
        self._counters.pop(pc, None)
        region = self._compile(pc)
        if region is None:
            self._dead.add(pc)
            return None
        self.compiled[pc] = region
        if self._persist:
            self._persist_regions()
        return region

    def trace(self, entry: int) -> Tuple[int, ...]:
        """The superblock trace from ``entry`` (deterministic).

        Follows fall-throughs and unconditional jumps; stops at ``jr``,
        ``halt``, a back-edge to ``entry``, a pc already traced, the end
        of the text, or :data:`REGION_LIMIT`.  ``repro lint``'s JIT002
        check re-derives this and compares it against compiled regions.
        """
        code = self.program.code
        size = self.size
        pcs: List[int] = []
        seen: Set[int] = set()
        pc = entry
        while len(pcs) < REGION_LIMIT and 0 <= pc < size and pc not in seen:
            instr = code[pc]
            pcs.append(pc)
            seen.add(pc)
            op = instr.op
            if op is Opcode.HALT or op is Opcode.JR:
                break
            if op is Opcode.J or op is Opcode.JAL:
                if instr.target == entry:
                    break  # becomes the loop back-edge
                pc = instr.target
            else:  # branches continue at the fall-through (taken = guard)
                pc = pc + 1
        return tuple(pcs)

    def _compile(self, entry: int) -> Optional[Region]:
        pcs = self.trace(entry)
        if len(pcs) < _MIN_REGION:
            return None
        source = self._generate(entry, pcs)
        return self._compile_source(entry, source, pcs)

    def _compile_source(
        self, entry: int, source: str, pcs: Tuple[int, ...]
    ) -> Region:
        namespace = dict(_CODEGEN_GLOBALS)
        code = compile(source, f"<jit:{self.program.name}@{entry}>", "exec")
        exec(code, namespace)
        fn = namespace[f"_region_{entry}"]
        return Region(entry, pcs, source, fn, self.mode)

    # -- codegen -------------------------------------------------------------

    def generate_source(self, entry: int) -> Optional[str]:
        """The generated source for ``entry``'s region (for the checks)."""
        pcs = self.trace(entry)
        if len(pcs) < _MIN_REGION:
            return None
        return self._generate(entry, pcs)

    def _generate(self, entry: int, pcs: Tuple[int, ...]) -> str:
        arch = self.mode == "arch"
        code = self.program.code
        traced = set(pcs)
        position = {pc: i for i, pc in enumerate(pcs)}
        linear_len = len(pcs)

        # Registers the region touches (arch mode localization).
        reads: Set[int] = set()
        writes: Set[int] = set()
        for pc in pcs:
            instr = code[pc]
            for reg in instr.uses():
                reads.add(reg)
            for reg in instr.defs():
                if reg != ZERO:
                    writes.add(reg)
        localized = sorted(reads | writes)
        written = sorted(writes)

        out = _Emitter()
        out.emit(0, f"def _region_{entry}(state, steps, loads, budget, "
                    "end_pc, arrivals, stops, min_steps):")
        if arch:
            out.emit(1, "_regs = state.regs")
            out.emit(1, "_mem = state.mem")
            for reg in localized:
                out.emit(1, f"r{reg} = _regs[{reg}]")
        else:
            out.emit(1, "_read = state.read_reg")
            out.emit(1, "_write = state.write_reg")
            out.emit(1, "_load = state.load")
            out.emit(1, "_store = state.store")
        out.emit(1, "while True:")

        def writeback(indent: int) -> None:
            if arch:
                for reg in written:
                    out.emit(indent, f"_regs[{reg}] = r{reg}")

        def flush_expr(base: str, delta: int) -> str:
            return f"{base} + {delta}" if delta else base

        def exit_return(
            indent: int, pc_expr: str, k: int, ld: int, status: int
        ) -> None:
            writeback(indent)
            out.emit(indent, f"state.pc = {pc_expr}")
            out.emit(
                indent,
                f"return {flush_expr('steps', k)}, "
                f"{flush_expr('loads', ld)}, arrivals, {status}",
            )

        def leader_checks(
            indent: int, pc_expr: str, k: int, ld: int
        ) -> None:
            """Arrival/stop checks for reaching ``pc_expr`` after ``k``
            steps — the per-step engines' post-step checks, emitted only
            where they can match (block leaders / dynamic targets)."""
            out.emit(indent, f"if {pc_expr} == end_pc:")
            out.emit(indent + 1, "arrivals -= 1")
            out.emit(indent + 1, "if not arrivals:")
            exit_return(indent + 2, pc_expr, k, ld, EXIT_ARRIVAL)
            out.emit(
                indent,
                f"elif stops is not None and "
                f"{flush_expr('steps', k)} >= min_steps and "
                f"{pc_expr} in stops:",
            )
            exit_return(indent + 1, pc_expr, k, ld, EXIT_STOP)

        def back_edge(indent: int, k: int, ld: int) -> None:
            """Flush deltas, run the entry's leader checks, re-check the
            budget, and loop — or exit RUN for the dispatcher."""
            if k:
                out.emit(indent, f"steps += {k}")
            if ld:
                out.emit(indent, f"loads += {ld}")
            leader_checks(indent, str(entry), 0, 0)
            out.emit(indent, f"if steps + {linear_len} < budget:")
            out.emit(indent + 1, "continue")
            exit_return(indent, str(entry), 0, 0, EXIT_RUN)

        def run_exit(indent: int, target: int, k: int, ld: int) -> None:
            """Exit at a statically known pc, checks included."""
            if target in self.leaders:
                leader_checks(indent, str(target), k, ld)
            exit_return(indent, str(target), k, ld, EXIT_RUN)

        body = 2
        steps_delta = 0
        loads_delta = 0
        for i, pc in enumerate(pcs):
            instr = code[pc]
            op = instr.op
            if pc != entry and pc in self.leaders:
                leader_checks(body, str(pc), steps_delta, loads_delta)

            if op is Opcode.HALT:
                exit_return(body, str(pc), steps_delta, loads_delta,
                            EXIT_HALT)
                break
            if op is Opcode.JR:
                steps_delta += 1
                if arch:
                    out.emit(body, f"_p = r{instr.rs}")
                else:
                    out.emit(body, f"_p = _read({instr.rs})")
                leader_checks(body, "_p", steps_delta, loads_delta)
                exit_return(body, "_p", steps_delta, loads_delta, EXIT_RUN)
                break

            if instr.is_branch:
                cond = _BRANCH_EXPR[op].format(
                    a=self._reg_read(instr.rs, arch),
                    b=self._reg_read(instr.rt, arch),
                )
                taken_k = steps_delta + 1
                out.emit(body, f"if {cond}:")
                if instr.target == entry:
                    back_edge(body + 1, taken_k, loads_delta)
                else:
                    run_exit(body + 1, instr.target, taken_k, loads_delta)
                steps_delta += 1
                fall = pc + 1
                if i + 1 < len(pcs) and pcs[i + 1] == fall:
                    continue
                run_exit(body, fall, steps_delta, loads_delta)
                break

            if op is Opcode.J or op is Opcode.JAL:
                if op is Opcode.JAL:
                    self._emit_write(out, body, RA, str(pc + 1), arch)
                steps_delta += 1
                target = instr.target
                if target == entry:
                    back_edge(body, steps_delta, loads_delta)
                    break
                if i + 1 < len(pcs) and pcs[i + 1] == target:
                    continue  # constant-folded jump into the trace
                run_exit(body, target, steps_delta, loads_delta)
                break

            # Straight-line instruction.
            loads_delta += self._emit_linear(out, body, pc, instr, arch)
            steps_delta += 1
            if i + 1 == len(pcs):  # trace truncated mid-block
                run_exit(body, pc + 1, steps_delta, loads_delta)
        return out.source()

    @staticmethod
    def _reg_read(reg: int, arch: bool) -> str:
        return f"r{reg}" if arch else f"_read({reg})"

    @staticmethod
    def _emit_write(
        out: _Emitter, indent: int, reg: int, expr: str, arch: bool
    ) -> None:
        if arch:
            out.emit(indent, f"r{reg} = {expr}")
        else:
            out.emit(indent, f"_write({reg}, {expr})")

    def _emit_linear(
        self, out: _Emitter, indent: int, pc: int, instr: Instruction,
        arch: bool,
    ) -> int:
        """Emit one non-control instruction; returns its load count."""
        op = instr.op
        rd = instr.rd
        expr = _R3_EXPR.get(op)
        if expr is not None:
            if rd == ZERO:
                if not arch:  # recording views observe the reads
                    out.emit(indent, f"_read({instr.rs})")
                    out.emit(indent, f"_read({instr.rt})")
                return 0
            self._emit_write(
                out, indent, rd,
                expr.format(
                    a=self._reg_read(instr.rs, arch),
                    b=self._reg_read(instr.rt, arch),
                ),
                arch,
            )
            return 0
        r3 = _I2_OPS_TO_R3.get(op)
        if r3 is not None:
            if rd == ZERO:
                if not arch:
                    out.emit(indent, f"_read({instr.rs})")
                return 0
            self._emit_write(
                out, indent, rd,
                _R3_EXPR[r3].format(
                    a=self._reg_read(instr.rs, arch), b=repr(instr.imm)
                ),
                arch,
            )
            return 0
        if op is Opcode.LW:
            addr = f"w({self._reg_read(instr.rs, arch)} + {instr.imm})"
            if arch:
                if rd != ZERO:
                    out.emit(indent, f"r{rd} = w(_mem.get({addr}, 0))")
                # rd == ZERO: the load is unobservable on an ArchState.
            else:
                load = f"_load({addr})"
                if rd == ZERO:
                    out.emit(indent, load)
                else:
                    out.emit(indent, f"_write({rd}, {load})")
            return 1
        if op is Opcode.SW:
            addr = f"w({self._reg_read(instr.rs, arch)} + {instr.imm})"
            if arch:
                out.emit(indent, f"_a = {addr}")
                out.emit(indent, f"_v = w(r{instr.rt})")
                out.emit(indent, "if _v:")
                out.emit(indent + 1, "_mem[_a] = _v")
                out.emit(indent, "else:")
                out.emit(indent + 1, "_mem.pop(_a, None)")
            else:
                out.emit(
                    indent,
                    f"_store({addr}, {self._reg_read(instr.rt, arch)})",
                )
            return 0
        if op is Opcode.LI:
            if rd != ZERO:
                self._emit_write(
                    out, indent, rd,
                    repr(wrap64(instr.imm)) if arch else repr(instr.imm),
                    arch,
                )
            return 0
        if op is Opcode.MOV:
            if rd == ZERO:
                if not arch:
                    out.emit(indent, f"_read({instr.rs})")
                return 0
            source = self._reg_read(instr.rs, arch)
            self._emit_write(
                out, indent, rd, f"w({source})" if arch else source, arch
            )
            return 0
        # NOP and FORK (a task marker, not a computation) fall through.
        return 0

    # -- sequential execution ------------------------------------------------

    def run(
        self,
        state: MachineStateLike,
        max_steps: int,
        observer=None,
    ) -> Tuple[int, bool]:
        """Advance ``state`` until halt; returns ``(steps, halted)``.

        Drop-in for :meth:`DecodedProgram.run`, with hot regions
        executing as compiled superblocks.  Observers deopt to the
        decoded per-step loop (exact per-step fidelity); near the budget
        boundary the decoded engine's exact logic takes over, so
        :class:`~repro.errors.StepLimitExceeded` fires at the same
        instruction as the reference loop.  ``arch`` mode must only ever
        see an :class:`~repro.machine.state.ArchState` here.
        """
        decoded = self.decoded
        if observer is not None:
            return decoded._step_loop(state, 0, max_steps, observer)
        chains = decoded.chains
        chain_halts = decoded.chain_halts
        size = self.size
        steps = 0
        while True:
            pc = state.pc
            if not 0 <= pc < size:
                raise InvalidPcError(pc, size)
            region = self.region_for(pc)
            if region is not None and steps + region.linear_len < max_steps:
                steps, _loads, _arrivals, status = region.fn(
                    state, steps, 0, max_steps, None, 0, None, 0
                )
                if status == EXIT_HALT:
                    return steps, True
                continue
            chain = chains[pc]
            if steps + len(chain) < max_steps:
                for fn in chain:
                    fn(state)
                if chain_halts[pc]:
                    return steps + len(chain) - 1, True
                steps += len(chain)
            else:
                return decoded._step_loop(state, steps, max_steps, None)


def jit_for(
    program: Program,
    mode: str = "arch",
    threshold: Optional[int] = None,
) -> JitProgram:
    """The (cached) :class:`JitProgram` of ``program`` for ``mode``.

    One instance is kept per program *object* per mode, in an attachment
    excluded from pickling by ``Program.__getstate__`` — the same
    lifetime discipline as :func:`repro.machine.decoded.decode`.
    """
    cache = program.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        object.__setattr__(program, _CACHE_ATTR, cache)
    jp = cache.get(mode)
    if jp is None:
        jp = JitProgram(program, mode=mode, threshold=threshold)
        cache[mode] = jp
    return jp
