"""ASCII timeline (Gantt) rendering of a simulated MSSP execution.

Turns a schedule-bearing :class:`~repro.timing.simulator.TimingBreakdown`
into a terminal picture: one lane for the master, one per slave, one for
the verify/commit unit, and a recovery lane.  Meant for examples,
debugging and documentation — seeing the master running ahead of its
slaves is the fastest way to understand what MSSP buys.

Legend::

    master lane : ==== producing forks   .... stalled
    slave lanes : #### committed task    xxxx squashed task
    commit lane : C at each commit instant
    recovery    : rrrr sequential recovery stretch
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TimingError
from repro.timing.simulator import ScheduleEntry, TimingBreakdown


def render_timeline(
    breakdown: TimingBreakdown,
    width: int = 100,
    start: float = 0.0,
    end: Optional[float] = None,
) -> str:
    """Render the schedule between cycles ``start`` and ``end``.

    ``width`` is the number of character cells the window is divided
    into; each cell shows what its time slice mostly contained.
    """
    entries = breakdown.schedule
    if width < 1:
        raise TimingError("timeline width must be positive")
    if not entries:
        raise TimingError(
            "breakdown has no schedule; simulate with schedule=True"
        )
    end = breakdown.total_cycles if end is None else end
    if end <= start:
        raise TimingError("timeline window is empty")
    scale = (end - start) / width

    def column(time: float) -> int:
        return min(width - 1, max(0, int((time - start) / scale)))

    def paint(lane: List[str], begin: float, finish: float, char: str) -> None:
        if finish < start or begin > end:
            return
        left = column(max(begin, start))
        right = column(min(finish, end))
        for index in range(left, right + 1):
            lane[index] = char

    slots = 1 + max(
        (e.slot for e in entries if e.kind == "task"), default=0
    )
    master = [" "] * width
    commit = [" "] * width
    recovery = [" "] * width
    slaves = [[" "] * width for _ in range(slots)]

    for entry in entries:
        if entry.kind == "task":
            paint(master, entry.spawn, entry.close, "=")
            char = "#" if entry.committed else "x"
            paint(slaves[entry.slot], entry.start, entry.done, char)
            commit[column(entry.commit)] = "C"
        elif entry.kind == "recovery":
            paint(recovery, entry.start, entry.done, "r")

    lines = [
        f"cycles {start:.0f}..{end:.0f}  ({scale:.1f} cycles/cell)",
        f"{'master':>9} |{''.join(master)}|",
    ]
    for index, lane in enumerate(slaves):
        lines.append(f"{f'slave {index}':>9} |{''.join(lane)}|")
    lines.append(f"{'commit':>9} |{''.join(commit)}|")
    if any(cell != " " for cell in recovery):
        lines.append(f"{'recovery':>9} |{''.join(recovery)}|")
    return "\n".join(lines)


def utilization(breakdown: TimingBreakdown, n_slaves: int) -> float:
    """Fraction of slave-cycles spent executing tasks (busy / capacity)."""
    entries = [e for e in breakdown.schedule if e.kind == "task"]
    if not entries or breakdown.total_cycles <= 0:
        raise TimingError("utilization needs a schedule and nonzero cycles")
    busy = sum(e.done - e.start for e in entries)
    return busy / (breakdown.total_cycles * n_slaves)
