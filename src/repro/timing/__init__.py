"""Task-level timing model and baselines for the MSSP evaluation."""

# clock has no repro-internal imports; it must load first so that
# repro.mssp modules (imported transitively by simulator below) can
# resolve repro.timing.clock without re-entering this package.
from repro.timing.clock import Clock, CostModel, VirtualClock, WallClock
from repro.timing.simulator import (
    MsspTimingSimulator,
    ScheduleEntry,
    TimingBreakdown,
    baseline_cycles,
    records_from_events,
    simulate_mssp,
    speedup,
)
from repro.timing.timeline import render_timeline, utilization

__all__ = [
    "Clock",
    "CostModel",
    "VirtualClock",
    "WallClock",
    "MsspTimingSimulator",
    "ScheduleEntry",
    "TimingBreakdown",
    "baseline_cycles",
    "records_from_events",
    "simulate_mssp",
    "speedup",
    "render_timeline",
    "utilization",
]
