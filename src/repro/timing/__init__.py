"""Task-level timing model and baselines for the MSSP evaluation."""

from repro.timing.simulator import (
    MsspTimingSimulator,
    ScheduleEntry,
    TimingBreakdown,
    baseline_cycles,
    simulate_mssp,
    speedup,
)
from repro.timing.timeline import render_timeline, utilization

__all__ = [
    "MsspTimingSimulator",
    "ScheduleEntry",
    "TimingBreakdown",
    "baseline_cycles",
    "simulate_mssp",
    "speedup",
    "render_timeline",
    "utilization",
]
