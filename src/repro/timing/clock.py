"""The virtual-clock / cost-model seam.

Every layer that needs to tell time does it through a :class:`Clock`:

* :class:`WallClock` — real time (``time.perf_counter``), used by the
  live runtime and the serve scheduler.
* :class:`VirtualClock` — a settable simulated clock, advanced by the
  discrete-event engine in :mod:`repro.sim` and by the ``sim`` runtime
  backend.

A :class:`CostModel` prices the abstract operations of the MSSP
protocol (master distillation work, slave task execution, checkpoint
transfer, verify/commit, squash, recovery restart).  Two constructors
matter:

* :meth:`CostModel.from_timing` maps a :class:`repro.config.TimingConfig`
  onto the model, so the analytic simulator and the discrete-event
  replay price work identically (the agreement between the two is an
  acceptance test).
* :meth:`CostModel.calibrate` fits the slave-execution rate from
  *measured* per-task costs stamped onto ``task_executed`` /
  ``result_adopted`` events by the real executors, then scales the
  remaining latencies into the measured domain.  This grounds simulated
  time in real runs instead of guessed constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "WallClock",
    "VirtualClock",
    "CostModel",
]


@runtime_checkable
class Clock(Protocol):
    """Anything that can report the current time as a float."""

    def now(self) -> float:
        ...


class WallClock:
    """Real time.  ``now()`` is monotonic (``time.perf_counter``)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WallClock()"


class VirtualClock:
    """A simulated clock.

    Time only moves when something advances it — the discrete-event
    engine popping its heap, or the ``sim`` executor pricing a chunk.
    ``advance_to`` never moves backwards, so stamped event streams stay
    monotonic by construction.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now!r})"


@dataclass(frozen=True)
class CostModel:
    """Prices the abstract operations of one MSSP episode.

    Units are whatever the constructor used — cycles for
    :meth:`from_timing` (matching ``TimingConfig``), seconds for
    :meth:`calibrate` (matching measured wall time).  All consumers are
    unit-agnostic; only ratios and sums matter.
    """

    master_instr: float = 0.5     # master cycles per distilled instruction
    slave_instr: float = 1.0      # slave cycles per original instruction
    load: float = 0.0             # extra penalty per load (either side)
    dispatch: float = 30.0        # fork/spawn latency per task
    checkpoint_word: float = 0.0  # transfer cost per checkpoint word
    verify: float = 10.0          # in-order verify/commit occupancy
    squash: float = 60.0          # squash + master-state repair penalty
    restart: float = 30.0        # non-speculative recovery restart latency

    def master_time(self, n_instrs: int, n_loads: int = 0) -> float:
        """Master-side cost of distilling/forking one task."""
        return n_instrs * self.master_instr + n_loads * self.load

    def slave_time(self, n_instrs: int, n_loads: int = 0) -> float:
        """Slave-side cost of executing one task's original code."""
        return n_instrs * self.slave_instr + n_loads * self.load

    def transfer_time(self, checkpoint_words: int) -> float:
        """Cost of shipping one fork checkpoint to a slave."""
        return self.dispatch + checkpoint_words * self.checkpoint_word

    def recovery_time(self, n_instrs: int, n_loads: int = 0) -> float:
        """Cost of the master's non-speculative recovery run."""
        return self.restart + n_instrs * self.slave_instr + n_loads * self.load

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scale every latency (unit conversion)."""
        return replace(
            self,
            master_instr=self.master_instr * factor,
            slave_instr=self.slave_instr * factor,
            load=self.load * factor,
            dispatch=self.dispatch * factor,
            checkpoint_word=self.checkpoint_word * factor,
            verify=self.verify * factor,
            squash=self.squash * factor,
            restart=self.restart * factor,
        )

    @classmethod
    def from_timing(cls, config) -> "CostModel":
        """Build the model from a :class:`repro.config.TimingConfig`.

        The mapping is exact: an event replay priced with this model
        must agree with ``MsspTimingSimulator``'s analytic recurrence.
        """
        return cls(
            master_instr=config.master_cpi,
            slave_instr=config.slave_cpi,
            load=config.load_penalty,
            dispatch=config.spawn_latency,
            checkpoint_word=config.checkpoint_word_latency,
            verify=config.commit_latency,
            squash=config.squash_penalty,
            restart=config.restart_latency,
        )

    @classmethod
    def calibrate(
        cls,
        events: Iterable,
        base: Optional["CostModel"] = None,
    ) -> "CostModel":
        """Fit the model from measured per-task costs on a stamped trace.

        ``task_executed`` events carry the measured wall-seconds the
        chunk worker spent executing each task (``cost``) alongside the
        task's dynamic instruction count.  The ratio gives a measured
        seconds-per-instruction slave rate; the remaining latencies of
        ``base`` (default: the cycle-domain default model) are scaled by
        the same factor so the whole model lands in the seconds domain
        with its internal ratios preserved.

        Raises ``ValueError`` when the trace carries no measurable
        execution costs (e.g. it was captured before satellite
        instrumentation, or every cost rounded to zero).
        """
        base = base or cls()
        total_seconds = 0.0
        total_instrs = 0
        for event in events:
            if getattr(event, "kind", None) != "task_executed":
                continue
            cost = float(getattr(event, "cost", 0.0) or 0.0)
            task = getattr(event, "task", None)
            n_instrs = int(getattr(task, "n_instrs", 0) or 0)
            if cost > 0.0 and n_instrs > 0:
                total_seconds += cost
                total_instrs += n_instrs
        if total_instrs <= 0 or total_seconds <= 0.0:
            raise ValueError(
                "trace carries no measured task execution costs; "
                "capture it with an instrumented runtime"
            )
        measured_rate = total_seconds / total_instrs  # seconds / instr
        if base.slave_instr <= 0:
            raise ValueError("base model has a non-positive slave rate")
        return base.scaled(measured_rate / base.slave_instr)
