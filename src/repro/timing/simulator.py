"""Task-level timing model of the MSSP chip multiprocessor.

Replays the functional engine's trace — either an :class:`MsspResult`
or, since the virtual-clock refactor, a *stamped event stream* straight
off the EventBus (:meth:`MsspTimingSimulator.simulate_events`) — onto a
resource model (which decides *how long it took*).  All pricing goes
through one :class:`~repro.timing.clock.CostModel`
(:meth:`CostModel.from_timing`), the same model the discrete-event
cluster replay in :mod:`repro.sim` uses; the two agreeing at matching
parameters is an acceptance test.

The resource model:

* the **master** retires distilled instructions at ``master_cpi`` and
  stalls when no slave is free to receive the next checkpoint;
* each **slave** receives a checkpoint ``spawn_latency`` after its fork,
  retires original instructions at ``slave_cpi``, and cannot complete
  before its closing fork (its end pc is defined by the next fork);
* the **verify/commit unit** processes completed tasks in order, one per
  ``commit_latency``;
* a **squash** costs ``squash_penalty`` after the failing verify, then a
  recovery episode runs serially on one slave (``restart_latency`` to
  seed it plus its instructions), and the next speculative episode's
  master resumes when recovery completes.

Fidelity note (repro band 2/5): this is deliberately a latency/through-
put model, not a pipeline simulator.  It preserves the quantities the
evaluation reports — who is the bottleneck, how speedup scales with
slave count, task size and interconnect latency — and its invariants
(monotonicity in resources and latencies) are property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import BaselineConfig, TimingConfig
from repro.errors import TimingError
from repro.mssp.engine import MsspResult
from repro.mssp.trace import (
    MasterFailureRecord,
    RecoveryRecord,
    TaskAttemptRecord,
    TraceRecord,
    TraceRecorder,
)
from repro.timing.clock import CostModel


def records_from_events(events: Iterable) -> List[TraceRecord]:
    """Rebuild the trace-record stream from a captured event stream.

    Feeds the events through a :class:`~repro.mssp.trace.TraceRecorder`
    — the exact subscriber the engine uses — so a stamped ``EventLog``
    (live or imported from JSONL) replays into the same records an
    :class:`MsspResult` would carry.
    """
    recorder = TraceRecorder()
    for event in events:
        recorder(event)
    return recorder.records


@dataclass(frozen=True)
class ScheduleEntry:
    """When one trace record occupied the machine's resources.

    ``kind`` is ``"task"``, ``"recovery"`` or ``"master-failure"``.
    For tasks: ``spawn`` is when the checkpoint left the master,
    ``close`` when the master's delimiting fork retired, ``start``/
    ``done`` the slave's execution window on slave ``slot``, and
    ``commit`` when the verify/commit unit finished with it.
    """

    kind: str
    tid: int
    slot: int
    spawn: float
    close: float
    start: float
    done: float
    commit: float
    committed: bool


@dataclass
class TimingBreakdown:
    """Cycle accounting of one simulated MSSP run."""

    total_cycles: float = 0.0
    #: Tasks whose completion was limited by the master's closing fork.
    master_bound_tasks: int = 0
    #: Tasks whose completion was limited by slave execution.
    slave_bound_tasks: int = 0
    #: Tasks that waited on commit serialization.
    commit_bound_tasks: int = 0
    #: Cycles spent in squash penalties + recovery reseeding.
    squash_overhead_cycles: float = 0.0
    #: Cycles of serial non-speculative recovery execution.
    recovery_cycles: float = 0.0
    #: Cycles the master spent stalled waiting for a free slave.
    master_stall_cycles: float = 0.0
    #: Slave cycles burnt on tasks that were later squashed.
    wasted_slave_cycles: float = 0.0
    committed_tasks: int = 0
    squashed_tasks: int = 0
    #: Per-record schedule (populated when simulate(..., schedule=True)).
    schedule: List[ScheduleEntry] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return {
            "total_cycles": self.total_cycles,
            "master_bound_tasks": float(self.master_bound_tasks),
            "slave_bound_tasks": float(self.slave_bound_tasks),
            "commit_bound_tasks": float(self.commit_bound_tasks),
            "squash_overhead_cycles": self.squash_overhead_cycles,
            "recovery_cycles": self.recovery_cycles,
            "master_stall_cycles": self.master_stall_cycles,
            "wasted_slave_cycles": self.wasted_slave_cycles,
        }


class MsspTimingSimulator:
    """Analytic replay of an MSSP trace onto the machine resources.

    All work is priced through one :class:`CostModel` derived from the
    :class:`TimingConfig` — the exact model the discrete-event cluster
    replay (:class:`repro.sim.cluster.ClusterSim`) uses, so the two
    simulators can be cross-validated at matching parameters.
    """

    def __init__(self, config: Optional[TimingConfig] = None):
        self.config = config or TimingConfig()
        self.cost = CostModel.from_timing(self.config)

    def simulate(
        self, result: MsspResult, schedule: bool = False
    ) -> TimingBreakdown:
        """Return the cycle accounting of ``result``'s trace.

        With ``schedule=True`` the breakdown also carries a per-record
        :class:`ScheduleEntry` list (for timeline rendering/debugging).
        """
        return self.simulate_records(result.records, schedule=schedule)

    def simulate_events(
        self, events: Iterable, schedule: bool = False
    ) -> TimingBreakdown:
        """Cycle accounting of a captured (stamped) event stream.

        The stream — a live ``EventLog`` or one imported from JSONL —
        is reduced to its trace records with :func:`records_from_events`
        and replayed exactly like an :class:`MsspResult`, so the timing
        layer consumes the EventBus seam directly.
        """
        return self.simulate_records(
            records_from_events(events), schedule=schedule
        )

    def simulate_records(
        self, records: Sequence[TraceRecord], schedule: bool = False
    ) -> TimingBreakdown:
        cfg = self.config
        cost = self.cost
        breakdown = TimingBreakdown()
        slaves: List[float] = [0.0] * cfg.n_slaves
        master_clock = 0.0
        last_commit = 0.0
        finish = 0.0
        # Commit times of recent tasks, for checkpoint-buffer backpressure.
        commit_history: List[float] = []

        for record in records:
            if isinstance(record, TaskAttemptRecord):
                slot = min(range(len(slaves)), key=slaves.__getitem__)
                spawn_ready = max(master_clock, slaves[slot])
                if (
                    cfg.max_inflight is not None
                    and len(commit_history) >= cfg.max_inflight
                ):
                    # The master cannot open a new task until the task
                    # max_inflight positions back has left the buffer.
                    spawn_ready = max(
                        spawn_ready, commit_history[-cfg.max_inflight]
                    )
                breakdown.master_stall_cycles += spawn_ready - master_clock
                close = spawn_ready + cost.master_time(
                    record.master_instrs, record.master_loads
                )
                transfer = cost.transfer_time(record.checkpoint_words)
                slave_start = spawn_ready + transfer
                slave_done = slave_start + cost.slave_time(
                    record.n_instrs, record.n_loads
                )
                completion = max(slave_done, close)
                slaves[slot] = completion
                master_clock = close
                verify_start = max(completion, last_commit)
                commit_done = verify_start + cost.verify
                last_commit = commit_done
                if cfg.max_inflight is not None:
                    commit_history.append(commit_done)
                    del commit_history[: -cfg.max_inflight]
                finish = max(finish, commit_done)
                self._classify(
                    breakdown, close, slave_done, verify_start, completion
                )
                if schedule:
                    breakdown.schedule.append(
                        ScheduleEntry(
                            kind="task", tid=record.tid, slot=slot,
                            spawn=spawn_ready, close=close,
                            start=slave_start, done=slave_done,
                            commit=commit_done, committed=record.committed,
                        )
                    )
                if record.committed:
                    breakdown.committed_tasks += 1
                else:
                    breakdown.squashed_tasks += 1
                    breakdown.wasted_slave_cycles += slave_done - slave_start
                    squash_done = commit_done + cost.squash
                    breakdown.squash_overhead_cycles += cost.squash
                    master_clock = squash_done
                    last_commit = squash_done
                    slaves = [min(s, squash_done) for s in slaves]
                    commit_history.clear()  # squash drains the buffer
                    finish = max(finish, squash_done)
            elif isinstance(record, MasterFailureRecord):
                wasted = cost.master_time(record.master_instrs)
                fail_time = master_clock + wasted + cost.squash
                breakdown.squash_overhead_cycles += cost.squash
                master_clock = fail_time
                last_commit = max(last_commit, fail_time)
                slaves = [min(s, fail_time) for s in slaves]
                commit_history.clear()
                finish = max(finish, fail_time)
            elif isinstance(record, RecoveryRecord):
                start = max(master_clock, last_commit) + cost.restart
                breakdown.squash_overhead_cycles += cost.restart
                work = cost.slave_time(record.n_instrs, record.n_loads)
                done = start + work
                breakdown.recovery_cycles += work
                if schedule:
                    breakdown.schedule.append(
                        ScheduleEntry(
                            kind="recovery", tid=-1, slot=0,
                            spawn=start, close=start, start=start,
                            done=done, commit=done, committed=True,
                        )
                    )
                master_clock = done
                last_commit = done
                slaves = [min(s, done) for s in slaves]
                commit_history.clear()
                finish = max(finish, done)
            else:  # pragma: no cover - future record kinds
                raise TimingError(f"unknown trace record {record!r}")

        breakdown.total_cycles = finish
        return breakdown

    @staticmethod
    def _classify(
        breakdown: TimingBreakdown,
        close: float,
        slave_done: float,
        verify_start: float,
        completion: float,
    ) -> None:
        if verify_start > completion:
            breakdown.commit_bound_tasks += 1
        elif close >= slave_done:
            breakdown.master_bound_tasks += 1
        else:
            breakdown.slave_bound_tasks += 1


def baseline_cycles(
    total_instrs: int, baseline: BaselineConfig, total_loads: int = 0
) -> float:
    """Cycles a non-MSSP reference core needs for the same work."""
    return total_instrs * baseline.cpi + total_loads * baseline.load_penalty


def simulate_mssp(
    result: MsspResult,
    config: Optional[TimingConfig] = None,
    schedule: bool = False,
) -> TimingBreakdown:
    """Convenience wrapper around :class:`MsspTimingSimulator`."""
    return MsspTimingSimulator(config).simulate(result, schedule=schedule)


def speedup(
    result: MsspResult,
    config: Optional[TimingConfig] = None,
    baseline: Optional[BaselineConfig] = None,
) -> float:
    """MSSP speedup over a baseline core on the same program."""
    from repro.config import SEQUENTIAL_BASELINE

    baseline = baseline or SEQUENTIAL_BASELINE
    breakdown = simulate_mssp(result, config)
    if breakdown.total_cycles <= 0:
        raise TimingError("timing produced non-positive cycle count")
    return baseline_cycles(
        result.counters.total_instrs, baseline
    ) / breakdown.total_cycles
