"""The ``sim`` runtime backend: simulated slaves on a virtual clock.

:class:`SimExecutor` plugs into the *identical*
:class:`~repro.mssp.runtime.pipeline.TaskPipeline` state machine the
real backends use.  Functionally it mirrors :class:`ThreadExecutor`
chunk-for-chunk — episode-start memory snapshot, chunk-local chained
overlay, shadow tasks, the same :func:`~repro.mssp.task.wire_result`
wire — executed synchronously at submit, which is what makes a ``sim``
run's :class:`~repro.mssp.engine.MsspResult` bit-identical to the eager
engine's (an acceptance test).

Time is where it differs: instead of measuring wall seconds, it *prices*
each chunk with the engine's :class:`~repro.timing.clock.CostModel`
(dispatch + checkpoint transfer, then per-task execution) onto
per-slot virtual free times, and advances the engine's
:class:`~repro.timing.clock.VirtualClock` to each chunk's completion
when the pipeline consumes its handle.  Every event the engine emits is
therefore stamped with simulated time — the stream the SIM001 lint
check audits and the cluster replay consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.machine.flatmem import as_dict
from repro.machine.state import ArchState
from repro.mssp.runtime.events import EventBus
from repro.mssp.runtime.executors import ChunkHandle, SlaveExecutor
from repro.mssp.runtime.procpool import _ChainMemory
from repro.mssp.slave import execute_task
from repro.mssp.task import Task, wire_result
from repro.timing.clock import CostModel

__all__ = ["SimExecutor"]


class SimExecutor(SlaveExecutor):
    """Simulated slaves: real execution, virtual time."""

    name = "sim"
    pipelined = True

    def __init__(self, core, events: EventBus):
        super().__init__(core, events)
        # The engine's clock travels on the bus; a VirtualClock when the
        # engine was built for the sim runtime.
        self.clock = events.clock
        self.cost: CostModel = (
            getattr(core, "cost_model", None) or CostModel()
        )
        self._base: Dict[int, int] = {}
        #: Virtual time at which each simulated slave frees up.
        self._free: List[float] = [0.0] * self.workers

    @property
    def workers(self) -> int:
        return self.core.config.num_slaves

    def begin_episode(self, arch: ArchState) -> None:
        self._base = as_dict(arch.mem)
        if len(self._free) != self.workers:
            self._free = [0.0] * self.workers

    def submit_chunk(self, batch) -> Optional[ChunkHandle]:
        core = self.core
        cost = self.cost
        clock = self.clock
        chain = _ChainMemory(self._base)
        # Dispatch to the earliest-free simulated slave.
        slot = min(range(len(self._free)), key=self._free.__getitem__)
        t = max(clock.now(), self._free[slot])
        results: List[tuple] = []
        for entry in batch:
            task = entry.task
            shadow = Task(
                tid=task.tid, start_pc=task.start_pc,
                checkpoint=task.checkpoint, end_pc=task.end_pc,
                end_arrivals=task.end_arrivals,
            )
            t += cost.transfer_time(len(task.checkpoint))
            execute_task(
                core.original, shadow, chain,
                core.config.max_task_instrs,
                regions=core.regions, tier=core.exec_tier,
            )
            priced = cost.slave_time(shadow.n_instrs, shadow.n_loads)
            shadow.exec_seconds = priced
            t += priced
            results.append(wire_result(shadow))
            if shadow.faulted or shadow.overrun or shadow.protected_access:
                break
            chain.apply(shadow.live_out_mem)
        completion = t
        self._free[slot] = completion

        def consume() -> List[tuple]:
            # The pipeline blocks on the chunk: virtual time advances to
            # its completion (never backwards — later chunks on other
            # slots may already have pushed the clock past it).
            advance_to = getattr(clock, "advance_to", None)
            if advance_to is not None:
                advance_to(completion)
            return results

        return ChunkHandle(consume)
