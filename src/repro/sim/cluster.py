"""The MSSP cluster as a discrete-event model: master, slaves, verify.

:class:`ClusterSim` replays a captured trace-record stream (from a live
run's ``EventLog`` or a JSONL trace file) under a simulated cluster
configuration.  The actors:

* the **master** walks the record stream: for each task attempt it
  acquires an in-flight token (checkpoint-buffer backpressure), waits
  for the earliest-free slave, retires the task's distilled instructions
  (the closing fork), and — because the trace only contains *judged*
  attempts — blocks at squashed records until the squash resolves, and
  at failure/recovery records until verification drains;
* each dispatched task runs as a **worker** actor: checkpoint transfer
  over the interconnect (optionally through a bounded set of link
  channels — transfer contention), then execution at the slot's relative
  speed, paused across any configured slave outage on that slot;
* the **verify unit** is a chain of actors (one per task) serialized by
  the previous task's commit event: in-order verify/commit, squash
  penalties, and the cycle accounting.

With no contention, homogeneous slaves and no failures, the model is
*provably* the same recurrence as the analytic
:class:`~repro.timing.simulator.MsspTimingSimulator` — the pool resumes
the master at ``max(master_clock, min slave free time, commit gate)``,
which is exactly the analytic ``spawn_ready`` — and the agreement tests
pin the two together numerically.  The knobs the analytic model cannot
express (interconnect latency, link contention, heterogeneous speeds,
mid-episode slave failure/restart) are what the discrete-event engine
buys.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TimingError
from repro.mssp.trace import (
    MasterFailureRecord,
    RecoveryRecord,
    TaskAttemptRecord,
    TraceRecord,
)
from repro.timing.clock import CostModel
from repro.timing.simulator import (
    MsspTimingSimulator,
    ScheduleEntry,
    TimingBreakdown,
    records_from_events,
)
from repro.sim.core import Acquire, Hold, Resource, SimEvent, Simulator, Wait

__all__ = ["ClusterConfig", "ClusterSim", "SlaveFailure"]


@dataclass(frozen=True)
class SlaveFailure:
    """One slave outage: ``slot`` is down for ``[at, at + downtime)``.

    Execution in progress on the slot pauses across the outage and
    resumes where it left off (restart-with-checkpoint); work dispatched
    during the outage waits for the restart.
    """

    slot: int
    at: float
    downtime: float

    @property
    def end(self) -> float:
        return self.at + self.downtime


@dataclass(frozen=True)
class ClusterConfig:
    """One simulated cluster: resources, latencies, and degradations."""

    n_slaves: int = 8
    cost: CostModel = field(default_factory=CostModel)
    #: Checkpoint-buffer depth (None = unbounded): a task's fork waits
    #: until the task this-many positions back has committed.
    max_inflight: Optional[int] = None
    #: Extra one-way latency added to every checkpoint transfer.
    interconnect_latency: float = 0.0
    #: Concurrent checkpoint transfers the interconnect carries
    #: (0 = unlimited; a bounded value models transfer contention).
    link_channels: int = 0
    #: Relative execution speed per slot (missing slots default to 1.0;
    #: 0.5 = half speed).  Heterogeneous clusters slow some slots down.
    slave_speeds: Tuple[float, ...] = ()
    #: Mid-episode slave outages.
    failures: Tuple[SlaveFailure, ...] = ()

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ValueError("n_slaves must be positive")
        if self.link_channels < 0:
            raise ValueError("link_channels must be >= 0 (0 = unlimited)")
        if any(s <= 0 for s in self.slave_speeds):
            raise ValueError("slave speeds must be positive")
        if any(
            f.slot < 0 or f.slot >= self.n_slaves or f.downtime < 0
            for f in self.failures
        ):
            raise ValueError("failure outside the cluster's slots")

    def speed(self, slot: int) -> float:
        if slot < len(self.slave_speeds):
            return self.slave_speeds[slot]
        return 1.0

    @classmethod
    def from_timing(cls, timing, **overrides) -> "ClusterConfig":
        """The cluster matching a :class:`~repro.config.TimingConfig` —
        the configuration under which :class:`ClusterSim` and the
        analytic simulator must agree."""
        params = dict(
            n_slaves=timing.n_slaves,
            cost=CostModel.from_timing(timing),
            max_inflight=timing.max_inflight,
        )
        params.update(overrides)
        return cls(**params)


class _SlavePool:
    """Idle slots as a ``(freed_at, slot)`` min-heap; FIFO waiters.

    Popping the earliest-freed idle slot is what makes the pool
    equivalent to the analytic model's ``argmin`` over slave free times
    (busy slots always free later than any idle slot's ``freed_at``).
    """

    __slots__ = ("_idle", "_waiters")

    def __init__(self, n_slaves: int):
        self._idle: List[Tuple[float, int]] = [
            (0.0, slot) for slot in range(n_slaves)
        ]
        heapq.heapify(self._idle)
        self._waiters: Deque[SimEvent] = deque()

    def request(self) -> SimEvent:
        """An event that fires (with the slot) once a slave is free."""
        event = SimEvent()
        if self._idle:
            event.fire(heapq.heappop(self._idle)[1])
        else:
            self._waiters.append(event)
        return event

    def release(self, slot: int, freed_at: float) -> None:
        if self._waiters:
            self._waiters.popleft().fire(slot)
        else:
            heapq.heappush(self._idle, (freed_at, slot))


class ClusterSim:
    """Replay trace records through the discrete-event cluster model."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        by_slot: Dict[int, List[SlaveFailure]] = {}
        for failure in self.config.failures:
            by_slot.setdefault(failure.slot, []).append(failure)
        self._failures = {
            slot: sorted(outages, key=lambda f: f.at)
            for slot, outages in by_slot.items()
        }

    # -- public API ---------------------------------------------------------

    def replay(
        self, records: Sequence[TraceRecord], schedule: bool = False
    ) -> TimingBreakdown:
        """Cycle accounting of ``records`` under this cluster."""
        cfg = self.config
        cost = cfg.cost
        sim = Simulator()
        breakdown = TimingBreakdown()
        pool = _SlavePool(cfg.n_slaves)
        link = Resource(cfg.link_channels) if cfg.link_channels else None
        inflight = (
            Resource(cfg.max_inflight) if cfg.max_inflight else None
        )
        finish = [0.0]

        def note_finish(t: float) -> None:
            if t > finish[0]:
                finish[0] = t

        def worker(record, slot, close, completion_ev):
            # Checkpoint transfer starts at spawn (the master's closing
            # fork overlaps it); contention queues on the link channels.
            transfer = (
                cost.transfer_time(record.checkpoint_words)
                + cfg.interconnect_latency
            )
            if link is not None:
                yield Acquire(link)
                yield Hold(transfer)
                link.release()
            else:
                yield Hold(transfer)
            slave_start = sim.now
            work = (
                cost.slave_time(record.n_instrs, record.n_loads)
                / cfg.speed(slot)
            )
            yield Hold(self._outage_done(slot, slave_start, work)
                       - slave_start)
            slave_done = sim.now
            # A task cannot complete before its closing fork defined it.
            if close > slave_done:
                yield Hold(close - slave_done)
            completion = sim.now
            pool.release(slot, completion)
            completion_ev.fire((slave_start, slave_done, completion))

        def verify(record, slot, close, prev_ev, completion_ev,
                   chain_ev, squash_ev):
            # Serialize on the previous task's commit (in-order verify),
            # then on this task's completion; waits on fired events do
            # not advance time, so resumption lands at
            # max(completion, last_commit) — the analytic verify_start.
            yield Wait(prev_ev)
            payload = yield Wait(completion_ev)
            slave_start, slave_done, completion = payload
            verify_start = sim.now
            yield Hold(cost.verify)
            commit_done = sim.now
            note_finish(commit_done)
            MsspTimingSimulator._classify(
                breakdown, close, slave_done, verify_start, completion
            )
            if schedule:
                breakdown.schedule.append(
                    ScheduleEntry(
                        kind="task", tid=record.tid, slot=slot,
                        spawn=close - cost.master_time(
                            record.master_instrs, record.master_loads
                        ),
                        close=close, start=slave_start, done=slave_done,
                        commit=commit_done, committed=record.committed,
                    )
                )
            if record.committed:
                breakdown.committed_tasks += 1
                if inflight is not None:
                    inflight.release()
                chain_ev.fire(commit_done)
            else:
                breakdown.squashed_tasks += 1
                breakdown.wasted_slave_cycles += slave_done - slave_start
                yield Hold(cost.squash)
                squash_done = sim.now
                breakdown.squash_overhead_cycles += cost.squash
                note_finish(squash_done)
                if inflight is not None:
                    inflight.release()
                chain_ev.fire(squash_done)
                squash_ev.fire(squash_done)

        def master():
            # Chain head: "time zero has committed".
            prev_ev = SimEvent()
            prev_ev.fire(0.0)
            for record in records:
                if isinstance(record, TaskAttemptRecord):
                    t0 = sim.now
                    if inflight is not None:
                        yield Acquire(inflight)
                    slot = yield Wait(pool.request())
                    spawn_ready = sim.now
                    breakdown.master_stall_cycles += spawn_ready - t0
                    close = spawn_ready + cost.master_time(
                        record.master_instrs, record.master_loads
                    )
                    completion_ev = SimEvent()
                    chain_ev = SimEvent()
                    squash_ev = SimEvent()
                    sim.process(
                        worker(record, slot, close, completion_ev)
                    )
                    sim.process(
                        verify(record, slot, close, prev_ev,
                               completion_ev, chain_ev, squash_ev)
                    )
                    prev_ev = chain_ev
                    yield Hold(close - sim.now)
                    if not record.committed:
                        # The trace holds only judged attempts: nothing
                        # past a squash was in flight, so the master
                        # resumes when the squash resolves.
                        yield Wait(squash_ev)
                elif isinstance(record, MasterFailureRecord):
                    yield Hold(
                        cost.master_time(record.master_instrs)
                        + cost.squash
                    )
                    breakdown.squash_overhead_cycles += cost.squash
                    note_finish(sim.now)
                    # Verify-drained barrier: recovery cannot reseed
                    # before outstanding commits land.
                    yield Wait(prev_ev)
                elif isinstance(record, RecoveryRecord):
                    yield Wait(prev_ev)
                    breakdown.squash_overhead_cycles += cost.restart
                    work = cost.slave_time(record.n_instrs, record.n_loads)
                    start = sim.now + cost.restart
                    yield Hold(cost.restart + work)
                    done = sim.now
                    breakdown.recovery_cycles += work
                    note_finish(done)
                    if schedule:
                        breakdown.schedule.append(
                            ScheduleEntry(
                                kind="recovery", tid=-1, slot=0,
                                spawn=start, close=start, start=start,
                                done=done, commit=done, committed=True,
                            )
                        )
                    chain_ev = SimEvent()
                    chain_ev.fire(done)
                    prev_ev = chain_ev
                else:  # pragma: no cover - future record kinds
                    raise TimingError(f"unknown trace record {record!r}")

        sim.process(master())
        sim.run()
        breakdown.total_cycles = finish[0]
        return breakdown

    def replay_events(
        self, events: Iterable, schedule: bool = False
    ) -> TimingBreakdown:
        """Replay a captured (stamped) event stream directly."""
        return self.replay(records_from_events(events), schedule=schedule)

    # -- internals ----------------------------------------------------------

    def _outage_done(self, slot: int, start: float, work: float) -> float:
        """Completion time of ``work`` starting at ``start`` on ``slot``,
        paused across every configured outage window on that slot."""
        t = start
        remaining = work
        for failure in self._failures.get(slot, ()):
            if failure.end <= t:
                continue
            if failure.at <= t:
                t = failure.end
            elif failure.at < t + remaining:
                remaining -= failure.at - t
                t = failure.end
            else:
                break
        return t + remaining
