"""JSONL serialization of captured EventBus streams (``repro trace``).

One event per line: ``{"kind", "at", "actor", ...constructor fields}``.
Trace records (committed/squashed/failure/recovery payloads) round-trip
as real :mod:`repro.mssp.trace` dataclasses, so an imported stream feeds
:func:`~repro.timing.simulator.records_from_events`, the analytic
simulator, and the cluster replay exactly like a live ``EventLog``.
Task objects on ``task_executed`` events are exported as a sketch of
their measurable fields (tid, instruction/load counts, measured
execution seconds) — enough for
:meth:`~repro.timing.clock.CostModel.calibrate` — not the full
live-in/live-out payload, which can be arbitrarily large and is already
summarized by the task's trace record.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import IO, Iterable, List, Union

from repro.mssp.runtime.events import RuntimeEvent
from repro.mssp.trace import (
    MasterFailureRecord,
    RecoveryRecord,
    TaskAttemptRecord,
)

__all__ = ["TaskSketch", "export_events", "import_events"]

#: kind -> event class, for rebuilding events on import.
EVENT_TYPES = {cls.kind: cls for cls in RuntimeEvent.__subclasses__()}

_RECORD_TAGS = {
    TaskAttemptRecord: "task",
    RecoveryRecord: "recovery",
    MasterFailureRecord: "master-failure",
}
_RECORD_TYPES = {tag: cls for cls, tag in _RECORD_TAGS.items()}


@dataclass
class TaskSketch:
    """The measurable shadow of a task on an imported trace."""

    tid: int = -1
    n_instrs: int = 0
    n_loads: int = 0
    exec_seconds: float = 0.0


def _encode_value(value):
    cls = type(value)
    if cls in _RECORD_TAGS:
        encoded = dataclasses.asdict(value)
        encoded["__record__"] = _RECORD_TAGS[cls]
        return encoded
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return value
    # Anything else (the live Task on task_executed) exports as a sketch.
    return {
        "__task__": True,
        "tid": int(getattr(value, "tid", -1)),
        "n_instrs": int(getattr(value, "n_instrs", 0)),
        "n_loads": int(getattr(value, "n_loads", 0)),
        "exec_seconds": float(getattr(value, "exec_seconds", 0.0)),
    }


def _decode_value(value):
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        if value.get("__task__"):
            return TaskSketch(
                tid=value.get("tid", -1),
                n_instrs=value.get("n_instrs", 0),
                n_loads=value.get("n_loads", 0),
                exec_seconds=value.get("exec_seconds", 0.0),
            )
        tag = value.get("__record__")
        if tag is not None:
            record_cls = _RECORD_TYPES.get(tag)
            if record_cls is None:
                raise ValueError(f"unknown trace record tag {tag!r}")
            fields = {
                k: _decode_value(v)
                for k, v in value.items()
                if k != "__record__"
            }
            return record_cls(**fields)
    return value


def event_to_dict(event: RuntimeEvent) -> dict:
    """One event as a JSON-ready dict (kind + stamps + fields)."""
    encoded = {"kind": event.kind, "at": event.at, "actor": event.actor}
    for f in dataclasses.fields(event):
        encoded[f.name] = _encode_value(getattr(event, f.name))
    return encoded


def event_from_dict(data: dict) -> RuntimeEvent:
    """Rebuild (and re-stamp) one event from its exported dict."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r} in trace")
    at = data.pop("at", 0.0)
    actor = data.pop("actor", "")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown fields {sorted(unknown)} for event kind {kind!r}"
        )
    event = cls(**{k: _decode_value(v) for k, v in data.items()})
    object.__setattr__(event, "at", at)
    object.__setattr__(event, "actor", actor)
    return event


def export_events(
    events: Iterable[RuntimeEvent], out: Union[str, IO[str]]
) -> int:
    """Write ``events`` as JSONL; returns the number written."""
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as handle:
            return export_events(events, handle)
    count = 0
    for event in events:
        json.dump(event_to_dict(event), out, sort_keys=True)
        out.write("\n")
        count += 1
    return count


def import_events(source: Union[str, IO[str]]) -> List[RuntimeEvent]:
    """Read a JSONL trace back into stamped events."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return import_events(handle)
    events: List[RuntimeEvent] = []
    for line_no, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"trace line {line_no} is not valid JSON: {exc}"
            ) from None
        events.append(event_from_dict(data))
    return events
