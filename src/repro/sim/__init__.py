"""Discrete-event cluster simulation for MSSP at scales this host can't run.

The package replays *captured* EventBus traces (real runs, real measured
task costs) under simulated cluster configurations — 8/16/64 slaves,
interconnect latency and checkpoint-transfer contention, heterogeneous
slave speeds, mid-episode slave failure/restart:

* :mod:`repro.sim.core` — a minimal process-style discrete-event engine
  (event heap, generator actors, resources).
* :mod:`repro.sim.cluster` — the MSSP cluster model: a master actor
  dispatching trace records to slave actors through an interconnect,
  with an in-order verify unit; cross-validated against the analytic
  :class:`~repro.timing.simulator.MsspTimingSimulator` at matching
  parameters.
* :mod:`repro.sim.executor` — the ``sim`` runtime backend: the real
  :class:`~repro.mssp.runtime.pipeline.TaskPipeline` drives simulated
  slaves on a :class:`~repro.timing.clock.VirtualClock`, bit-identical
  to the eager engine.
* :mod:`repro.sim.tracefile` — JSONL export/import of captured
  ``EventLog`` streams (``repro trace``).
* :mod:`repro.sim.bench` — the ``repro sim`` sweep: speedup curves over
  slave counts plus contention/heterogeneity/failure scenarios, written
  to ``BENCH_summary.json`` as the ``sim_bench`` section.
"""

from repro.sim.cluster import ClusterConfig, ClusterSim, SlaveFailure
from repro.sim.core import (
    Acquire,
    Hold,
    Process,
    Resource,
    SimEvent,
    Simulator,
    Wait,
)
from repro.sim.executor import SimExecutor
from repro.sim.tracefile import export_events, import_events

__all__ = [
    "Acquire",
    "ClusterConfig",
    "ClusterSim",
    "Hold",
    "Process",
    "Resource",
    "SimEvent",
    "SimExecutor",
    "Simulator",
    "SlaveFailure",
    "Wait",
    "export_events",
    "import_events",
]
