"""A minimal process-style discrete-event simulation engine.

The SimPy shape without the dependency: actors are plain generators
that ``yield`` scheduling requests to the :class:`Simulator`:

* ``yield Hold(dt)`` — resume ``dt`` simulated time later;
* ``yield Wait(event)`` — resume when the :class:`SimEvent` fires (an
  already-fired event resumes the actor without advancing time), the
  event's value is sent back into the generator;
* ``yield Acquire(resource)`` — resume once one unit of the
  :class:`Resource` is granted (FIFO).

The simulator is a single heap of ``(time, seq, fn)`` callbacks; ``seq``
breaks ties in schedule order, which keeps runs deterministic — a
property the replay tests rely on.  No wall time, no threads, no
randomness: everything the model does is a pure function of its inputs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

__all__ = [
    "Acquire",
    "Hold",
    "Process",
    "Resource",
    "SimEvent",
    "Simulator",
    "Wait",
]


class Hold:
    """Scheduling request: advance this actor by ``dt`` simulated time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"cannot hold for negative time {dt!r}")
        self.dt = dt


class Wait:
    """Scheduling request: resume when ``event`` fires."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event


class Acquire:
    """Scheduling request: resume once ``resource`` grants one unit."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource


class SimEvent:
    """A one-shot level-triggered event carrying an optional value.

    Actors waiting before the fire are resumed at fire time; actors that
    wait after the fire resume without advancing time.  Both receive
    ``value``.
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("SimEvent fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume()


class Resource:
    """A counting resource with FIFO granting (capacity ≥ 1 units)."""

    __slots__ = ("capacity", "in_use", "_queue")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.capacity = capacity
        self.in_use = 0
        self._queue: Deque[Callable[[], None]] = deque()

    def _try_acquire(self, resume: Callable[[], None]) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            resume()
        else:
            self._queue.append(resume)

    def release(self) -> None:
        """Free one unit; the longest-waiting acquirer (if any) gets it."""
        if self._queue:
            # The unit transfers straight to the next waiter.
            self._queue.popleft()()
        else:
            if self.in_use <= 0:
                raise RuntimeError("release without a matching acquire")
            self.in_use -= 1


class Process:
    """One running actor: a generator stepped by the simulator."""

    __slots__ = ("sim", "_gen", "finished")

    def __init__(self, sim: "Simulator", gen: Generator):
        self.sim = sim
        self._gen = gen
        #: Fires (with the generator's return value) when the actor ends.
        self.finished = SimEvent()

    def _step(self, send_value: Any = None) -> None:
        try:
            request = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished.fire(stop.value)
            return
        sim = self.sim
        if isinstance(request, Hold):
            sim.schedule(request.dt, self._step)
        elif isinstance(request, Wait):
            event = request.event
            if event.fired:
                sim.schedule(0.0, lambda: self._step(event.value))
            else:
                event._waiters.append(
                    lambda: sim.schedule(
                        0.0, lambda: self._step(event.value)
                    )
                )
        elif isinstance(request, Acquire):
            request.resource._try_acquire(
                lambda: sim.schedule(0.0, self._step)
            )
        else:
            raise TypeError(
                f"actor yielded {request!r}; expected Hold/Wait/Acquire"
            )


class Simulator:
    """The event heap: schedule callbacks, spawn actors, run to empty."""

    __slots__ = ("now", "_heap", "_seq")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay!r} into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def process(self, gen: Generator) -> Process:
        """Spawn an actor; its first step runs at the current time."""
        proc = Process(self, gen)
        self.schedule(0.0, proc._step)
        return proc

    def run(self, until: Optional[float] = None) -> float:
        """Drain the heap (or stop once ``until`` is reached); returns
        the final simulated time."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            at, _, fn = heapq.heappop(self._heap)
            self.now = at
            fn()
        return self.now
