"""The ``repro sim`` sweep: speedup curves from replayed traces.

Workflow (one call to :func:`run_sim_bench`):

1. run the workload on the real (eager) engine with an ``EventLog``
   subscribed — the captured, clock-stamped trace;
2. run the identical workload on the ``sim`` runtime and check the
   functional result is bit-identical to the real engine's;
3. replay the captured trace through the discrete-event cluster at each
   requested slave count, cross-checking every point against the
   analytic :class:`~repro.timing.simulator.MsspTimingSimulator` at
   matching parameters;
4. replay scenario configurations no analytic model covers: transfer
   contention on a bounded interconnect, heterogeneous slave speeds,
   and a mid-episode slave failure/restart.

The returned dict is the ``sim_bench`` section of
``BENCH_summary.json``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.config import (
    SEQUENTIAL_BASELINE,
    MsspConfig,
    TimingConfig,
)
from repro.mssp.engine import create_engine
from repro.mssp.runtime.events import EventLog
from repro.mssp.trace import TaskAttemptRecord
from repro.timing.simulator import (
    MsspTimingSimulator,
    baseline_cycles,
    records_from_events,
)
from repro.sim.cluster import ClusterConfig, ClusterSim, SlaveFailure

__all__ = ["run_sim_bench", "AGREEMENT_TOLERANCE"]

#: Maximum relative disagreement tolerated between the discrete-event
#: replay and the analytic simulator at matching parameters.  The two
#: implement the same recurrence, so observed disagreement is float
#: noise; the tolerance is slack for accumulation order.
AGREEMENT_TOLERANCE = 1e-6


def _relative_gap(a: float, b: float) -> float:
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) / scale


def _identical(eager, sim) -> bool:
    return (
        sim.counters == eager.counters
        and sim.halted == eager.halted
        and sim.records == eager.records
        and sim.final_state.pc == eager.final_state.pc
        and sim.final_state.diff(eager.final_state) == []
    )


def run_sim_bench(
    workload: str = "compress",
    slave_counts: Sequence[int] = (8, 16, 64),
    size: Optional[int] = None,
    mssp_config: Optional[MsspConfig] = None,
    scenarios: bool = True,
) -> dict:
    """Capture, validate, and sweep one workload; the ``sim_bench`` row."""
    from repro.experiments import prepare
    from repro.workloads import get_workload

    prepared = prepare(get_workload(workload), size=size)
    base_config = mssp_config or MsspConfig()

    # 1. Real run, trace captured off the EventBus.
    log = EventLog()
    eager_config = replace(base_config, runtime="eager")
    with create_engine(
        prepared.instance.program, prepared.distillation, eager_config
    ) as engine:
        engine.events.subscribe(log)
        eager_result = engine.run()

    # 2. Functional bit-identity of the simulated runtime.
    sim_config = replace(base_config, runtime="sim")
    with create_engine(
        prepared.instance.program, prepared.distillation, sim_config
    ) as engine:
        sim_result = engine.run()
    bit_identical = _identical(eager_result, sim_result)

    records = records_from_events(log.events)
    task_records = [
        r for r in records if isinstance(r, TaskAttemptRecord)
    ]
    total_instrs = eager_result.counters.total_instrs
    reference = baseline_cycles(total_instrs, SEQUENTIAL_BASELINE)

    # 3. Slave-count sweep, analytic cross-check at every point.
    sweep: List[dict] = []
    for n_slaves in slave_counts:
        timing = TimingConfig(n_slaves=n_slaves)
        analytic = MsspTimingSimulator(timing).simulate_records(records)
        replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records
        )
        gap = _relative_gap(
            replayed.total_cycles, analytic.total_cycles
        )
        sweep.append({
            "n_slaves": n_slaves,
            "sim_cycles": replayed.total_cycles,
            "analytic_cycles": analytic.total_cycles,
            "agreement_gap": gap,
            "agrees": gap <= AGREEMENT_TOLERANCE,
            "speedup": (
                reference / replayed.total_cycles
                if replayed.total_cycles > 0 else 0.0
            ),
            "master_stall_cycles": replayed.master_stall_cycles,
            "commit_bound_tasks": replayed.commit_bound_tasks,
        })

    section = {
        "workload": prepared.name,
        "tasks_replayed": len(task_records),
        "records_replayed": len(records),
        "total_instrs": total_instrs,
        "baseline_cycles": reference,
        "bit_identical": bit_identical,
        "agreement_tolerance": AGREEMENT_TOLERANCE,
        "sweep": sweep,
    }

    # 4. Cluster scenarios beyond the analytic model's reach.
    if scenarios:
        mid = slave_counts[len(slave_counts) // 2]
        timing = TimingConfig(n_slaves=mid)
        plain = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records
        )
        horizon = plain.total_cycles

        def scenario(name: str, **overrides) -> dict:
            cluster = ClusterConfig.from_timing(timing, **overrides)
            replayed = ClusterSim(cluster).replay(records)
            return {
                "scenario": name,
                "n_slaves": mid,
                "sim_cycles": replayed.total_cycles,
                "slowdown_vs_ideal": (
                    replayed.total_cycles / horizon
                    if horizon > 0 else 0.0
                ),
                "speedup": (
                    reference / replayed.total_cycles
                    if replayed.total_cycles > 0 else 0.0
                ),
            }

        section["scenarios"] = [
            scenario(
                "contended-link",
                link_channels=1,
                interconnect_latency=50.0,
            ),
            scenario(
                "heterogeneous-slaves",
                slave_speeds=tuple(
                    1.0 if slot % 2 == 0 else 0.5 for slot in range(mid)
                ),
            ),
            scenario(
                "slave-failure",
                failures=(
                    SlaveFailure(
                        slot=0,
                        at=horizon * 0.25,
                        downtime=horizon * 0.25,
                    ),
                ),
            ),
        ]

    return section
