"""Fixed-width table rendering and summary statistics for reports.

Every experiment harness prints its results through :class:`Table` so
benchmark output is uniform and diffable, mirroring how the paper
presents per-benchmark rows with a geometric-mean summary line.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


class Table:
    """A fixed-width text table with typed cell formatting."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None,
                 float_format: str = "{:.3f}"):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []
        self.float_format = float_format

    def add_row(self, *cells: Cell) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])
        return self

    def _format(self, cell: Cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in self.rows))
            if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
