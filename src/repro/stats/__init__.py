"""Statistics and report-rendering helpers."""

from repro.stats.tables import Table, geomean, mean

__all__ = ["Table", "geomean", "mean"]
