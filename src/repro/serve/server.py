"""MSSP-as-a-service: the persistent multi-tenant episode server.

Every pre-server entry point pays the full pipeline cost — decode,
distillation, JIT compilation, worker-pool spinup — for a *single*
episode and then throws the warm state away, the opposite of the
paper's premise that the distilled master amortizes work across
long-running execution.  :class:`EpisodeServer` is the serving stack
that keeps it: a long-lived, in-process server accepting a stream of
:class:`EpisodeRequest`\\ s from many concurrent tenants and
multiplexing them onto one shared warm worker fleet.

Structure (the master-dispatches-to-loaded-nodes idiom):

* **Admission + dispatch** — an arriving request is routed to the
  least-loaded worker with free capacity (per-worker load sets, the
  ``snodeLoads`` bookkeeping).  With every worker saturated it queues —
  ``admission="wait"``, bounded by ``max_queue_depth`` — or is rejected
  with a typed :class:`ServerBusy` shed response (``onTxnLoss``).
* **Warm sharing** — programs, distillations, decoded/JIT code and
  whole engines are cached content-addressed across tenants
  (:mod:`repro.serve.cache`): tenant N's compile warms tenant N+1, with
  per-request hit/miss flags on every response.
* **Batching** — a worker that acquired a warm engine folds compatible
  queued requests (same program + engine configuration) into the same
  service turn, running them back-to-back through the engine's
  chunk-dispatch path instead of round-tripping the scheduler and the
  engine pool per episode.

Correctness is non-negotiable: every served result is bit-identical to
a fresh :func:`repro.mssp.engine.run_mssp` of the same request, because
a pooled engine's :meth:`~repro.mssp.engine.MsspEngine.run` rebuilds all
per-run state and the server never runs one engine from two workers at
once.  The differential tests enforce this across the eager, thread and
process backends.

Everything observable is announced on the server's
:class:`~repro.mssp.runtime.events.EventBus` (``episode_accepted`` /
``episode_dispatched`` / ``episode_completed`` / ``episode_shed``), the
stream the RT004 lint check audits.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.config import DistillConfig, MsspConfig, ServeConfig
from repro.errors import MsspError
from repro.experiments import cache as artifact_cache
from repro.machine.flatmem import as_dict
from repro.mssp.runtime.events import (
    EpisodeAccepted,
    EpisodeCompleted,
    EpisodeDispatched,
    EpisodeShed,
    EventBus,
)
from repro.serve.cache import EnginePool, ServedProgram, WarmCache

__all__ = [
    "EpisodeRequest",
    "EpisodeResponse",
    "EpisodeHandle",
    "ServerBusy",
    "ServerStats",
    "EpisodeServer",
    "state_digest",
]


def state_digest(state) -> str:
    """Content digest of an architected state (identity over the wire).

    Canonical over pc, registers, and the sparse view of memory, so the
    digest is backend-independent (dict and flat states of one machine
    digest identically) — the cheap way for an external client to check
    two served results are bit-identical.
    """
    hasher = hashlib.sha256()
    hasher.update(f"pc:{state.pc};".encode())
    hasher.update(("regs:" + ",".join(map(str, state.regs)) + ";").encode())
    memory = as_dict(state.mem)
    for address in sorted(memory):
        value = memory[address]
        if value:
            hasher.update(f"{address}:{value};".encode())
    return hasher.hexdigest()[:20]


@dataclass(frozen=True)
class EpisodeRequest:
    """One tenant's episode: which program, which machine configuration.

    A request names its program either by ``workload`` (source: the
    server profiles + distills it, through the shared warm caches) or by
    bare content ``digest`` — addressing a program some earlier request
    or warmup already loaded; an unknown digest is an error response,
    never a recompile.
    """

    workload: Optional[str] = None
    digest: Optional[str] = None
    size: Optional[int] = None
    config: MsspConfig = MsspConfig()
    distill_config: Optional[DistillConfig] = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.workload is None and self.digest is None:
            raise MsspError(
                "an episode request needs a workload name or a program "
                "digest"
            )

    def compat_key(self) -> tuple:
        """Requests with equal keys may fold into one service batch."""
        return (
            self.workload, self.digest, self.size, self.distill_config,
            self.config,
        )


@dataclass
class EpisodeResponse:
    """What one request produced: a result, a typed shed, or an error."""

    request_id: int
    status: str                     # "ok" | "shed" | "error"
    workload: Optional[str] = None
    digest: Optional[str] = None
    tenant: str = "default"
    result: object = None           # MsspResult when status == "ok"
    error: Optional[str] = None
    worker: Optional[int] = None
    batched: bool = False
    #: Per-request warm-cache outcome: ``prepared`` (profile/distill
    #: artifact), ``engine`` (pooled warm engine), ``jit_warm`` (the
    #: program's JIT code cache was already populated when the episode
    #: started — the ``jitcode`` cache-hit path).
    cache: Dict[str, bool] = field(default_factory=dict)
    submitted_at: float = 0.0
    started_at: float = 0.0
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_seconds(self) -> float:
        return max(0.0, self.completed_at - self.submitted_at)

    @property
    def queue_seconds(self) -> float:
        return max(0.0, self.started_at - self.submitted_at)


class ServerBusy(MsspError):
    """Typed shed-load rejection: admission control refused the episode."""

    def __init__(self, response: EpisodeResponse):
        super().__init__(
            f"request {response.request_id} shed: {response.error}"
        )
        self.response = response


class EpisodeHandle:
    """One in-flight request: block on :meth:`result` for its response."""

    __slots__ = ("request_id", "request", "_done", "_response")

    def __init__(self, request_id: int, request: EpisodeRequest):
        self.request_id = request_id
        self.request = request
        self._done = threading.Event()
        self._response: Optional[EpisodeResponse] = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> EpisodeResponse:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still in flight after "
                f"{timeout}s"
            )
        return self._response

    def _resolve(self, response: EpisodeResponse) -> None:
        self._response = response
        self._done.set()


@dataclass
class ServerStats:
    """Cumulative serving statistics (admission, batching, queue)."""

    accepted: int = 0
    completed: int = 0
    errors: int = 0
    shed: int = 0
    batched: int = 0
    warmup_episodes: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "batched": self.batched,
            "warmup_episodes": self.warmup_episodes,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }


@dataclass
class _Pending:
    """One admitted request traversing the scheduler."""

    handle: EpisodeHandle
    submitted_at: float
    batched: bool = False


class EpisodeServer:
    """A persistent multi-tenant episode server over one warm fleet.

    In-process by design: tests, benches and embedding applications
    drive it through :meth:`submit` / :meth:`serve` without sockets;
    ``repro serve`` wraps it in a line-oriented front-end.  Start it
    with :meth:`start` (or lazily via the first submit, or as a context
    manager), and :meth:`close` to release the fleet.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        mssp_config: Optional[MsspConfig] = None,
        clock=None,
    ):
        self.config = config or ServeConfig()
        #: Engine configuration used for warmup episodes and by
        #: front-ends that accept requests without an explicit config.
        self.default_config = mssp_config or MsspConfig()
        #: One time source for admission stamps, queue-wait accounting
        #: and every event the server emits; injectable so a simulated
        #: front-end can drive the server on virtual time.
        if clock is None:
            from repro.timing.clock import WallClock

            clock = WallClock()
        self.clock = clock
        self.events = EventBus(clock=self.clock, actor="server")
        self.warm = WarmCache()
        self.engines = EnginePool()
        self.stats = ServerStats()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._rid = itertools.count()
        self._loads: Dict[int, Set[int]] = {
            w: set() for w in range(self.config.workers)
        }
        #: Dispatched-but-unstarted episodes per worker, scannable so a
        #: serving worker can fold compatible neighbours into its turn.
        self._assigned: Dict[int, Deque[_Pending]] = {
            w: deque() for w in range(self.config.workers)
        }
        self._backlog: Deque[_Pending] = deque()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False
        self._draining = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "EpisodeServer":
        """Spin up the worker fleet and run the configured warmup."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise MsspError("episode server already closed")
            self._started = True
            for w in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop, args=(w,),
                    name=f"mssp-serve-{w}", daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        for name in self.config.warmup:
            self.warm_workload(name)
        return self

    def close(self) -> None:
        """Drain assigned work, shed the backlog, release the fleet."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            backlog, self._backlog = list(self._backlog), deque()
            self.stats.queue_depth = 0
            started = self._started
        for entry in backlog:
            self._shed(entry, why="server-closed")
        if started:
            with self._work:
                self._draining = True
                self._work.notify_all()
            for thread in self._threads:
                thread.join(timeout=60.0)
        self.engines.close()

    def __enter__(self) -> "EpisodeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ---------------------------------------------------------------

    def submit(self, request: EpisodeRequest) -> EpisodeHandle:
        """Admit one request; returns immediately with its handle.

        Admission control runs here, synchronously: the request is
        dispatched to the least-loaded worker with free capacity,
        queued when all are busy (``admission="wait"``, bounded), or
        shed — in which case the handle is already resolved with a
        ``status="shed"`` response.
        """
        if not self._started:
            self.start()
        handle = EpisodeHandle(next(self._rid), request)
        entry = _Pending(handle=handle, submitted_at=self.clock.now())
        with self._lock:
            if self._closed:
                raise MsspError("episode server already closed")
            self.stats.accepted += 1
            self.events.emit(EpisodeAccepted(
                request_id=handle.request_id,
                digest=request.digest or f"workload:{request.workload}",
                tenant=request.tenant,
            ))
            worker = self._pick_worker()
            if worker is not None:
                self._assign(entry, worker)
            elif (
                self.config.admission == "wait"
                and len(self._backlog) < self.config.max_queue_depth
            ):
                self._backlog.append(entry)
                self.stats.queue_depth = len(self._backlog)
                self.stats.max_queue_depth = max(
                    self.stats.max_queue_depth, self.stats.queue_depth
                )
            else:
                worker = None
                self._shed_locked(entry, why=(
                    "queue-full" if self.config.admission == "wait"
                    else "all-workers-busy"
                ))
        return handle

    def serve(
        self, request: EpisodeRequest, timeout: Optional[float] = None
    ) -> EpisodeResponse:
        """Blocking convenience: submit and wait; raises on a shed."""
        response = self.submit(request).result(timeout)
        if response.status == "shed":
            raise ServerBusy(response)
        return response

    def warm_workload(
        self,
        name: str,
        size: Optional[int] = None,
        config: Optional[MsspConfig] = None,
    ) -> ServedProgram:
        """Pre-distill and pre-JIT one workload (the ``--warmup`` path).

        Runs one throwaway episode inline on the caller thread through
        the shared caches: profiles + distills the program, compiles
        its hot regions under the warmed configuration, and leaves a
        warm engine in the pool — so the first tenant request finds
        every layer hot instead of being a cold-compile outlier.
        Warmup episodes never touch the scheduler and emit no episode
        events (RT004 audits tenant traffic only).
        """
        config = config if config is not None else self.default_config
        served, _ = self.warm.resolve(name, size=size)
        key = self._engine_key(served, config, None)
        engine, _ = self.engines.acquire(
            key, lambda: self._build_engine(served, config, None)
        )
        try:
            engine.run()
            self.stats.warmup_episodes += 1
        finally:
            self.engines.release(key, engine)
        return served

    def preload(self, entry: ServedProgram) -> None:
        """Seed the warm cache with an externally prepared artifact."""
        self.warm.preload(entry)

    def reset_queue_high_water(self) -> int:
        """Restart the ``max_queue_depth`` high-water mark; returns the
        previous value (benchmark stages report per-stage peaks)."""
        with self._lock:
            previous = self.stats.max_queue_depth
            self.stats.max_queue_depth = self.stats.queue_depth
            return previous

    def cache_summary(self) -> Dict[str, int]:
        """Merged shared-cache counters across all warm layers."""
        merged = dict(self.warm.counters.summary())
        for key, value in self.engines.counters.summary().items():
            if value:
                merged[key] = merged.get(key, 0) + value
        return merged

    # -- scheduler (the snodeLoads idiom) -----------------------------------------

    def _pick_worker(self) -> Optional[int]:
        """The least-loaded worker with free capacity, else None."""
        best, best_load = None, None
        for worker in range(self.config.workers):
            load = len(self._loads[worker])
            if load >= self.config.worker_capacity:
                continue
            if best_load is None or load < best_load:
                best, best_load = worker, load
        return best

    def _assign(self, entry: _Pending, worker: int) -> None:
        """Route one admitted request to ``worker`` (lock held)."""
        self._loads[worker].add(entry.handle.request_id)
        self.events.emit(EpisodeDispatched(
            request_id=entry.handle.request_id, worker=worker,
            capacity=self.config.worker_capacity,
        ))
        self._assigned[worker].append(entry)
        self._work.notify_all()

    def _refill(self, worker: int) -> None:
        """Pull backlog head entries onto a freed worker (lock held)."""
        while (
            self._backlog
            and len(self._loads[worker]) < self.config.worker_capacity
        ):
            self._assign(self._backlog.popleft(), worker)
        self.stats.queue_depth = len(self._backlog)

    def _claim_batch(
        self, worker: int, first: _Pending, room: int
    ) -> List[_Pending]:
        """Compatible queued episodes folded into this service turn.

        Called by a worker holding a warm engine it just served
        ``first`` on: entries already dispatched to this worker whose
        compatibility key matches (identical program + engine
        configuration) jump the worker's queue — up to ``max_batch``
        per turn — and run back-to-back on the held engine instead of
        round-tripping the scheduler and the engine pool.  The claimed
        entries were admitted against this worker's capacity when they
        were dispatched, so the fold never inflates the worker's load;
        the re-announced dispatch event (``batched=True``) keeps the
        RT004-audited stream faithful to what actually ran.
        """
        key = first.handle.request.compat_key()
        claimed: List[_Pending] = []
        if room <= 0:
            return claimed
        with self._lock:
            pending = self._assigned[worker]
            keep: Deque[_Pending] = deque()
            while pending and len(claimed) < room:
                entry = pending.popleft()
                if entry.handle.request.compat_key() == key:
                    entry.batched = True
                    self.events.emit(EpisodeDispatched(
                        request_id=entry.handle.request_id, worker=worker,
                        capacity=self.config.worker_capacity, batched=True,
                    ))
                    claimed.append(entry)
                else:
                    keep.append(entry)
            keep.extend(pending)
            self._assigned[worker] = keep
            self.stats.batched += len(claimed)
        return claimed

    def _shed_locked(self, entry: _Pending, why: str) -> None:
        self.stats.shed += 1
        self.events.emit(EpisodeShed(
            request_id=entry.handle.request_id, why=why
        ))
        request = entry.handle.request
        now = self.clock.now()
        entry.handle._resolve(EpisodeResponse(
            request_id=entry.handle.request_id, status="shed",
            workload=request.workload, digest=request.digest,
            tenant=request.tenant, error=why,
            submitted_at=entry.submitted_at, started_at=now,
            completed_at=now,
        ))

    def _shed(self, entry: _Pending, why: str) -> None:
        with self._lock:
            self._shed_locked(entry, why)

    # -- the worker fleet ---------------------------------------------------------

    def _worker_loop(self, worker: int) -> None:
        while True:
            with self._work:
                while not self._assigned[worker] and not self._draining:
                    self._work.wait()
                if not self._assigned[worker]:
                    return  # draining and nothing left assigned here
                entry = self._assigned[worker].popleft()
            self._serve_turn(worker, entry)

    def _serve_turn(self, worker: int, first: _Pending) -> None:
        """One service turn: ``first`` plus any compatible batch.

        The warm engine is acquired once and every folded episode runs
        back-to-back on it; each episode is still one independent
        ``engine.run()``, which is what keeps batched results
        bit-identical to unbatched ones.
        """
        request = first.handle.request
        config = request.config
        served: Optional[ServedProgram] = None
        prepared_hit = False
        resolve_error: Optional[str] = None
        try:
            served, prepared_hit = self._resolve(request)
        except Exception as error:  # noqa: BLE001 - surfaced per request
            resolve_error = f"{type(error).__name__}: {error}"

        if served is None:
            self._finish(
                worker, first,
                self._error_response(first, worker, resolve_error),
            )
            return

        jit_warm = served.jit_warm
        counters = self.warm.counters
        if jit_warm:
            counters.jit_warm_hits += 1
        else:
            counters.jit_warm_misses += 1
        key = self._engine_key(served, config, request.distill_config)
        engine, engine_hit = self.engines.acquire(
            key,
            lambda: self._build_engine(served, config, request.distill_config),
        )
        poisoned = False
        served_count = 0
        try:
            turn = [first]
            while turn:
                entry = turn.pop(0)
                started = self.clock.now()
                try:
                    result = engine.run()
                    response = EpisodeResponse(
                        request_id=entry.handle.request_id, status="ok",
                        workload=served.name, digest=served.digest,
                        tenant=entry.handle.request.tenant, result=result,
                        worker=worker, batched=entry.batched,
                        cache={
                            "prepared": prepared_hit,
                            "engine": engine_hit,
                            "jit_warm": jit_warm,
                        },
                        submitted_at=entry.submitted_at,
                        started_at=started,
                        completed_at=self.clock.now(),
                    )
                except Exception as error:  # noqa: BLE001
                    poisoned = True
                    response = self._error_response(
                        entry, worker, f"{type(error).__name__}: {error}"
                    )
                self._finish(worker, entry, response)
                if poisoned:
                    # A raising engine must not serve the rest of the
                    # batch (or any future tenant): hand its episodes
                    # back through the normal path on a fresh engine.
                    self._requeue(worker, turn)
                    return
                # Later episodes of this turn start on a fully warm
                # stack by construction.
                prepared_hit = engine_hit = True
                jit_warm = served.jit_warm
                served_count += 1
                if not turn:
                    turn.extend(self._claim_batch(
                        worker, first,
                        self.config.max_batch - served_count,
                    ))
        finally:
            if poisoned:
                self.engines.discard(engine)
            else:
                self.engines.release(key, engine)

    def _requeue(self, worker: int, entries: List[_Pending]) -> None:
        """Hand claimed-but-unserved batch entries back to the worker.

        They stay dispatched to this worker (their admission slot is
        still held); they just go back to the head of its queue so the
        next service turn runs them on a fresh engine.
        """
        with self._work:
            for entry in reversed(entries):
                entry.batched = False
                self._assigned[worker].appendleft(entry)
            self.stats.batched -= len(entries)
            self._work.notify_all()

    def _finish(
        self, worker: int, entry: _Pending, response: EpisodeResponse
    ) -> None:
        with self._lock:
            self._loads[worker].discard(entry.handle.request_id)
            if response.status == "ok":
                self.stats.completed += 1
            else:
                self.stats.errors += 1
            self.events.emit(EpisodeCompleted(
                request_id=entry.handle.request_id, worker=worker,
                ok=response.status == "ok",
            ))
            self._refill(worker)
        entry.handle._resolve(response)

    def _error_response(
        self, entry: _Pending, worker: int, error: Optional[str]
    ) -> EpisodeResponse:
        request = entry.handle.request
        now = self.clock.now()
        return EpisodeResponse(
            request_id=entry.handle.request_id, status="error",
            workload=request.workload, digest=request.digest,
            tenant=request.tenant, error=error or "episode failed",
            worker=worker, submitted_at=entry.submitted_at,
            started_at=now, completed_at=now,
        )

    # -- warm-stack plumbing ------------------------------------------------------

    def _resolve(
        self, request: EpisodeRequest
    ) -> Tuple[Optional[ServedProgram], bool]:
        if request.workload is not None:
            return self.warm.resolve(
                request.workload, size=request.size,
                distill_config=request.distill_config,
            )
        entry = self.warm.lookup_digest(request.digest)
        if entry is None:
            raise MsspError(
                f"unknown program digest {request.digest!r}: only "
                f"programs a previous request or warmup loaded can be "
                f"addressed by digest"
            )
        return entry, True

    def _engine_key(
        self,
        served: ServedProgram,
        config: MsspConfig,
        distill_config: Optional[DistillConfig],
    ) -> str:
        return artifact_cache.digest(served.key, config, distill_config)

    def _build_engine(
        self,
        served: ServedProgram,
        config: MsspConfig,
        distill_config: Optional[DistillConfig],
    ):
        from repro.mssp.engine import create_engine

        engine = create_engine(
            served.program, served.distillation, config=config
        )
        if config.redistill_threshold and served.profile is not None:
            engine.enable_adaptation(
                served.profile,
                distill_config=distill_config or served.distill_config,
            )
        return engine
