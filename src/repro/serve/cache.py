"""Cross-tenant warm caches for the episode server.

Everything expensive about serving an episode is deterministic in the
request's content — (program code + data, size, distiller
configuration) for the profile/distill stage, plus the engine
configuration for the engine itself — so the server shares it across
tenants under content-addressed keys:

* :class:`WarmCache` holds resolved :class:`ServedProgram` artifacts
  keyed by the same SHA-256 digests the on-disk artifact cache
  (:mod:`repro.experiments.cache`) uses.  A miss falls through to the
  disk cache (``cached_prepare``), so a server restart on a machine
  with a warm ``benchmarks/cache/`` still skips distillation.  The
  crucial sharing property: every request for one program content gets
  the *same* :class:`~repro.isa.program.Program` object, so the decode
  cache, the superblock JIT cache, and the persistent ``jitcode``
  artifacts tenant N compiled all warm tenant N+1.
* :class:`EnginePool` holds idle, already-constructed
  :class:`~repro.mssp.engine.MsspEngine` instances keyed by (program
  key, engine-config digest).  Engines carry the warm executor
  substrate (thread/process pools) across episodes; ``MsspEngine.run``
  resets all per-run state, which is what keeps a pooled engine's
  results bit-identical to a fresh ``run_mssp`` of the same request.

Hit/miss counters for all three layers (prepared artifact, pooled
engine, JIT code warmth) are kept per cache and surfaced per response.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import DistillConfig
from repro.experiments import cache as artifact_cache

__all__ = ["ServedProgram", "WarmCache", "EnginePool", "CacheCounters"]


@dataclass
class ServedProgram:
    """One resolved program the server can run episodes of.

    ``key`` is the content-addressed artifact key (workload name, size,
    program content digest, distiller config); ``digest`` is the bare
    program content digest tenants may address requests by.
    """

    name: str
    size: int
    key: str
    digest: str
    program: object          # repro.isa.program.Program
    distillation: object     # repro.distill.DistillationResult
    profile: object = None   # training Profile (adaptation requests)
    distill_config: Optional[DistillConfig] = None

    @property
    def jit_warm(self) -> bool:
        """Whether this program's superblock JIT cache is populated.

        The JIT attaches compiled programs to the ``Program`` object
        itself (mirroring the decode cache), so a warmed entry means a
        later ``exec_tier="jit"`` episode starts on the ``jitcode``
        cache-hit path instead of compiling.
        """
        return bool(self.program.__dict__.get("_jit_cache"))


@dataclass
class CacheCounters:
    """Shared-cache hits/misses, one pair per warm layer."""

    prepared_hits: int = 0
    prepared_misses: int = 0
    engine_hits: int = 0
    engine_misses: int = 0
    jit_warm_hits: int = 0
    jit_warm_misses: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "prepared_hits": self.prepared_hits,
            "prepared_misses": self.prepared_misses,
            "engine_hits": self.engine_hits,
            "engine_misses": self.engine_misses,
            "jit_warm_hits": self.jit_warm_hits,
            "jit_warm_misses": self.jit_warm_misses,
        }

    def hit_rate(self) -> float:
        hits = self.prepared_hits + self.engine_hits
        total = hits + self.prepared_misses + self.engine_misses
        return hits / total if total else 0.0


class WarmCache:
    """Content-addressed, in-memory program/artifact cache.

    Thread-safe: resolution runs under one lock, so concurrent workers
    requesting the same content block on a single build and then share
    the one resulting :class:`ServedProgram` (and with it the decoded /
    JIT-compiled state attached to its program object).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_key: Dict[str, ServedProgram] = {}
        self._by_digest: Dict[str, ServedProgram] = {}
        self.counters = CacheCounters()

    def resolve(
        self,
        name: str,
        size: Optional[int] = None,
        distill_config: Optional[DistillConfig] = None,
    ) -> Tuple[ServedProgram, bool]:
        """The served program for a workload request; ``(entry, hit)``.

        A miss builds through the *persistent* artifact cache
        (:func:`repro.experiments.bench.cached_prepare`), so the
        expensive profile/distill stage is shared across server
        processes as well as across tenants.
        """
        from repro.experiments.bench import cached_prepare, workload_size
        from repro.workloads import get_workload

        resolved = size if size is not None else workload_size(name)
        with self._lock:
            instance = get_workload(name).instance(resolved)
            digest = artifact_cache.program_digest(instance.program)
            key = artifact_cache.digest(name, resolved, digest, distill_config)
            entry = self._by_key.get(key)
            if entry is not None:
                self.counters.prepared_hits += 1
                return entry, True
            prepared, _ = cached_prepare(
                name, size=resolved, distill_config=distill_config
            )
            entry = ServedProgram(
                name=name, size=resolved, key=key, digest=digest,
                program=prepared.instance.program,
                distillation=prepared.distillation,
                profile=prepared.profile,
                distill_config=distill_config,
            )
            self.counters.prepared_misses += 1
            self._install(entry)
            return entry, False

    def lookup_digest(self, digest: str) -> Optional[ServedProgram]:
        """The warm entry for a bare program content digest, if any.

        This is how a tenant addresses a request by digest alone: only
        programs some earlier request (or warmup) already loaded can be
        named this way.
        """
        with self._lock:
            entry = self._by_digest.get(digest)
            if entry is not None:
                self.counters.prepared_hits += 1
            return entry

    def preload(self, entry: ServedProgram) -> None:
        """Seed the cache with an externally prepared artifact."""
        with self._lock:
            self._install(entry)

    def _install(self, entry: ServedProgram) -> None:
        self._by_key[entry.key] = entry
        # Digest addressing resolves to the most recently installed
        # variant of that content (sizes/configs share code rarely).
        self._by_digest[entry.digest] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_key)


class EnginePool:
    """Idle warm engines per (program key, engine-config digest).

    An engine is checked out for exactly one episode at a time — two
    workers never run one engine concurrently — and returned afterwards
    with its executor substrate (thread/process pools, JIT state) still
    warm.  Checkout order is LIFO: the most recently used engine is the
    warmest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle: Dict[str, List[object]] = {}
        self.counters = CacheCounters()

    def acquire(
        self, key: str, build: Callable[[], object]
    ) -> Tuple[object, bool]:
        """An idle engine for ``key``, or a freshly built one.

        The build itself runs under the pool lock: concurrent workers
        constructing engines over one shared program would otherwise
        race to populate its attached decode/JIT caches.
        """
        with self._lock:
            idle = self._idle.get(key)
            if idle:
                self.counters.engine_hits += 1
                return idle.pop(), True
            engine = build()
            self.counters.engine_misses += 1
            return engine, False

    def release(self, key: str, engine: object) -> None:
        with self._lock:
            self._idle.setdefault(key, []).append(engine)

    def discard(self, engine: object) -> None:
        """Close an engine that must not be reused (it raised mid-run)."""
        close = getattr(engine, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass

    def close(self) -> None:
        """Close every idle engine (worker pools, redistillers)."""
        with self._lock:
            engines = [e for pool in self._idle.values() for e in pool]
            self._idle.clear()
        for engine in engines:
            self.discard(engine)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(pool) for pool in self._idle.values())
