"""``repro bench --serve``: throughput/latency bench for the server.

Three stages over one mixed workload stream, emitted as the
``serve_bench`` section of ``BENCH_summary.json``:

1. **Cold baseline** — the pre-server serving model, measured honestly:
   one fresh process-equivalent per episode (fresh profile → distill →
   engine → run → teardown, never touching the persistent artifact
   cache), sequentially.  This is the ``episodes_per_sec`` denominator
   of the headline ``speedup_vs_cold``.
2. **Warm burst** — the same mixed stream submitted all at once to a
   warmed :class:`~repro.serve.server.EpisodeServer`; closed-loop
   saturation throughput of the shared warm fleet.
3. **Open loop** — Poisson arrivals at each configured rate from a
   seeded RNG (reproducible schedules), latency measured from the
   *scheduled* arrival time so queueing delay is charged to the server
   even when the submitting loop falls behind.  Reports episodes/sec,
   p50/p99/p999 latency (nearest-rank), peak queue depth, shed count,
   and shared-cache hit rates per rate point.

An open-loop stage is the honest way to measure a server: a closed loop
self-throttles when the server slows down, hiding latency; Poisson
arrivals keep offering load, so queue growth and shedding become
visible exactly when admission control earns its keep.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence

from repro.config import MsspConfig, ServeConfig
from repro.experiments import cache as artifact_cache
from repro.serve.server import EpisodeRequest, EpisodeServer

__all__ = [
    "DEFAULT_SERVE_WORKLOADS",
    "DEFAULT_RATES",
    "percentile",
    "poisson_arrivals",
    "cold_baseline",
    "run_serve_bench",
]

#: The mixed three-workload stream of the acceptance experiment: a
#: compute loop, a table/IO-flavored loop, and a branchy parser —
#: distinct programs, so the stream actually exercises cross-tenant
#: cache sharing rather than one hot entry.
DEFAULT_SERVE_WORKLOADS = ("compress", "crc", "branchy")

#: Default open-loop arrival rates, episodes/second.
DEFAULT_RATES = (2.0, 8.0)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for an empty set."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def poisson_arrivals(
    rate: float, count: int, seed: int = 0
) -> List[float]:
    """``count`` arrival offsets (seconds) of a seeded Poisson process."""
    import random

    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        offsets.append(clock)
    return offsets


def _mixed_stream(
    workloads: Sequence[str], count: int, sizes: Dict[str, int],
    config: MsspConfig,
) -> List[EpisodeRequest]:
    return [
        EpisodeRequest(
            workload=workloads[i % len(workloads)],
            size=sizes[workloads[i % len(workloads)]],
            config=config, tenant=f"tenant-{i % len(workloads)}",
        )
        for i in range(count)
    ]


def _resolve_sizes(
    workloads: Sequence[str], size: Optional[int], scale: float
) -> Dict[str, int]:
    from repro.experiments.bench import workload_size

    if size is not None:
        return {name: size for name in workloads}
    return {name: workload_size(name, scale) for name in workloads}


def cold_baseline(
    workloads: Sequence[str],
    episodes: int,
    sizes: Optional[Dict[str, int]] = None,
    config: Optional[MsspConfig] = None,
) -> Dict[str, object]:
    """Sequential one-process-per-episode serving, measured end to end.

    Every episode pays the full pipeline from source — profile,
    distill, engine construction, run, teardown — through
    :func:`repro.experiments.harness.prepare` directly (a fresh
    ``Program`` object each time), deliberately bypassing both the
    persistent artifact cache and every in-memory warm layer.  That is
    exactly what invoking ``run_mssp`` once per request costs.
    """
    from repro.experiments.harness import prepare
    from repro.mssp.engine import create_engine
    from repro.workloads import get_workload

    config = config or MsspConfig()
    sizes = sizes or _resolve_sizes(workloads, None, 1.0)
    walls: List[float] = []
    for i in range(episodes):
        name = workloads[i % len(workloads)]
        resolved = sizes[name]
        start = time.perf_counter()
        ready = prepare(get_workload(name), size=resolved)
        with create_engine(
            ready.instance.program, ready.distillation, config
        ) as engine:
            engine.run()
        walls.append(time.perf_counter() - start)
    wall = sum(walls)
    return {
        "episodes": episodes,
        "wall_seconds": wall,
        "episodes_per_sec": episodes / wall if wall > 0 else float("inf"),
        "episode_seconds_mean": wall / episodes if episodes else 0.0,
    }


def _warm_burst(
    server: EpisodeServer,
    requests: List[EpisodeRequest],
) -> Dict[str, object]:
    """Closed-loop saturation: submit everything at once, await all."""
    start = time.perf_counter()
    handles = [server.submit(request) for request in requests]
    responses = [handle.result() for handle in handles]
    wall = time.perf_counter() - start
    completed = sum(1 for r in responses if r.ok)
    return {
        "episodes": len(requests),
        "completed": completed,
        "shed": sum(1 for r in responses if r.status == "shed"),
        "batched": sum(1 for r in responses if r.batched),
        "wall_seconds": wall,
        "episodes_per_sec": (
            completed / wall if wall > 0 else float("inf")
        ),
    }


def _open_loop_stage(
    server: EpisodeServer,
    requests: List[EpisodeRequest],
    rate: float,
    seed: int,
) -> Dict[str, object]:
    """One Poisson-arrival rate point against a running server."""
    offsets = poisson_arrivals(rate, len(requests), seed=seed)
    server.reset_queue_high_water()
    base = time.perf_counter()
    submissions = []
    for request, offset in zip(requests, offsets):
        delay = (base + offset) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        submissions.append((server.submit(request), base + offset))
    latencies: List[float] = []
    queue_waits: List[float] = []
    completed = shed = batched = 0
    for handle, scheduled in submissions:
        response = handle.result()
        if response.status == "shed":
            shed += 1
            continue
        if response.ok:
            completed += 1
            batched += int(response.batched)
            # Charge latency from the *scheduled* arrival: if the
            # submitting loop fell behind, that backlog is server-side
            # queueing from the client's point of view.
            latencies.append(response.completed_at - scheduled)
            queue_waits.append(response.started_at - scheduled)
    wall = time.perf_counter() - base
    return {
        "rate": rate,
        "offered": len(requests),
        "completed": completed,
        "shed": shed,
        "batched": batched,
        "wall_seconds": wall,
        "episodes_per_sec": completed / wall if wall > 0 else float("inf"),
        "latency_p50_ms": percentile(latencies, 50) * 1e3,
        "latency_p99_ms": percentile(latencies, 99) * 1e3,
        "latency_p999_ms": percentile(latencies, 99.9) * 1e3,
        "queue_wait_p50_ms": percentile(queue_waits, 50) * 1e3,
        "max_queue_depth": server.stats.max_queue_depth,
    }


def run_serve_bench(
    workloads: Sequence[str] = DEFAULT_SERVE_WORKLOADS,
    rates: Sequence[float] = DEFAULT_RATES,
    requests_per_rate: int = 24,
    burst_requests: int = 18,
    cold_episodes: Optional[int] = None,
    size: Optional[int] = None,
    scale: float = 1.0,
    seed: int = 0,
    serve_config: Optional[ServeConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> Dict[str, object]:
    """The full serving benchmark; returns the ``serve_bench`` section.

    ``size`` pins one episode size for every workload (tests use small
    sizes); otherwise each workload serves at its bench size times
    ``scale``.  The cold baseline defaults to one pass over the
    workload mix — it is by far the most expensive stage per episode.
    """
    workloads = tuple(workloads)
    serve_config = serve_config or ServeConfig()
    mssp_config = mssp_config or MsspConfig()
    sizes = _resolve_sizes(workloads, size, scale)
    cold_n = cold_episodes if cold_episodes is not None else len(workloads)
    cold = cold_baseline(workloads, cold_n, sizes=sizes, config=mssp_config)

    server = EpisodeServer(serve_config, mssp_config=mssp_config)
    with server:
        # Warm the exact (workload, size) pairs the stream will serve —
        # warming at a different size would warm the wrong artifacts.
        for name in workloads:
            server.warm_workload(name, size=sizes[name])
        warm = _warm_burst(
            server,
            _mixed_stream(workloads, burst_requests, sizes, mssp_config),
        )
        open_loop = []
        for index, rate in enumerate(rates):
            open_loop.append(_open_loop_stage(
                server,
                _mixed_stream(
                    workloads, requests_per_rate, sizes, mssp_config
                ),
                rate, seed=seed + index,
            ))
        cache = server.cache_summary()
        stats = server.stats.summary()

    cold_eps = float(cold["episodes_per_sec"])
    warm_eps = float(warm["episodes_per_sec"])
    hits = cache["prepared_hits"] + cache["engine_hits"]
    misses = cache["prepared_misses"] + cache["engine_misses"]
    return {
        "schema": artifact_cache.CACHE_SCHEMA,
        "workloads": list(workloads),
        "sizes": sizes,
        "seed": seed,
        "runtime": mssp_config.runtime,
        "serve": {
            "workers": serve_config.workers,
            "worker_capacity": serve_config.worker_capacity,
            "max_queue_depth": serve_config.max_queue_depth,
            "admission": serve_config.admission,
            "max_batch": serve_config.max_batch,
            "warmup": list(workloads),
        },
        "cold": cold,
        "warm": warm,
        "speedup_vs_cold": (
            warm_eps / cold_eps if cold_eps > 0 else float("inf")
        ),
        "open_loop": open_loop,
        "cache": cache,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "stats": stats,
    }
