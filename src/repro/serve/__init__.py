"""MSSP-as-a-service: the persistent multi-tenant episode server.

Public surface: :class:`EpisodeServer` (in-process, no sockets),
request/response/handle types, the typed :class:`ServerBusy` rejection,
the warm-cache layers, and the open-loop serving benchmark
(:mod:`repro.serve.bench`).
"""

from repro.serve.cache import (
    CacheCounters,
    EnginePool,
    ServedProgram,
    WarmCache,
)
from repro.serve.server import (
    EpisodeHandle,
    EpisodeRequest,
    EpisodeResponse,
    EpisodeServer,
    ServerBusy,
    ServerStats,
    state_digest,
)

__all__ = [
    "EpisodeServer",
    "EpisodeRequest",
    "EpisodeResponse",
    "EpisodeHandle",
    "ServerBusy",
    "ServerStats",
    "ServedProgram",
    "WarmCache",
    "EnginePool",
    "CacheCounters",
    "state_digest",
]
