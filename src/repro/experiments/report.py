"""Markdown report generation for suite runs.

:func:`generate_report` runs the full pipeline over a set of workloads
and renders a self-contained markdown document — per-workload metrics,
machine configuration, and the geomean summary — the artifact a user
checks into their own repository after reproducing the evaluation.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from repro.config import (
    DistillConfig,
    MsspConfig,
    OOO_BASELINE,
    TimingConfig,
)
from repro.experiments.harness import EvaluationRow, evaluate, prepare
from repro.stats import geomean
from repro.timing import baseline_cycles
from repro.workloads import WORKLOADS, get_workload


def _machine_section(timing: TimingConfig, distill: DistillConfig) -> List[str]:
    return [
        "## Machine configuration",
        "",
        f"* slaves: {timing.n_slaves} (CPI {timing.slave_cpi}), "
        f"master CPI {timing.master_cpi}",
        f"* latencies (cycles): spawn {timing.spawn_latency:g}, "
        f"commit {timing.commit_latency:g}, squash {timing.squash_penalty:g}, "
        f"restart {timing.restart_latency:g}",
        f"* per-load penalty: {timing.load_penalty:g}, per-checkpoint-word: "
        f"{timing.checkpoint_word_latency:g}",
        f"* distiller: target task size {distill.target_task_size}, "
        f"branch bias threshold {distill.branch_bias_threshold}, "
        f"cold threshold {distill.cold_threshold}",
        "",
    ]


def _row_line(row: EvaluationRow, ratio: float) -> str:
    counters = row.counters
    ooo = baseline_cycles(
        row.seq_instrs, OOO_BASELINE, row.seq_loads
    ) / row.breakdown.total_cycles
    return (
        f"| {row.name} | {row.seq_instrs} | {ratio:.2f} "
        f"| {counters.tasks_committed} | {counters.squash_rate:.3f} "
        f"| {counters.live_in_accuracy:.3f} "
        f"| {row.breakdown.total_cycles:.0f} | {row.speedup:.2f} "
        f"| {ooo:.2f} |"
    )


def generate_report(
    workload_names: Optional[Iterable[str]] = None,
    size_scale: float = 1.0,
    timing: Optional[TimingConfig] = None,
    distill: Optional[DistillConfig] = None,
    mssp: Optional[MsspConfig] = None,
) -> str:
    """Run the pipeline over ``workload_names`` and render markdown."""
    names = list(workload_names) if workload_names else list(WORKLOADS)
    timing = timing or TimingConfig()
    distill = distill or DistillConfig()

    lines: List[str] = [
        "# MSSP reproduction report",
        "",
        "Every row was produced by: profile (training inputs) -> distill "
        "-> MSSP execution with equivalence check against sequential "
        "execution -> timing replay.",
        "",
    ]
    lines.extend(_machine_section(timing, distill))
    lines.extend(
        [
            "## Per-workload results",
            "",
            "| workload | seq instrs | distill ratio | tasks | squash "
            "| live-in acc | cycles | vs in-order | vs ooo |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
    )
    speedups: List[float] = []
    for name in names:
        spec = get_workload(name)
        size = max(4, int(spec.default_size * size_scale))
        prepared = prepare(spec, size=size, distill_config=distill)
        row = evaluate(
            prepared, mssp_config=mssp, timing_config=timing
        )
        speedups.append(row.speedup)
        lines.append(_row_line(row, prepared.distillation_ratio))
    lines.extend(
        [
            "",
            f"**Geomean speedup vs in-order: {geomean(speedups):.2f}x** "
            f"({len(names)} workloads; every run checked equivalent to "
            "sequential execution).",
            "",
        ]
    )
    return "\n".join(lines)
