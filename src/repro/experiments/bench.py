"""``repro bench``: the perf-measurement loop for the reproduction.

Two stages, both emitted into a machine-readable ``BENCH_summary.json``:

1. **Interpreter microbenchmark** — one workload run twice from boot to
   halt: once through the seed's per-step
   :func:`repro.machine.semantics.execute` dispatch loop (kept verbatim
   below as :func:`reference_execute_loop`, the perf baseline), once
   through the pre-decoded engine (:mod:`repro.machine.decoded`).
   Reports instructions/second for both and their ratio; this is the
   number the CI smoke job gates on (>30% regression against
   ``benchmarks/baseline.json`` fails).

2. **E-suite sweep** — the full workload pipeline (profile → distill →
   MSSP functional run with equivalence check → timing replay) per
   workload, through the persistent artifact cache
   (:mod:`repro.experiments.cache`), recording per-workload wall time,
   simulated instructions/second, speedup, and whether the expensive
   stage hit the cache.  ``-j N`` fans workloads out over a process
   pool (:func:`repro.experiments.harness.parallel_map`); workers share
   the cache through the filesystem.

The cached pipeline entry points (:func:`cached_prepare`,
:func:`cached_functional_run`) are also what ``benchmarks/common.py``
builds its per-process memo on, so pytest benchmark runs and the CLI
share one on-disk artifact store.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.config import DistillConfig, MsspConfig, TimingConfig
from repro.errors import InvalidPcError
from repro.experiments import cache as artifact_cache
from repro.experiments.harness import (
    EvaluationRow,
    PreparedWorkload,
    evaluate,
    parallel_map,
    prepare,
)
from repro.isa.program import Program
from repro.machine.interpreter import DEFAULT_STEP_LIMIT
from repro.machine.decoded import decode
from repro.machine.jit import jit_for
from repro.machine.semantics import execute
from repro.machine.state import ArchState
from repro.mssp.engine import MsspResult
from repro.timing import simulate_mssp
from repro.workloads import WORKLOADS, get_workload

#: Workload driving the interpreter microbenchmark (branchy, load/store
#: heavy, representative dynamic mix).
MICRO_WORKLOAD = "compress"

#: Regression tolerance for the baseline gate: fail when decoded
#: instructions/second fall below ``(1 - tolerance) * baseline``.
BASELINE_TOLERANCE = 0.30


def workload_size(name: str, scale: float = 1.0) -> int:
    """The benchmark size for ``name`` at ``scale`` (floor of 4)."""
    return max(4, int(get_workload(name).default_size * scale))


# -- cached pipeline ----------------------------------------------------------


def cached_prepare(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
) -> Tuple[PreparedWorkload, bool]:
    """Profile+distill through the persistent cache; ``(ready, hit)``."""
    resolved = size if size is not None else workload_size(name)
    instance = get_workload(name).instance(resolved)
    content = artifact_cache.program_digest(instance.program)
    key = artifact_cache.digest(name, resolved, content, distill_config)
    return artifact_cache.fetch(
        "prepared", key,
        lambda: prepare(
            get_workload(name), size=resolved, distill_config=distill_config
        ),
    )


def cached_functional_run(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> Tuple[PreparedWorkload, MsspResult, bool]:
    """The equivalence-checked MSSP run through the persistent cache.

    Returns ``(ready, result, hit)`` where ``hit`` reports whether the
    *functional-run* artifact came from disk (the profile→distill→MSSP
    stage was skipped entirely).
    """
    resolved = size if size is not None else workload_size(name)
    instance = get_workload(name).instance(resolved)
    content = artifact_cache.program_digest(instance.program)
    key = artifact_cache.digest(
        name, resolved, content, distill_config, mssp_config
    )

    def compute() -> Tuple[PreparedWorkload, MsspResult]:
        ready, _ = cached_prepare(name, resolved, distill_config)
        row = evaluate(ready, mssp_config=mssp_config)
        return ready, row.mssp

    pair, hit = artifact_cache.fetch("functional", key, compute)
    return pair[0], pair[1], hit


# -- stage 1: interpreter microbenchmark --------------------------------------


def reference_execute_loop(
    program: Program,
    state: Optional[ArchState] = None,
    max_steps: int = DEFAULT_STEP_LIMIT,
) -> int:
    """The seed interpreter loop, verbatim: per-step ``execute`` dispatch.

    Kept as the microbenchmark baseline (and as a second oracle in the
    differential tests) so the decoded engine's speedup is always
    measured against the same code the seed shipped.
    """
    if state is None:
        state = ArchState.initial(program)
    code = program.code
    size = len(code)
    steps = 0
    while True:
        pc = state.pc
        if not 0 <= pc < size:
            raise InvalidPcError(pc, size)
        effect = execute(code[pc], state)
        if effect.halted:
            return steps
        steps += 1
        if steps >= max_steps:
            from repro.errors import StepLimitExceeded

            raise StepLimitExceeded(max_steps)


def microbenchmark(
    workload: str = MICRO_WORKLOAD,
    scale: float = 1.0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Instructions/second across every execution tier and memory backend.

    Five timed stages on one workload: the seed's reference ``execute``
    loop, the pre-decoded engine, the superblock JIT on the dict
    backend, the JIT on the flat paged backend
    (``flat_instrs_per_sec``), and the *master-side* JIT — the distilled
    program standalone under ``tier="jit"`` vs ``tier="decoded"``
    (``master_jit_speedup``, with ``master_jit_coverage`` the fraction
    of distilled instructions retired inside generated code).  Also
    records the arch JIT's linking counters so the CI bench smoke can
    assert superblock linking actually engaged.
    """
    program = get_workload(workload).instance(
        workload_size(workload, scale)
    ).program
    decoded = decode(program)  # decode cost paid up front, like real runs
    jit = jit_for(program)
    # One warmup run per backend crosses the hotness thresholds and
    # compiles the loop regions (including link promotions), so the
    # timed runs measure the steady state (real runs amortize
    # compilation the same way — and persist it).
    jit.run(ArchState.initial(program), DEFAULT_STEP_LIMIT)
    jit.run(ArchState.initial(program, backend="flat"), DEFAULT_STEP_LIMIT)

    def time_once(runner, backend: str = "dict") -> Tuple[int, float]:
        state = ArchState.initial(program, backend=backend)
        start = time.perf_counter()
        steps = runner(state)
        return steps, time.perf_counter() - start

    legacy_best = float("inf")
    decoded_best = float("inf")
    jit_best = float("inf")
    flat_best = float("inf")
    steps = 0
    for _ in range(max(1, repeats)):
        steps, elapsed = time_once(
            lambda s: reference_execute_loop(program, s)
        )
        legacy_best = min(legacy_best, elapsed)
        steps, elapsed = time_once(
            lambda s: decoded.run(s, DEFAULT_STEP_LIMIT)[0]
        )
        decoded_best = min(decoded_best, elapsed)
        steps, elapsed = time_once(
            lambda s: jit.run(s, DEFAULT_STEP_LIMIT)[0]
        )
        jit_best = min(jit_best, elapsed)
        steps, elapsed = time_once(
            lambda s: jit.run(s, DEFAULT_STEP_LIMIT)[0], backend="flat"
        )
        flat_best = min(flat_best, elapsed)
    legacy_ips = steps / legacy_best if legacy_best > 0 else float("inf")
    decoded_ips = steps / decoded_best if decoded_best > 0 else float("inf")
    jit_ips = steps / jit_best if jit_best > 0 else float("inf")
    flat_ips = steps / flat_best if flat_best > 0 else float("inf")
    result: Dict[str, object] = {
        "workload": workload,
        "dynamic_instrs": steps,
        "legacy_instrs_per_sec": legacy_ips,
        "decoded_instrs_per_sec": decoded_ips,
        "jit_instrs_per_sec": jit_ips,
        "flat_instrs_per_sec": flat_ips,
        "speedup": decoded_ips / legacy_ips if legacy_ips else float("inf"),
        "jit_speedup": jit_ips / decoded_ips if decoded_ips else float("inf"),
        "jit_link_transits": jit.stats["link_transits"],
        "jit_link_promotions": jit.stats["link_promotions"],
        "jit_link_demotions": jit.stats["link_demotions"],
        "jit_fused_regions": jit.stats["fused_regions"],
    }
    result.update(master_microbenchmark(workload, scale, repeats))
    return result


def master_microbenchmark(
    workload: str = MICRO_WORKLOAD,
    scale: float = 1.0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Master-side JIT stage: distilled standalone, decoded vs jit tier."""
    from repro.mssp.master import Master

    ready, _ = cached_prepare(workload, size=workload_size(workload, scale))
    distilled = ready.distillation.distilled
    pc_map = ready.distillation.pc_map
    program = ready.instance.program

    def make_master(tier: str) -> Master:
        return Master(
            distilled, MsspConfig(),
            arrival_pcs=pc_map.arrival_pcs(),
            jr_table=pc_map.jr_table, tier=tier,
        )

    # Warm the master-mode code cache (compiles and persists regions).
    warm = make_master("jit")
    warm.run_standalone(ArchState.initial(program), DEFAULT_STEP_LIMIT)

    best: Dict[str, float] = {"decoded": float("inf"), "jit": float("inf")}
    executed = 0
    for tier in ("decoded", "jit"):
        master = make_master(tier)
        for _ in range(max(1, repeats)):
            arch = ArchState.initial(program)
            start = time.perf_counter()
            executed = master.run_standalone(arch, DEFAULT_STEP_LIMIT)
            best[tier] = min(best[tier], time.perf_counter() - start)
    probe = make_master("jit")
    probed = probe.run_standalone(
        ArchState.initial(program), DEFAULT_STEP_LIMIT
    )
    coverage = probe.jit_instrs / probed if probed else 0.0
    decoded_ips = (
        executed / best["decoded"] if best["decoded"] > 0 else float("inf")
    )
    jit_ips = executed / best["jit"] if best["jit"] > 0 else float("inf")
    return {
        "master_dynamic_instrs": executed,
        "master_decoded_instrs_per_sec": decoded_ips,
        "master_jit_instrs_per_sec": jit_ips,
        "master_jit_speedup": (
            jit_ips / decoded_ips if decoded_ips else float("inf")
        ),
        "master_jit_coverage": coverage,
    }


# -- stage 2: E-suite sweep ---------------------------------------------------


def measure_parallel_runtime(
    name: str,
    size: Optional[int] = None,
    num_slaves: int = 2,
    repeats: int = 3,
    runtime: str = "process",
) -> Dict[str, object]:
    """Wall-clock eager vs pipelined runtime on one prepared workload.

    ``runtime`` selects which pipelined executor backend is measured
    ("thread" or "process"; "parallel" is the deprecated alias of
    "process").  Times ``repeats`` fresh runs of each engine on the same
    program and distillation (best-of, so the pipelined number reflects
    the steady state with a warm worker pool rather than one-time spawn
    cost, which is reported separately as
    ``wall_parallel_cold_seconds``) and checks the two results are
    bit-identical.  Single-core hosts cap the measured speedup at ~1.0x
    by construction — the workers timeshare the one CPU — so
    ``cpu_count`` travels with the numbers.
    """
    from repro.mssp.engine import create_engine

    ready, _ = cached_prepare(name, size=size)
    program = ready.instance.program
    distillation = ready.distillation

    walls_eager: List[float] = []
    result_eager = None
    with create_engine(
        program, distillation, MsspConfig(runtime="eager")
    ) as eager:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result_eager = eager.run()
            walls_eager.append(time.perf_counter() - start)

    config = MsspConfig(runtime=runtime, num_slaves=num_slaves)
    walls_parallel: List[float] = []
    result_parallel = None
    with create_engine(program, distillation, config) as pipelined:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result_parallel = pipelined.run()
            walls_parallel.append(time.perf_counter() - start)
        dispatch = pipelined.dispatch_stats.summary()

    identical = (
        result_eager.records == result_parallel.records
        and result_eager.counters == result_parallel.counters
        and result_eager.device_trace == result_parallel.device_trace
        and result_eager.final_state == result_parallel.final_state
    )
    wall_eager = min(walls_eager)
    wall_parallel = min(walls_parallel)
    return {
        "pipelined_runtime": pipelined.runtime,
        "wall_eager_seconds": wall_eager,
        "wall_parallel_seconds": wall_parallel,
        "wall_parallel_cold_seconds": walls_parallel[0],
        "measured_parallel_speedup": (
            wall_eager / wall_parallel if wall_parallel > 0 else float("inf")
        ),
        "parallel_identical": identical,
        "dispatch": dispatch,
    }


def _bench_one(args: Tuple[str, float]) -> Dict[str, object]:
    """One workload through the cached pipeline (process-pool worker).

    Runs the functional pipeline twice: once with the default (static)
    configuration and once with the adaptive prediction loop enabled
    (:meth:`MsspConfig.with_adaptation`), so every suite row records the
    before/after squash rate the adaptation exists to improve.
    """
    name, scale = args
    size = workload_size(name, scale)
    start = time.perf_counter()
    ready, result, hit = cached_functional_run(name, size=size)
    breakdown = simulate_mssp(result, TimingConfig())
    wall = time.perf_counter() - start
    row = EvaluationRow(
        name=name, seq_instrs=ready.seq_instrs, mssp=result,
        breakdown=breakdown, seq_loads=ready.seq_loads,
    )
    simulated = (
        result.counters.total_instrs + ready.seq_instrs  # engine + seq check
    )
    _, adaptive, adaptive_hit = cached_functional_run(
        name, size=size, mssp_config=MsspConfig().with_adaptation()
    )
    return {
        "workload": name,
        "size": size,
        "wall_seconds": wall,
        "cache_hit": hit,
        "adaptive_cache_hit": adaptive_hit,
        "seq_instrs": ready.seq_instrs,
        "simulated_instrs": simulated,
        "instrs_per_sec": simulated / wall if wall > 0 else float("inf"),
        "speedup": row.speedup,
        "squash_rate": result.counters.squash_rate,
        "static_verify_skips": result.counters.static_verify_skips,
        "adaptive_squash_rate": adaptive.counters.squash_rate,
        "predictor_hits": adaptive.counters.predictor_hits,
        "predictor_misses": adaptive.counters.predictor_misses,
        "redistillations": adaptive.counters.redistillations,
    }


def run_bench(
    workloads: Optional[List[str]] = None,
    scale: float = 1.0,
    jobs: int = 1,
    micro_repeats: int = 3,
    runtime: str = "eager",
) -> Dict[str, object]:
    """The full benchmark: microbenchmark + E-suite sweep; JSON-ready.

    Any pipelined ``runtime`` ("thread", "process", or the deprecated
    alias "parallel") adds a wall-clock stage per workload: eager vs
    that executor backend with ``jobs`` slave workers, bit-identity
    checked.  In that mode the suite rows themselves run serially —
    ``jobs`` provisions slave workers, and fanning workloads out over a
    second pool would have the two levels of parallelism fight over the
    same cores.
    """
    import os

    names = list(workloads) if workloads else list(WORKLOADS)
    micro = microbenchmark(scale=scale, repeats=micro_repeats)
    suite_start = time.perf_counter()
    pipelined = runtime != "eager"
    suite_jobs = 1 if pipelined else jobs
    rows = parallel_map(
        _bench_one, [(name, scale) for name in names], suite_jobs
    )
    if pipelined:
        for row in rows:
            row.update(
                measure_parallel_runtime(
                    str(row["workload"]), size=int(row["size"]),
                    num_slaves=max(2, jobs), runtime=runtime,
                )
            )
    suite_wall = time.perf_counter() - suite_start
    from repro.machine.flatmem import resolve_mem_backend
    from repro.machine.jit import resolve_exec_tier

    return {
        "schema": artifact_cache.CACHE_SCHEMA,
        "scale": scale,
        "jobs": jobs,
        "runtime": runtime,
        # Environment-resolved execution knobs the suite rows ran under
        # (the microbenchmark stages measure all tiers/backends
        # explicitly regardless).
        "mem_backend": resolve_mem_backend(None),
        "exec_tier": resolve_exec_tier(None),
        "cpu_count": os.cpu_count(),
        "microbenchmark": micro,
        "suite": rows,
        "suite_wall_seconds": suite_wall,
        "cache_hits": suite_cache_hits(rows),
        "adaptive_cache_hits": suite_cache_hits(rows, "adaptive_cache_hit"),
        "cache_dir": str(artifact_cache.cache_dir()),
    }


def suite_cache_hits(rows: List[Dict[str, object]], flag: str = "cache_hit") -> int:
    """How many suite rows hit the persistent cache, from per-row flags.

    The single source of truth for the top-level ``cache_hits`` /
    ``adaptive_cache_hits`` aggregates: always derived from the rows, so
    the summary can never disagree with its own table (a warm rerun
    reports ``cache_hits == len(suite)``, not a stale 0).
    """
    return sum(1 for row in rows if row.get(flag))


def write_summary(summary: Dict[str, object], path: str) -> None:
    rows = summary.get("suite")
    if isinstance(rows, list):
        # Re-derive the aggregate flags from the rows at write time so a
        # caller that filtered or merged rows cannot emit a summary whose
        # top-level counts contradict its own table.
        summary = dict(summary)
        summary["cache_hits"] = suite_cache_hits(rows)
        summary["adaptive_cache_hits"] = suite_cache_hits(
            rows, "adaptive_cache_hit"
        )
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


def check_baseline(
    summary: Dict[str, object],
    baseline_path: str,
    tolerance: float = BASELINE_TOLERANCE,
) -> List[str]:
    """Regression check against a committed baseline; returns problems.

    The baseline file records the *floor* throughput
    (``decoded_instrs_per_sec``) and the minimum decoded-vs-legacy
    ``speedup``; the current run fails when it regresses more than
    ``tolerance`` below either.  An absent baseline file is an error
    (the gate must never pass vacuously).
    """
    problems: List[str] = []
    path = Path(baseline_path)
    if not path.is_file():
        return [f"baseline file {baseline_path} not found"]
    baseline = json.loads(path.read_text())
    micro = summary["microbenchmark"]
    floor = baseline.get("decoded_instrs_per_sec")
    if floor is not None:
        allowed = floor * (1.0 - tolerance)
        actual = micro["decoded_instrs_per_sec"]
        if actual < allowed:
            problems.append(
                f"decoded interpreter throughput regressed: "
                f"{actual:,.0f} instrs/sec < {allowed:,.0f} "
                f"(baseline {floor:,.0f} - {tolerance:.0%})"
            )
    min_speedup = baseline.get("min_speedup")
    if min_speedup is not None and micro["speedup"] < min_speedup:
        problems.append(
            f"decoded-vs-legacy speedup regressed: "
            f"{micro['speedup']:.2f}x < required {min_speedup:.2f}x"
        )
    jit_floor = baseline.get("jit_instrs_per_sec")
    if jit_floor is not None:
        allowed = jit_floor * (1.0 - tolerance)
        actual = micro.get("jit_instrs_per_sec", 0.0)
        if actual < allowed:
            problems.append(
                f"jit throughput regressed: "
                f"{actual:,.0f} instrs/sec < {allowed:,.0f} "
                f"(baseline {jit_floor:,.0f} - {tolerance:.0%})"
            )
    min_jit = baseline.get("min_jit_speedup")
    if min_jit is not None and micro.get("jit_speedup", 0.0) < min_jit:
        problems.append(
            f"jit-vs-decoded speedup regressed: "
            f"{micro.get('jit_speedup', 0.0):.2f}x < required {min_jit:.2f}x"
        )
    flat_floor = baseline.get("flat_instrs_per_sec")
    if flat_floor is not None:
        allowed = flat_floor * (1.0 - tolerance)
        actual = micro.get("flat_instrs_per_sec", 0.0)
        if actual < allowed:
            problems.append(
                f"flat-backend jit throughput regressed: "
                f"{actual:,.0f} instrs/sec < {allowed:,.0f} "
                f"(baseline {flat_floor:,.0f} - {tolerance:.0%})"
            )
    min_master = baseline.get("min_master_jit_speedup")
    if min_master is not None and (
        micro.get("master_jit_speedup", 0.0) < min_master
    ):
        problems.append(
            f"master-jit-vs-decoded speedup regressed: "
            f"{micro.get('master_jit_speedup', 0.0):.2f}x < required "
            f"{min_master:.2f}x"
        )
    return problems


def write_baseline(summary: Dict[str, object], path: str) -> None:
    """Regenerate the committed baseline from this run's measurements.

    Floors are written deliberately conservative — well below what was
    just measured — because CI runners are slower and noisier than dev
    machines; the provenance of the measurement goes into the comment.
    Speedup minima are engineering targets, not measurements: decoded
    must stay ≥2x over the reference loop and the JIT ≥2x over decoded.
    """
    micro = summary["microbenchmark"]

    def floor(value: float) -> int:
        return max(100_000, int(value * 0.375) // 100_000 * 100_000)

    baseline = {
        "comment": (
            "Committed perf floor for the `repro bench --baseline` gate, "
            "written by `repro bench --write-baseline`. Floors are "
            "deliberately conservative (CI runners are slower and noisier "
            "than dev machines); the gate fails when measured throughput "
            "drops more than 30% below a floor or a speedup falls under "
            "its minimum. Measurement provenance: "
            f"{time.strftime('%Y-%m-%d')}, reference execute() loop "
            f"~{micro['legacy_instrs_per_sec'] / 1e6:.2f}M instrs/sec, "
            f"pre-decoded engine "
            f"~{micro['decoded_instrs_per_sec'] / 1e6:.2f}M instrs/sec, "
            f"jit ~{micro['jit_instrs_per_sec'] / 1e6:.2f}M instrs/sec "
            f"({micro['jit_speedup']:.2f}x decoded), flat-backend jit "
            f"~{micro['flat_instrs_per_sec'] / 1e6:.2f}M instrs/sec, "
            f"master jit {micro['master_jit_speedup']:.2f}x its decoded "
            f"loop at {micro['master_jit_coverage']:.0%} coverage."
        ),
        "decoded_instrs_per_sec": floor(micro["decoded_instrs_per_sec"]),
        "min_speedup": 2.0,
        "jit_instrs_per_sec": floor(micro["jit_instrs_per_sec"]),
        "min_jit_speedup": 2.0,
        "flat_instrs_per_sec": floor(micro["flat_instrs_per_sec"]),
        "min_master_jit_speedup": 1.5,
    }
    Path(path).write_text(
        json.dumps(baseline, indent=2, sort_keys=False) + "\n"
    )
