"""The reconstructed MICRO-2002 evaluation: harness + experiment drivers."""

from repro.experiments.harness import (
    EvaluationRow,
    PreparedWorkload,
    evaluate,
    parallel_map,
    prepare,
    training_profile,
)

__all__ = [
    "EvaluationRow",
    "PreparedWorkload",
    "evaluate",
    "parallel_map",
    "prepare",
    "training_profile",
]
