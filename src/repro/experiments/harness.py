"""Experiment harness: the full MSSP evaluation pipeline for one workload.

The pipeline mirrors the paper's methodology:

1. run the workload's *training* inputs under the profiler;
2. distill the program with the merged training profile;
3. run the *evaluation* input (a different seed) under the MSSP engine,
   checking equivalence against sequential execution as we go;
4. replay the trace through the timing model and compute speedups.

:func:`prepare` does steps 1-2 (the expensive, reusable part);
:func:`evaluate` does steps 3-4 for a given machine configuration.
Benchmarks sweep configurations by calling :func:`evaluate` repeatedly
on one prepared workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import (
    BaselineConfig,
    DistillConfig,
    MsspConfig,
    SEQUENTIAL_BASELINE,
    TimingConfig,
)
from repro.distill import DistillationResult, Distiller
from repro.errors import MsspError
from repro.formal.refinement import assert_jumping_refinement
from repro.machine.interpreter import count_instructions_and_loads
from repro.mssp import MsspResult, create_engine
from repro.profiling import Profile
from repro.timing import TimingBreakdown, baseline_cycles, simulate_mssp
from repro.workloads.base import WorkloadInstance, WorkloadSpec

#: Step budget for workload-scale runs.
RUN_LIMIT = 20_000_000


@dataclass
class PreparedWorkload:
    """A workload after profiling and distillation (steps 1-2)."""

    instance: WorkloadInstance
    profile: Profile
    distillation: DistillationResult
    #: Dynamic length of the evaluation input under the original program.
    seq_instrs: int
    #: Memory loads in the sequential evaluation run (for memory-aware
    #: baseline cycle accounting).
    seq_loads: int
    #: Dynamic length of the *distilled* program on the evaluation input
    #: (fork executes as nop), the paper's distillation-effectiveness
    #: numerator.
    distilled_instrs: int
    #: The distiller configuration used for step 2, kept so adaptive
    #: re-distillation (:mod:`repro.mssp.redistill`) re-runs the same
    #: distiller the offline artifact came from.
    distill_config: Optional[DistillConfig] = None

    @property
    def name(self) -> str:
        return self.instance.name

    @property
    def distillation_ratio(self) -> float:
        """Dynamic distilled / original instructions (lower = better)."""
        return self.distilled_instrs / self.seq_instrs


@dataclass
class EvaluationRow:
    """One workload × one machine configuration."""

    name: str
    seq_instrs: int
    mssp: MsspResult
    breakdown: TimingBreakdown
    baseline: BaselineConfig = SEQUENTIAL_BASELINE
    seq_loads: int = 0

    @property
    def baseline_cycles(self) -> float:
        return baseline_cycles(self.seq_instrs, self.baseline, self.seq_loads)

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.breakdown.total_cycles

    @property
    def counters(self):
        return self.mssp.counters

    def summary(self) -> Dict[str, float]:
        out = {
            "speedup": self.speedup,
            "cycles": self.breakdown.total_cycles,
            "baseline_cycles": self.baseline_cycles,
        }
        out.update(self.counters.summary())
        return out


def prepare(
    spec: WorkloadSpec,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    profile_source: str = "train",
) -> PreparedWorkload:
    """Profile and distill one workload.

    ``profile_source`` selects the training methodology (E13 studies it):

    * ``"train"`` — all training inputs, merged (the default; the
      paper's train/ref discipline);
    * ``"single"`` — only the first training input (a weaker profile:
      value specialization can latch onto input-specific accidents);
    * ``"eval"`` — the evaluation input itself (the self-profiling
      oracle: the best any profile can do).
    """
    instance = spec.instance(size)
    profile = _profile_for(instance, profile_source)
    distillation = Distiller(distill_config).distill(
        instance.program, profile
    )
    seq_instrs, seq_loads = count_instructions_and_loads(
        instance.program, max_steps=RUN_LIMIT
    )
    distilled_instrs = distilled_dynamic_length(
        distillation, instance.program, max_steps=RUN_LIMIT
    )
    return PreparedWorkload(
        instance=instance, profile=profile, distillation=distillation,
        seq_instrs=seq_instrs, seq_loads=seq_loads,
        distilled_instrs=distilled_instrs, distill_config=distill_config,
    )


def distilled_dynamic_length(
    distillation: DistillationResult,
    eval_program,
    max_steps: int = RUN_LIMIT,
) -> int:
    """Dynamic length of the distilled program on the evaluation input.

    Runs the distilled binary standalone in master mode (forks are
    no-ops, ``jr`` targets translate through the pc map's jr table) —
    the numerator of the paper's distillation-effectiveness metric.
    """
    from repro.machine.state import ArchState
    from repro.mssp.master import Master

    master = Master(
        distillation.distilled.with_memory(eval_program.memory),
        MsspConfig(),
        jr_table=distillation.pc_map.jr_table,
    )
    boot = ArchState(mem=eval_program.memory, pc=0)
    return master.run_standalone(boot, max_steps=max_steps)


def training_profile(instance: WorkloadInstance) -> Profile:
    """The merged training-input profile for ``instance``.

    The standalone entry point for tools (``repro lint``, tests) that
    need the same profile :func:`prepare` would use without paying for
    the sequential/distilled dynamic-length measurements.
    """
    return _profile_for(instance, "train")


def _profile_for(instance: WorkloadInstance, source: str) -> Profile:
    from repro.profiling import profile_program

    if source == "eval":
        return profile_program(instance.program, max_steps=RUN_LIMIT)
    if source == "single":
        programs = instance.train_programs[:1]
    elif source == "train":
        programs = instance.train_programs
    else:
        raise MsspError(f"unknown profile_source {source!r}")
    merged = None
    for program in programs:
        current = profile_program(program, max_steps=RUN_LIMIT)
        merged = current if merged is None else merged.merge(current)
    if merged is None:
        raise MsspError("workload has no training inputs")
    return merged


def parallel_map(fn, items, jobs: int = 1) -> list:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``jobs <= 1`` runs inline (no pool, no pickling requirements).  With
    more jobs, ``fn`` and each item must be picklable (module-level
    function, plain-data arguments); results come back in input order.
    Workers share nothing in memory — pipelines that want reuse across
    workers must go through the persistent artifact cache
    (:mod:`repro.experiments.cache`), which is safe under concurrent
    writers (atomic replace).
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - ancient/embedded pythons
        BrokenProcessPool = OSError
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))
    except (ImportError, NotImplementedError, OSError, PermissionError,
            BrokenProcessPool):
        # Sandboxed environments may forbid subprocesses entirely; the
        # serial path computes the same values, just slower.
        return [fn(item) for item in items]


def evaluate(
    prepared: PreparedWorkload,
    mssp_config: Optional[MsspConfig] = None,
    timing_config: Optional[TimingConfig] = None,
    baseline: BaselineConfig = SEQUENTIAL_BASELINE,
    check: bool = True,
) -> EvaluationRow:
    """Run MSSP on the evaluation input and time the trace."""
    engine = create_engine(
        prepared.instance.program, prepared.distillation,
        config=mssp_config,
    )
    try:
        if mssp_config is not None and mssp_config.redistill_threshold:
            engine.enable_adaptation(
                prepared.profile, distill_config=prepared.distill_config
            )
        result = engine.run_and_check() if check else engine.run()
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    if check:
        assert_jumping_refinement(prepared.instance.program, result)
    breakdown = simulate_mssp(result, timing_config)
    return EvaluationRow(
        name=prepared.name,
        seq_instrs=prepared.seq_instrs,
        mssp=result,
        breakdown=breakdown,
        baseline=baseline,
        seq_loads=prepared.seq_loads,
    )
