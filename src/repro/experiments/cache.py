"""Persistent artifact cache for the benchmark/experiment pipeline.

The expensive stage of every benchmark is functional, not timing:
profile the training inputs, distill, and run the MSSP engine with its
equivalence check.  Those artifacts depend only on (workload code +
data, size, distiller configuration, engine configuration) — all
deterministic — so they can be cached *across processes*, replacing the
per-process ``functools.lru_cache`` the benchmarks used before.

Layout::

    benchmarks/cache/
        <kind>-<digest>.pkl     one pickled artifact per key

Keys are SHA-256 digests over a canonical JSON rendering of the key
parts; artifacts additionally digest the workload's *program content*
(code + data image), so editing a workload generator invalidates its
entries automatically.  A schema version is folded into every digest —
bump :data:`CACHE_SCHEMA` when the pickled artifact types change shape.

The cache root defaults to ``benchmarks/cache`` next to the repository's
``benchmarks/`` package and can be redirected with the
``REPRO_BENCH_CACHE`` environment variable (point it at a tmpdir in
tests); ``REPRO_BENCH_CACHE=off`` disables persistence entirely.
Corrupt or unreadable entries are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

#: Bump when cached artifact types change incompatibly.
#: 2: MsspCounters grew the ``dispatch`` field (runtime-core refactor).
#: 3: PcMap grew per-instruction ``provenance``; MsspCounters grew
#:    ``static_verify_skips`` (speculation-safety prover).
#: 4: ArchState memory may pickle as a ``PagedMemory`` (flat backend);
#:    MsspConfig grew ``mem_backend``; bench summaries grew the
#:    flat/master-jit microbenchmark stages.
#: 5: MsspCounters grew ``predictor_hits``/``predictor_misses``/
#:    ``redistillations``; PreparedWorkload grew ``distill_config``;
#:    MsspConfig grew the predictor/redistillation knobs; bench suite
#:    rows grew the adaptive stage (value-predicted live-ins +
#:    squash-driven online re-distillation).
#: 6: bench summaries grew the serving stage (``serve_bench``: open-loop
#:    arrivals, warm-vs-cold throughput, shared-cache hit rates); suite
#:    rows grew ``adaptive_cache_hit`` and top-level ``cache_hits`` is
#:    now derived from the per-row flags.
CACHE_SCHEMA = 6

_ENV_VAR = "REPRO_BENCH_CACHE"


def cache_dir() -> Optional[Path]:
    """The cache root, or ``None`` when persistence is disabled."""
    configured = os.environ.get(_ENV_VAR, "").strip()
    if configured.lower() in ("off", "none", "0"):
        return None
    if configured:
        return Path(configured)
    # Default: benchmarks/cache at the repository root (next to src/).
    return Path(__file__).resolve().parents[3] / "benchmarks" / "cache"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _canonical(dataclasses.asdict(value)),
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def digest(*parts: Any) -> str:
    """A stable hex digest over ``parts`` (configs, sizes, names...)."""
    payload = json.dumps(
        [CACHE_SCHEMA, _canonical(list(parts))],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def program_digest(program) -> str:
    """Content digest of a program: code, data image, and entry point."""
    hasher = hashlib.sha256()
    for instr in program.code:
        hasher.update(repr(
            (instr.op.name, instr.rd, instr.rs, instr.rt, instr.imm,
             instr.target)
        ).encode())
    for address in sorted(program.memory):
        hasher.update(f"{address}:{program.memory[address]};".encode())
    hasher.update(str(program.entry).encode())
    return hasher.hexdigest()[:20]


def _entry_path(kind: str, key: str) -> Optional[Path]:
    root = cache_dir()
    if root is None:
        return None
    return root / f"{kind}-{key}.pkl"


def load(kind: str, key: str) -> Optional[Any]:
    """The cached artifact for ``key``, or ``None`` on a miss."""
    path = _entry_path(kind, key)
    if path is None or not path.is_file():
        return None
    try:
        with path.open("rb") as handle:
            return pickle.load(handle)
    except Exception:
        # Corrupt/stale entry (interrupted write, schema drift inside a
        # pickled object): treat as a miss; the recompute overwrites it.
        return None


def store(kind: str, key: str, value: Any) -> bool:
    """Persist ``value``; returns False when persistence is off/fails."""
    path = _entry_path(kind, key)
    if path is None:
        return False
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with temp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)  # atomic: concurrent -j workers race safely
        return True
    except Exception:
        return False


def fetch(
    kind: str, key: str, compute: Callable[[], Any]
) -> Tuple[Any, bool]:
    """``(artifact, hit)`` — load from disk or compute-and-store."""
    cached = load(kind, key)
    if cached is not None:
        return cached, True
    value = compute()
    store(kind, key, value)
    return value, False


def clear(kind: Optional[str] = None) -> int:
    """Delete cache entries (all, or one ``kind``); returns the count."""
    root = cache_dir()
    if root is None or not root.is_dir():
        return 0
    pattern = f"{kind}-*.pkl" if kind else "*.pkl"
    removed = 0
    for path in root.glob(pattern):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
