"""Tests for the fault-injection utilities themselves."""

from repro.config import DistillConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode
from repro.mssp.faults import corrupt_distilled, random_garbage_master
from repro.profiling import profile_program

SOURCE = """
main:   li r1, 60
loop:   addi r1, r1, -1
        add r2, r2, r1
        sw r2, 100(zero)
        bne r1, zero, loop
        halt
"""


def distilled():
    program = assemble(SOURCE)
    profile = profile_program(program)
    result = Distiller(DistillConfig(target_task_size=10)).distill(
        program, profile
    )
    return program, result


class TestCorruptDistilled:
    def test_deterministic(self):
        program, result = distilled()
        a = corrupt_distilled(result.distilled, len(program.code), seed=5)
        b = corrupt_distilled(result.distilled, len(program.code), seed=5)
        assert a.code == b.code

    def test_seeds_differ(self):
        program, result = distilled()
        a = corrupt_distilled(
            result.distilled, len(program.code), seed=5, severity=0.9
        )
        b = corrupt_distilled(
            result.distilled, len(program.code), seed=6, severity=0.9
        )
        assert a.code != b.code

    def test_zero_severity_is_identity(self):
        program, result = distilled()
        same = corrupt_distilled(
            result.distilled, len(program.code), seed=5, severity=0.0
        )
        assert same.code == result.distilled.code

    def test_output_is_valid_program(self):
        program, result = distilled()
        corrupted = corrupt_distilled(
            result.distilled, len(program.code), seed=1, severity=1.0
        )
        # Program.__post_init__ validates branch targets; reaching here
        # means validation passed.  Entry and memory preserved:
        assert corrupted.entry == result.distilled.entry
        assert dict(corrupted.memory) == dict(result.distilled.memory)

    def test_name_marks_corruption(self):
        program, result = distilled()
        corrupted = corrupt_distilled(
            result.distilled, len(program.code), seed=1
        )
        assert "corrupted" in corrupted.name


class TestRandomGarbageMaster:
    def test_deterministic(self):
        program = assemble(SOURCE)
        a, map_a = random_garbage_master(program, seed=3)
        b, map_b = random_garbage_master(program, seed=3)
        assert a.code == b.code
        assert dict(map_a.resume) == dict(map_b.resume)

    def test_always_halts_structurally(self):
        program = assemble(SOURCE)
        for seed in range(10):
            garbage, _ = random_garbage_master(program, seed=seed)
            assert garbage.code[-1].op is Opcode.HALT

    def test_map_covers_entry_and_forks(self):
        program = assemble(SOURCE)
        garbage, pc_map = random_garbage_master(program, seed=9)
        assert pc_map.is_anchor(program.entry)
        for instr in garbage.code:
            if instr.op is Opcode.FORK:
                assert pc_map.is_anchor(int(instr.target))

    def test_length_range_respected(self):
        program = assemble(SOURCE)
        garbage, _ = random_garbage_master(
            program, seed=1, length_range=(6, 6)
        )
        assert len(garbage.code) == 6
