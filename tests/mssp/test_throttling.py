"""Tests for dual-mode throttling (revert-to-sequential under
persistent misspeculation)."""

import dataclasses

import pytest

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.machine import run_to_halt
from repro.mssp import MsspEngine
from repro.mssp.faults import corrupt_distilled
from repro.profiling import profile_program

LOOP = """
main:   li r1, 800
loop:   addi r1, r1, -1
        add r2, r2, r1
        lw r3, 500(zero)
        add r2, r2, r3
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
        .data 500
        .word 3
"""

FAST = MsspConfig(max_task_instrs=2_000, max_master_instrs_per_task=2_000)


def hostile_setup():
    """A heavily corrupted master that squashes most tasks."""
    program = assemble(LOOP)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=20)).distill(
        program, profile
    )
    corrupted = corrupt_distilled(
        distillation.distilled, len(program.code), seed=7, severity=0.5
    )
    return program, corrupted, distillation.pc_map


class TestThrottling:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MsspConfig(throttle_threshold=0.0)
        with pytest.raises(ValueError):
            MsspConfig(throttle_threshold=1.5)
        with pytest.raises(ValueError):
            MsspConfig(throttle_window=0)
        MsspConfig(throttle_threshold=0.5)  # valid

    def test_throttling_fires_under_hostile_master(self):
        program, corrupted, pc_map = hostile_setup()
        config = dataclasses.replace(
            FAST, throttle_threshold=0.5, throttle_window=4,
            throttle_chunk=200,
        )
        result = MsspEngine(program, (corrupted, pc_map), config).run()
        assert result.counters.throttle_episodes > 0

    def test_throttling_preserves_equivalence(self):
        program, corrupted, pc_map = hostile_setup()
        config = dataclasses.replace(
            FAST, throttle_threshold=0.5, throttle_window=4,
            throttle_chunk=200,
        )
        result = MsspEngine(program, (corrupted, pc_map), config).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.total_instrs == reference.steps

    def test_throttling_reduces_wasted_attempts(self):
        """With throttling, far fewer doomed tasks are attempted."""
        program, corrupted, pc_map = hostile_setup()
        plain = MsspEngine(program, (corrupted, pc_map), FAST).run()
        throttled_config = dataclasses.replace(
            FAST, throttle_threshold=0.5, throttle_window=4,
            throttle_chunk=400,
        )
        throttled = MsspEngine(
            program, (corrupted, pc_map), throttled_config
        ).run()
        assert (
            throttled.counters.tasks_squashed < plain.counters.tasks_squashed
        )

    def test_throttling_idle_on_healthy_master(self):
        program = assemble(LOOP)
        profile = profile_program(program)
        distillation = Distiller(DistillConfig(target_task_size=20)).distill(
            program, profile
        )
        config = dataclasses.replace(
            FAST, throttle_threshold=0.5, throttle_window=4,
        )
        result = MsspEngine(program, distillation, config).run()
        assert result.counters.throttle_episodes == 0
        assert result.counters.squash_rate == 0.0

    def test_disabled_by_default(self):
        assert MsspConfig().throttle_threshold is None
