"""Determinism: the whole pipeline is a pure function of its inputs.

Reproducibility is a first-class property for a simulator — every
experiment table must regenerate bit-identically.  These tests pin it
at each stage: profiling, distillation, the functional engine (traces,
not just final states), and the timing replay.
"""

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.mssp import MsspEngine
from repro.profiling import profile_program
from repro.timing import simulate_mssp
from repro.workloads import get_workload


def pipeline(size=400):
    instance = get_workload("hashlookup").instance(size)
    profile = profile_program(instance.train_programs[0])
    distillation = Distiller(DistillConfig(target_task_size=30)).distill(
        instance.program, profile
    )
    result = MsspEngine(instance.program, distillation, MsspConfig()).run()
    return profile, distillation, result


class TestDeterminism:
    def test_profiles_identical(self):
        first, _, _ = pipeline()
        second, _, _ = pipeline()
        assert first.to_dict() == second.to_dict()

    def test_distillation_identical(self):
        _, first, _ = pipeline()
        _, second, _ = pipeline()
        assert first.distilled.code == second.distilled.code
        assert dict(first.pc_map.resume) == dict(second.pc_map.resume)
        assert dict(first.pc_map.jr_table) == dict(second.pc_map.jr_table)

    def test_traces_identical(self):
        _, _, first = pipeline()
        _, _, second = pipeline()
        assert first.records == second.records
        assert first.counters.summary() == second.counters.summary()
        assert first.final_state.diff(second.final_state) == []

    def test_timing_identical(self):
        _, _, result = pipeline()
        a = simulate_mssp(result)
        b = simulate_mssp(result)
        assert a.summary() == b.summary()

    def test_workload_instances_identical(self):
        spec = get_workload("hashlookup")
        first = spec.instance(300)
        second = spec.instance(300)
        assert first.program.code == second.program.code
        assert dict(first.program.memory) == dict(second.program.memory)
        for a, b in zip(first.train_programs, second.train_programs):
            assert dict(a.memory) == dict(b.memory)
