"""Whole-pipeline equivalence: MSSP traces under fast vs oracle decode.

The engine, master, and slave all dispatch through
:func:`repro.machine.decoded.decode`.  Re-pointing that name at oracle
mode (every stepper defers to :func:`repro.machine.semantics.execute`)
must leave an MSSP run *observationally identical* — same final state,
same task records, same counters, same device trace.  Any divergence
means the specialized closures changed semantics somewhere inside the
speculation pipeline, not just in straight-line interpretation.
"""

import pytest

from repro.config import DistillConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.machine.decoded import decode
from repro.mssp.engine import run_mssp
from repro.profiling import profile_program
from repro.workloads import get_workload

AGGRESSIVE = DistillConfig(
    target_task_size=25, branch_bias_threshold=0.99, min_branch_count=8,
    value_spec_min_count=4,
)

LOOP_SOURCE = """
main:   li r1, 300
        li r3, 11
loop:   addi r1, r1, -1
        seq r9, r1, r3
        bne r9, zero, rare
back:   lw r5, 500(zero)
        add r6, r6, r5
        srli r10, r6, 20
        slli r11, r1, 2
        add r10, r10, r11
        slti r12, r10, 100000
        beq r12, zero, panic
        bne r1, zero, loop
        sw r6, 600(zero)
        halt
rare:   addi r2, r2, 1
        j back
panic:  li r6, -1
        sw r6, 600(zero)
        halt
        .data 500
        .word 13
"""


def _oracle_decode(monkeypatch):
    """Swap every pipeline decode site to oracle-mode decoding."""
    oracle = lambda program, oracle=True: decode(program, oracle=True)  # noqa: E731
    for module in ("repro.mssp.engine", "repro.mssp.master",
                   "repro.mssp.slave"):
        monkeypatch.setattr(f"{module}.decode", oracle)


def _run_twice(monkeypatch, program, distillation):
    fast = run_mssp(program, distillation)
    _oracle_decode(monkeypatch)
    slow = run_mssp(program, distillation)
    return fast, slow


def assert_runs_identical(fast, slow):
    assert fast.final_state == slow.final_state
    assert fast.halted == slow.halted
    assert fast.records == slow.records
    assert fast.counters == slow.counters
    assert fast.device_trace == slow.device_trace


class TestOracleEquivalence:
    def test_loop_fixture_trace_identical(self, monkeypatch):
        program = assemble(LOOP_SOURCE, name="loop")
        distillation = Distiller(AGGRESSIVE).distill(
            program, profile_program(program)
        )
        fast, slow = _run_twice(monkeypatch, program, distillation)
        assert_runs_identical(fast, slow)
        # The run actually speculated — the equivalence covers the
        # master/slave/verify machinery, not just recovery.
        assert fast.counters.tasks_committed > 0

    @pytest.mark.parametrize("name", ["compress", "branchy", "matmul"])
    def test_workload_trace_identical(self, monkeypatch, name):
        spec = get_workload(name)
        program = spec.instance(max(4, spec.default_size // 8)).program
        distillation = Distiller(DistillConfig()).distill(
            program, profile_program(program)
        )
        fast, slow = _run_twice(monkeypatch, program, distillation)
        assert_runs_identical(fast, slow)
