"""The 'parallel' runtime deprecation path: warnings + routing."""

import warnings

import pytest

from repro.config import MsspConfig
from repro.mssp.runtime import executors
from repro.mssp.runtime.executors import resolve_runtime


class TestResolveRuntime:
    def test_parallel_warns_once_and_maps_to_process(self, monkeypatch):
        monkeypatch.setattr(executors, "_PARALLEL_WARNED", False)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert resolve_runtime("parallel") == "process"
        # The second resolution stays silent (once per process).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_runtime("parallel") == "process"

    def test_sim_is_a_first_class_runtime(self):
        assert resolve_runtime("sim") == "sim"

    def test_config_accepts_sim(self):
        assert MsspConfig(runtime="sim").runtime == "sim"


class TestParallelEngineShim:
    def test_constructor_warns_and_pins_process(self):
        from repro.distill import Distiller
        from repro.isa.asm import assemble
        from repro.mssp.parallel import ParallelMsspEngine
        from repro.profiling import profile_program

        source = """
        main:   li r1, 40
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                halt
        """
        program = assemble(source)
        distillation = Distiller().distill(
            program, profile_program(program)
        )
        with pytest.warns(DeprecationWarning, match="ParallelMsspEngine"):
            engine = ParallelMsspEngine(program, distillation)
        assert engine.runtime == "process"
