"""Tests for the engine's ``assert_static_soundness`` cross-check."""

import dataclasses

import pytest

from repro.config import DistillConfig, MsspConfig
from repro.distill.distiller import DistillationResult, Distiller
from repro.errors import MsspError
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode
from repro.mssp.engine import MsspEngine
from repro.profiling import profile_program
from tests.distill.conftest import RICH_SOURCE

ASSERTING = dataclasses.replace(MsspConfig(), assert_static_soundness=True)

#: All approximating passes off: the distilled program must predict the
#: original exactly, so only budget-class squashes are ever legal.
EXACT = dataclasses.replace(
    DistillConfig(),
    enable_value_spec=False,
    enable_store_elim=False,
    enable_branch_removal=False,
    enable_cold_code=False,
)


@pytest.fixture
def rich_program():
    return assemble(RICH_SOURCE, name="rich")


@pytest.fixture
def rich_profile(rich_program):
    return profile_program(rich_program)


class TestAssertStaticSoundness:
    def test_real_distillation_runs_clean(self, rich_program, rich_profile):
        distillation = Distiller().distill(rich_program, rich_profile)
        engine = MsspEngine(rich_program, distillation, config=ASSERTING)
        result = engine.run_and_check()
        assert result.halted

    def test_exact_distillation_runs_clean(self, rich_program, rich_profile):
        distillation = Distiller(EXACT).distill(rich_program, rich_profile)
        engine = MsspEngine(rich_program, distillation, config=ASSERTING)
        result = engine.run_and_check()
        assert result.halted
        data_squashes = {
            "wrong-start-pc", "register-live-in", "memory-live-in", "fault",
        }
        seen = set(result.counters.squash_reasons)
        assert not (seen & data_squashes)

    def test_requires_distillation_result(self, rich_program, rich_profile):
        distillation = Distiller().distill(rich_program, rich_profile)
        with pytest.raises(MsspError, match="assert_static_soundness"):
            MsspEngine(
                rich_program,
                (distillation.distilled, distillation.pc_map),
                config=ASSERTING,
            )

    def test_unpredicted_squash_raises(self, rich_program, rich_profile):
        # An "exact" distillation whose code was corrupted behind the
        # report's back: the master now mispredicts a live-in, but the
        # pass statistics still claim nothing was approximated.
        distillation = Distiller(EXACT).distill(rich_program, rich_profile)
        code = list(distillation.distilled.code)
        # The loop decrement `addi r1, r1, -1` (not the fork pass's
        # scratch countdown, which slaves never read).
        victim = next(
            pc for pc, i in enumerate(code)
            if i.op is Opcode.ADDI and i.rd == 1 and i.rs == 1
            and i.imm == -1
        )
        code[victim] = dataclasses.replace(code[victim], imm=-2)
        corrupted = dataclasses.replace(
            distillation.distilled, code=tuple(code)
        )
        lying = DistillationResult(
            original=distillation.original,
            distilled=corrupted,
            pc_map=distillation.pc_map,
            report=distillation.report,
        )
        # Without the assertion the engine just squashes and recovers.
        plain = MsspEngine(rich_program, lying).run_and_check()
        assert plain.counters.tasks_squashed > 0
        # With it, the unpredicted squash cause is a hard error.
        engine = MsspEngine(rich_program, lying, config=ASSERTING)
        with pytest.raises(MsspError, match="statically unpredicted"):
            engine.run()

    def test_squash_records_carry_origin_pc(self, rich_program, rich_profile):
        distillation = Distiller().distill(rich_program, rich_profile)
        result = MsspEngine(rich_program, distillation).run()
        for record in result.task_records:
            if record.committed:
                assert record.origin_pc is None
            elif record.squash_reason in (
                "wrong-start-pc", "register-live-in", "memory-live-in"
            ):
                assert record.origin_pc == record.start_pc
