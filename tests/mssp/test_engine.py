"""Integration tests for the MSSP engine on hand-built scenarios."""

import pytest

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.distill.pc_map import PcMap
from repro.errors import InvalidPcError
from repro.isa.asm import assemble
from repro.machine.interpreter import run_to_halt
from repro.mssp import MsspEngine, TaskAttemptRecord
from repro.profiling import profile_program

AGGRESSIVE = DistillConfig(
    target_task_size=25, branch_bias_threshold=0.99, min_branch_count=8,
    value_spec_min_count=4,
)

LOOP_SOURCE = """
main:   li r1, 300
        li r3, 11
loop:   addi r1, r1, -1
        seq r9, r1, r3
        bne r9, zero, rare
back:   lw r5, 500(zero)
        add r6, r6, r5
        # never-firing overflow guard (assertion + DCE fodder)
        srli r10, r6, 20
        slli r11, r1, 2
        add r10, r10, r11
        slti r12, r10, 100000
        beq r12, zero, panic
        bne r1, zero, loop
        sw r6, 600(zero)
        halt
rare:   addi r2, r2, 1
        j back
panic:  li r6, -1
        sw r6, 600(zero)
        halt
        .data 500
        .word 13
"""


def distilled_loop(config=AGGRESSIVE):
    program = assemble(LOOP_SOURCE, name="loop")
    profile = profile_program(program)
    return program, Distiller(config).distill(program, profile)


class TestHappyPath:
    def test_equivalence_and_jumping_refinement(self):
        program, distillation = distilled_loop()
        engine = MsspEngine(program, distillation)
        result = engine.run_and_check()
        reference = run_to_halt(program)
        # Jumping refinement: committed + recovery instructions account
        # for exactly the sequential path length.
        assert result.counters.total_instrs == reference.steps
        assert result.final_state.pc == reference.state.pc

    def test_speculation_dominates_on_trained_input(self):
        program, distillation = distilled_loop()
        result = MsspEngine(program, distillation).run()
        assert result.counters.speculative_coverage > 0.9
        assert result.counters.tasks_committed > 10

    def test_master_runs_fewer_instructions(self):
        program, distillation = distilled_loop()
        result = MsspEngine(program, distillation).run()
        reference = run_to_halt(program)
        assert result.counters.master_instrs < reference.steps

    def test_trace_is_complete(self):
        program, distillation = distilled_loop()
        result = MsspEngine(program, distillation).run()
        committed = [r for r in result.task_records if r.committed]
        assert sum(r.n_instrs for r in committed) == (
            result.counters.committed_instrs
        )
        assert result.counters.tasks_committed == len(committed)

    def test_first_task_is_exact(self):
        program, distillation = distilled_loop()
        result = MsspEngine(program, distillation).run()
        assert result.task_records[0].exact

    def test_result_record_views(self):
        program, distillation = distilled_loop()
        result = MsspEngine(program, distillation).run()
        assert all(
            isinstance(r, TaskAttemptRecord) for r in result.task_records
        )
        assert len(result.records) >= len(result.task_records)


class TestMisprediction:
    def test_changed_input_squashes_but_stays_correct(self):
        """Profile on one data image, evaluate on another: the distilled
        program's value specialization goes stale, tasks squash, recovery
        kicks in, and the final state still matches SEQ."""
        program, distillation = distilled_loop()
        changed = program.updated_memory({500: 999})
        engine = MsspEngine(changed, (distillation.distilled.with_memory(
            changed.memory
        ), distillation.pc_map))
        result = engine.run()
        reference = run_to_halt(changed)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.total_instrs == reference.steps

    def test_squash_reasons_recorded(self):
        program, distillation = distilled_loop()
        changed = program.updated_memory({500: 999})
        engine = MsspEngine(changed, (distillation.distilled.with_memory(
            changed.memory
        ), distillation.pc_map))
        result = engine.run()
        if result.counters.tasks_squashed:
            assert result.counters.squash_reasons
            assert any(not r.committed for r in result.task_records)


class TestDegenerateMaps:
    def test_entry_only_map_degrades_to_sequential(self):
        """A pc map with no real anchors: everything runs as recovery."""
        program = assemble(LOOP_SOURCE, name="loop")
        distilled = assemble("halt", name="empty")
        pc_map = PcMap(resume={program.entry: 0}, entry_orig=program.entry)
        result = MsspEngine(program, (distilled, pc_map)).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.total_instrs == reference.steps

    def test_resume_pc_out_of_range_traps_master(self):
        program = assemble(LOOP_SOURCE, name="loop")
        distilled = assemble("halt", name="empty")
        pc_map = PcMap(resume={program.entry: 500}, entry_orig=program.entry)
        result = MsspEngine(program, (distilled, pc_map)).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.master_failures >= 1

    def test_looping_master_times_out(self):
        program = assemble(LOOP_SOURCE, name="loop")
        distilled = assemble("main: j main\nhalt", name="spin")
        pc_map = PcMap(resume={program.entry: 0}, entry_orig=program.entry)
        config = MsspConfig(max_master_instrs_per_task=100)
        result = MsspEngine(program, (distilled, pc_map), config).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.master_failures >= 1
        assert "master-timeout" in result.counters.squash_reasons


class TestFaultingPrograms:
    def test_real_program_fault_surfaces(self):
        """A program that genuinely jumps off its text must raise, exactly
        as it does under sequential execution (not be masked by MSSP)."""
        program = assemble("li r1, 999\njr r1\nhalt")
        distilled = assemble("halt")
        pc_map = PcMap(resume={0: 0}, entry_orig=0)
        with pytest.raises(InvalidPcError):
            MsspEngine(program, (distilled, pc_map)).run()
        with pytest.raises(InvalidPcError):
            run_to_halt(program)


class TestBudgets:
    def test_tiny_task_budget_forces_overruns_not_errors(self):
        program, distillation = distilled_loop()
        config = MsspConfig(max_task_instrs=2)
        result = MsspEngine(program, distillation, config).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.squash_reasons.get("overrun", 0) > 0
